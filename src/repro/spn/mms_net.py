"""The MMS expressed as a generalized stochastic Petri net.

This mirrors the paper's Section-8 validation model: tokens are threads (and,
while remote, messages); each subsystem is a single-server resource place;
service completions are exponential timed transitions; dispatch and routing
decisions are immediate transitions with probability weights.

Structure per processing element ``i``:

* ``ready_i`` (initially ``n_t`` tokens) --[disp_i]--> ``exec_i`` while
  holding ``procfree_i``; ``run_i`` (Exp ``R``) releases the processor and
  drops the token into ``issued_i``.
* ``golocal_i`` / ``goremote_i_j`` immediates split ``issued_i`` by
  ``1 - p_remote`` / ``p_remote * q_ij`` into memory or network flows.
* A remote flow ``(i, j)`` walks queue/service place pairs through: outbound
  switch at ``i``, the inbound switches on the routed path to ``j``, memory
  ``j``, outbound at ``j``, the inbound switches back, then returns the token
  to ``ready_i``.

Because tokens are anonymous, per-message latencies are recovered with
Little's law from time-averaged token counts (see :class:`MMSNetReport`),
which is exactly how mean ``S_obs``/``L_obs`` are defined in the analytical
model.  Context-switch overhead ``C`` is not representable as a purely
exponential transition, so the builder requires ``C == 0`` (the paper's
setting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import registry as obs_registry
from ..obs import trace_span
from ..params import MMSParams
from ..topology import route_nodes
from ..workload import pattern_for
from .petri import PetriNet, SPNResult, SPNSimulator, TransitionKind

__all__ = ["build_mms_net", "MMSNetReport", "simulate_spn"]

#: remote-destination probabilities below this are dropped from the net
#: (they would add places that are practically never visited)
PROB_EPS = 1e-12


def build_mms_net(params: MMSParams) -> PetriNet:
    """Construct the GSPN for ``params`` (requires ``context_switch == 0``)."""
    arch, wl = params.arch, params.workload
    if arch.context_switch != 0:
        raise ValueError(
            "the SPN formulation models the paper's C == 0 setting; "
            "use repro.simulation for nonzero context-switch overhead"
        )
    torus = arch.torus
    p = torus.num_nodes
    net = PetriNet()

    ready = [net.add_place(f"ready_{i}", wl.num_threads) for i in range(p)]
    execp = [net.add_place(f"exec_{i}") for i in range(p)]
    issued = [net.add_place(f"issued_{i}") for i in range(p)]
    procfree = [net.add_place(f"procfree_{i}", 1) for i in range(p)]
    outfree = [net.add_place(f"outfree_{i}", 1) for i in range(p)]
    infree = [net.add_place(f"infree_{i}", 1) for i in range(p)]
    memfree = [net.add_place(f"memfree_{i}", 1) for i in range(p)]

    for i in range(p):
        net.add_transition(
            f"disp_{i}",
            TransitionKind.IMMEDIATE,
            inputs=[(ready[i], 1), (procfree[i], 1)],
            outputs=[(execp[i], 1)],
        )
        net.add_transition(
            f"run_{i}",
            TransitionKind.EXPONENTIAL,
            inputs=[(execp[i], 1)],
            outputs=[(procfree[i], 1), (issued[i], 1)],
            param=wl.runlength,
        )

    def add_station_leg(
        flow: str, leg: int, queue_from: int, server: int, mean: float, dest: int
    ) -> int:
        """Queue + service pair: ``queue_from`` -> (hold server) -> ``dest``."""
        sv = net.add_place(f"s{flow}_{leg}")
        net.add_transition(
            f"start{flow}_{leg}",
            TransitionKind.IMMEDIATE,
            inputs=[(queue_from, 1), (server, 1)],
            outputs=[(sv, 1)],
        )
        net.add_transition(
            f"end{flow}_{leg}",
            TransitionKind.EXPONENTIAL,
            inputs=[(sv, 1)],
            outputs=[(server, 1), (dest, 1)],
            param=mean,
        )
        return sv

    # ---------------------------------------------------------- local flows
    for i in range(p):
        qmem = net.add_place(f"qmem_{i}_{i}")
        weight = 1.0 - wl.p_remote if p > 1 and wl.p_remote > 0 else 1.0
        net.add_transition(
            f"golocal_{i}",
            TransitionKind.IMMEDIATE,
            inputs=[(issued[i], 1)],
            outputs=[(qmem, 1)],
            param=max(weight, PROB_EPS),
        )
        add_station_leg(
            f"mem_{i}_{i}", 0, qmem, memfree[i], arch.memory_latency, ready[i]
        )

    # --------------------------------------------------------- remote flows
    if p > 1 and wl.p_remote > 0:
        q = pattern_for(wl).module_probability_matrix(torus)
        for i in range(p):
            for j in range(p):
                if i == j or q[i, j] <= PROB_EPS:
                    continue
                flow = f"net_{i}_{j}"
                # Stations on the round trip, in visit order.
                stations: list[tuple[int, float]] = [(outfree[i], arch.switch_delay)]
                stations += [
                    (infree[n], arch.switch_delay) for n in route_nodes(torus, i, j)
                ]
                first_q = net.add_place(f"q{flow}_0")
                net.add_transition(
                    f"goremote_{i}_{j}",
                    TransitionKind.IMMEDIATE,
                    inputs=[(issued[i], 1)],
                    outputs=[(first_q, 1)],
                    param=wl.p_remote * q[i, j],
                )
                # request path through the network
                cur = first_q
                leg = 0
                for server, mean in stations:
                    nxt = net.add_place(f"q{flow}_{leg + 1}")
                    add_station_leg(flow, leg, cur, server, mean, nxt)
                    cur, leg = nxt, leg + 1
                # memory at j (rename the pending queue place is not possible,
                # so `cur` doubles as the memory queue -- it is a network exit)
                qmem = net.add_place(f"qmem_{i}_{j}")
                net.add_transition(
                    f"tomem_{i}_{j}",
                    TransitionKind.IMMEDIATE,
                    inputs=[(cur, 1)],
                    outputs=[(qmem, 1)],
                )
                add_station_leg(
                    f"mem_{i}_{j}", 0, qmem, memfree[j], arch.memory_latency, issued_j := net.add_place(f"qret{flow}_0")
                )
                # response path: outbound at j, inbound back to i
                ret_stations: list[tuple[int, float]] = [
                    (outfree[j], arch.switch_delay)
                ]
                ret_stations += [
                    (infree[n], arch.switch_delay) for n in route_nodes(torus, j, i)
                ]
                cur = issued_j
                for server, mean in ret_stations:
                    last = leg + 1 == len(stations) + len(ret_stations)
                    if last:
                        add_station_leg(flow, leg, cur, server, mean, ready[i])
                    else:
                        nxt = net.add_place(f"q{flow}_{leg + 1}")
                        add_station_leg(flow, leg, cur, server, mean, nxt)
                        cur = nxt
                    leg += 1
    return net


def mms_invariants(net: PetriNet, params: MMSParams) -> dict[str, np.ndarray]:
    """Structural conservation laws of the MMS net, as P-invariant weights.

    * ``threads_<i>``: node ``i``'s ``n_t`` threads circulate through
      ``ready/exec/issued`` and every flow place sourced at ``i`` -- the
      paper's assumption that threads are neither created nor destroyed;
    * ``proc_server_<i>``: ``procfree_i + exec_i == 1``;
    * ``mem_server_<j>``: ``memfree_j`` plus every in-service memory place
      at ``j`` equals 1.

    Verifying these with :meth:`PetriNet.is_p_invariant` proves the builder
    wired the net correctly, independent of any simulation.
    """
    p = params.arch.num_processors
    names = net.place_names
    out: dict[str, np.ndarray] = {}
    for i in range(p):
        # thread-of-node-i places: ready/exec/issued + all (i, *) flows
        w = np.zeros(net.num_places)
        prefixes = (
            f"ready_{i}",
            f"exec_{i}",
            f"issued_{i}",
            f"qmem_{i}_",
            f"smem_{i}_",
            f"qnet_{i}_",
            f"snet_{i}_",
            f"qretnet_{i}_",
        )
        for pi, name in enumerate(names):
            if name.startswith(prefixes):
                w[pi] = 1.0
        out[f"threads_{i}"] = w

        w_proc = np.zeros(net.num_places)
        w_proc[net.place(f"procfree_{i}")] = 1.0
        w_proc[net.place(f"exec_{i}")] = 1.0
        out[f"proc_server_{i}"] = w_proc

        w_mem = np.zeros(net.num_places)
        w_mem[net.place(f"memfree_{i}")] = 1.0
        for pi, name in enumerate(names):
            if name.startswith("smem_") and name.endswith(f"_{i}_0"):
                w_mem[pi] = 1.0
        out[f"mem_server_{i}"] = w_mem
    return out


@dataclass(frozen=True)
class MMSNetReport:
    """MMS measures extracted from an :class:`SPNResult` via Little's law."""

    params: MMSParams
    processor_utilization: float
    access_rate: float
    lambda_net: float
    s_obs: float
    l_obs: float
    #: transition firings over the whole run (event-loop observability)
    events: int = 0

    def summary(self) -> dict[str, float]:
        return {
            "U_p": self.processor_utilization,
            "lambda_net": self.lambda_net,
            "S_obs": self.s_obs,
            "L_obs": self.l_obs,
            "access_rate": self.access_rate,
        }


def interpret(params: MMSParams, result: SPNResult) -> MMSNetReport:
    """Map time-averaged markings and firing rates to MMS measures.

    * ``U_p``: mean tokens across ``exec_*`` places (per PE).
    * ``lambda_i``: firing rate of ``run_*`` per PE.
    * ``lambda_net``: firing rate of ``goremote_*`` per PE.
    * ``S_obs``: network tokens / one-way-trip rate (Little's law; the
      network holds ``q/snet`` and ``qret`` places).
    * ``L_obs``: memory tokens / access rate (Little's law over ``qmem`` and
      ``smem`` places).
    """
    p = params.arch.num_processors
    u_p = result.mean_sum("exec_") / p
    access = result.rate_sum("run_") / p
    lam_net = result.rate_sum("goremote_") / p

    net_tokens = (
        result.mean_sum("qnet_") + result.mean_sum("snet_") + result.mean_sum("qretnet_")
    )
    trips = 2.0 * lam_net * p  # one-way trips per time unit, both directions
    s_obs = net_tokens / trips if trips > 0 else 0.0

    mem_tokens = result.mean_sum("qmem_") + result.mean_sum("smem_")
    accesses = access * p
    l_obs = mem_tokens / accesses if accesses > 0 else 0.0
    return MMSNetReport(
        params=params,
        processor_utilization=u_p,
        access_rate=access,
        lambda_net=lam_net,
        s_obs=s_obs,
        l_obs=l_obs,
        events=result.events,
    )


def simulate_spn(
    params: MMSParams,
    duration: float = 50_000.0,
    warmup: float | None = None,
    seed: int = 0,
) -> MMSNetReport:
    """Build, simulate and interpret the MMS Petri net in one call."""
    if warmup is None:
        warmup = max(0.1 * duration, 1000.0)
    with trace_span(
        "spn.run", processors=params.arch.num_processors, duration=duration
    ) as sp:
        net = build_mms_net(params)
        sim = SPNSimulator(net, seed=seed)
        report = interpret(params, sim.run(duration, warmup=warmup))
        sp.set(events=report.events)
        reg = obs_registry()
        reg.counter("spn.runs").inc()
        reg.counter("spn.events").inc(report.events)
        return report
