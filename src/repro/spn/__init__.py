"""Stochastic timed Petri net substrate (the paper's validation formalism)."""

from .mms_net import MMSNetReport, build_mms_net, mms_invariants, simulate_spn
from .petri import PetriNet, SPNResult, SPNSimulator, Transition, TransitionKind

__all__ = [
    "PetriNet",
    "Transition",
    "TransitionKind",
    "SPNSimulator",
    "SPNResult",
    "build_mms_net",
    "mms_invariants",
    "simulate_spn",
    "MMSNetReport",
]
