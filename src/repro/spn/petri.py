"""Generalized stochastic timed Petri net (GSPN) simulator.

The paper validates its analytical model by simulating a Stochastic Timed
Petri Net of the MMS (Section 8).  This module provides the net formalism and
an event-driven simulator:

* **immediate transitions** -- fire in zero time with priority over timed
  ones; conflicts are resolved by weighted random choice;
* **timed transitions** -- fire after an exponential (or deterministic)
  delay, *single-server* semantics: at most one firing is in progress per
  transition, and a transition disabled before it fires loses its sampled
  delay (resampling policy -- statistically irrelevant for exponential
  delays, documented for deterministic ones);
* **time-weighted place statistics** and transition firing counts, which is
  all the MMS validation needs (latencies are recovered through Little's
  law rather than token tagging).

Enabling checks are incremental: after a firing only the transitions touching
the changed places are re-examined, so simulation cost scales with the firing
sequence rather than with net size.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["TransitionKind", "Transition", "PetriNet", "SPNResult", "SPNSimulator"]


class TransitionKind(Enum):
    IMMEDIATE = "immediate"
    EXPONENTIAL = "exponential"
    DETERMINISTIC = "deterministic"


@dataclass(frozen=True)
class Transition:
    """A transition with input/output arcs (place index, multiplicity)."""

    name: str
    kind: TransitionKind
    inputs: tuple[tuple[int, int], ...]
    outputs: tuple[tuple[int, int], ...]
    #: mean delay for timed kinds; conflict weight for immediate
    param: float = 1.0

    def __post_init__(self) -> None:
        if self.param < 0:
            raise ValueError(f"transition {self.name!r}: negative parameter")
        if self.kind is TransitionKind.IMMEDIATE and self.param == 0:
            raise ValueError(f"immediate transition {self.name!r} needs weight > 0")


class PetriNet:
    """A GSPN under construction: places, transitions, initial marking."""

    def __init__(self) -> None:
        self._place_names: list[str] = []
        self._place_index: dict[str, int] = {}
        self.initial_marking: list[int] = []
        self.transitions: list[Transition] = []
        self._transition_names: set[str] = set()

    # ---------------------------------------------------------------- places
    def add_place(self, name: str, tokens: int = 0) -> int:
        """Create a place; returns its index."""
        if name in self._place_index:
            raise ValueError(f"duplicate place {name!r}")
        if tokens < 0:
            raise ValueError(f"place {name!r}: negative initial marking")
        idx = len(self._place_names)
        self._place_names.append(name)
        self._place_index[name] = idx
        self.initial_marking.append(tokens)
        return idx

    def place(self, name: str) -> int:
        """Index of an existing place."""
        try:
            return self._place_index[name]
        except KeyError:
            raise KeyError(f"no place named {name!r}") from None

    @property
    def num_places(self) -> int:
        return len(self._place_names)

    @property
    def place_names(self) -> tuple[str, ...]:
        return tuple(self._place_names)

    # -------------------------------------------------------------- analysis
    def incidence_matrix(self) -> np.ndarray:
        """``C[p, t] = outputs - inputs``: the net's token-flow matrix."""
        c = np.zeros((self.num_places, len(self.transitions)), dtype=np.int64)
        for ti, t in enumerate(self.transitions):
            for p, m in t.inputs:
                c[p, ti] -= m
            for p, m in t.outputs:
                c[p, ti] += m
        return c

    def is_p_invariant(self, weights: np.ndarray) -> bool:
        """Whether ``weights`` is a place invariant (``w^T C == 0``).

        A P-invariant's weighted token count is conserved by *every* firing
        -- the structural form of conservation laws like "threads are
        neither created nor destroyed".
        """
        w = np.asarray(weights)
        if w.shape != (self.num_places,):
            raise ValueError(
                f"need a weight per place ({self.num_places}), got {w.shape}"
            )
        return bool(np.all(w @ self.incidence_matrix() == 0))

    def invariant_value(
        self, weights: np.ndarray, marking: np.ndarray | None = None
    ) -> float:
        """Weighted token count of ``marking`` (default: initial marking)."""
        m = (
            np.asarray(self.initial_marking)
            if marking is None
            else np.asarray(marking)
        )
        return float(np.dot(np.asarray(weights), m))

    # ----------------------------------------------------------- transitions
    def add_transition(
        self,
        name: str,
        kind: TransitionKind,
        inputs: list[tuple[int, int]],
        outputs: list[tuple[int, int]],
        param: float = 1.0,
    ) -> int:
        """Create a transition; arcs are ``(place_index, multiplicity)``."""
        if name in self._transition_names:
            raise ValueError(f"duplicate transition {name!r}")
        for p, mult in [*inputs, *outputs]:
            if not 0 <= p < self.num_places:
                raise ValueError(f"transition {name!r}: bad place index {p}")
            if mult < 1:
                raise ValueError(f"transition {name!r}: multiplicity must be >= 1")
        self._transition_names.add(name)
        self.transitions.append(
            Transition(name, kind, tuple(inputs), tuple(outputs), param)
        )
        return len(self.transitions) - 1


@dataclass
class SPNResult:
    """Simulation output: time-averaged markings and firing rates."""

    duration: float
    place_names: tuple[str, ...]
    mean_tokens: np.ndarray  #: time-weighted mean marking per place
    firing_counts: np.ndarray  #: firings per transition over the horizon
    transition_names: tuple[str, ...]
    #: transitions fired over the *whole* run, warm-up included (the SPN
    #: analogue of the DES engine's events-processed counter)
    events: int = 0

    def mean(self, place_name: str) -> float:
        return float(self.mean_tokens[self.place_names.index(place_name)])

    def rate(self, transition_name: str) -> float:
        i = self.transition_names.index(transition_name)
        return float(self.firing_counts[i] / self.duration)

    def mean_sum(self, prefix: str) -> float:
        """Sum of mean tokens over all places whose name starts with ``prefix``."""
        return float(
            sum(
                self.mean_tokens[i]
                for i, n in enumerate(self.place_names)
                if n.startswith(prefix)
            )
        )

    def rate_sum(self, prefix: str) -> float:
        """Total firing rate over transitions whose name starts with ``prefix``."""
        total = sum(
            c
            for c, n in zip(self.firing_counts, self.transition_names)
            if n.startswith(prefix)
        )
        return float(total / self.duration)


class SPNSimulator:
    """Event-driven GSPN execution with warm-up truncation."""

    def __init__(self, net: PetriNet, seed: int = 0):
        self.net = net
        self.rng = np.random.default_rng(seed)
        self.marking = np.array(net.initial_marking, dtype=np.int64)
        self.now = 0.0

        # place -> transitions that consume from it (enabling can only change
        # for transitions with an input arc on a touched place)
        self._consumers: list[list[int]] = [[] for _ in range(net.num_places)]
        for ti, t in enumerate(net.transitions):
            for p, _ in t.inputs:
                self._consumers[p].append(ti)

        self._is_immediate = np.array(
            [t.kind is TransitionKind.IMMEDIATE for t in net.transitions]
        )
        # currently enabled immediate transitions (maintained incrementally)
        self._enabled_immediates: set[int] = set()
        # pending timed firings: lazy cancellation through per-transition epochs
        self._epoch = np.zeros(len(net.transitions), dtype=np.int64)
        self._scheduled = np.zeros(len(net.transitions), dtype=bool)
        self._heap: list[tuple[float, int, int]] = []

        # statistics
        self._weighted_tokens = np.zeros(net.num_places)
        self._last_stat_time = 0.0
        self.firing_counts = np.zeros(len(net.transitions), dtype=np.int64)
        #: lifetime transition firings (never reset at the warm-up boundary)
        self.events = 0

    # -------------------------------------------------------------- enabling
    def _enabled(self, ti: int) -> bool:
        t = self.net.transitions[ti]
        return all(self.marking[p] >= m for p, m in t.inputs)

    def _refresh(self, candidates: set[int]) -> None:
        """Re-evaluate enabling for ``candidates`` (both kinds)."""
        for ti in candidates:
            enabled = self._enabled(ti)
            if self._is_immediate[ti]:
                if enabled:
                    self._enabled_immediates.add(ti)
                else:
                    self._enabled_immediates.discard(ti)
            elif enabled:
                if not self._scheduled[ti]:
                    t = self.net.transitions[ti]
                    if t.kind is TransitionKind.EXPONENTIAL:
                        delay = (
                            float(self.rng.exponential(t.param)) if t.param > 0 else 0.0
                        )
                    else:
                        delay = t.param
                    self._epoch[ti] += 1
                    self._scheduled[ti] = True
                    heapq.heappush(
                        self._heap, (self.now + delay, int(self._epoch[ti]), ti)
                    )
            elif self._scheduled[ti]:
                self._scheduled[ti] = False  # resampling policy: drop the draw
                self._epoch[ti] += 1

    def _fire(self, ti: int) -> set[int]:
        """Fire ``ti``; returns the transitions whose enabling may have changed."""
        t = self.net.transitions[ti]
        self._accumulate()
        affected: set[int] = set()
        for p, m in t.inputs:
            self.marking[p] -= m
            affected.update(self._consumers[p])
        for p, m in t.outputs:
            self.marking[p] += m
            affected.update(self._consumers[p])
        self.firing_counts[ti] += 1
        self.events += 1
        if np.any(self.marking < 0):  # pragma: no cover - structural guard
            raise RuntimeError(f"negative marking after firing {t.name!r}")
        return affected

    def _accumulate(self) -> None:
        dt = self.now - self._last_stat_time
        if dt > 0:
            self._weighted_tokens += self.marking * dt
            self._last_stat_time = self.now

    # --------------------------------------------------------- immediate net
    def _fire_immediates(self) -> None:
        """Fire enabled immediate transitions (weighted random conflict
        resolution) until none remain enabled."""
        while self._enabled_immediates:
            enabled = sorted(self._enabled_immediates)
            if len(enabled) == 1:
                choice = enabled[0]
            else:
                weights = np.array(
                    [self.net.transitions[ti].param for ti in enabled],
                    dtype=np.float64,
                )
                choice = enabled[
                    int(self.rng.choice(len(enabled), p=weights / weights.sum()))
                ]
            affected = self._fire(choice)
            affected.add(choice)
            self._refresh(affected)

    # ------------------------------------------------------------------- run
    def run(self, duration: float, warmup: float = 0.0) -> SPNResult:
        """Simulate ``warmup + duration``; statistics cover the last
        ``duration`` time units."""
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        self._refresh(set(range(len(self.net.transitions))))
        self._fire_immediates()
        t_end = warmup + duration
        stats_armed = warmup == 0.0

        while self._heap:
            t_fire, epoch, ti = heapq.heappop(self._heap)
            if epoch != self._epoch[ti] or not self._scheduled[ti]:
                continue  # stale entry
            if t_fire > t_end:
                heapq.heappush(self._heap, (t_fire, epoch, ti))
                break
            if not stats_armed and t_fire >= warmup:
                # cross the warm-up boundary: reset statistics at `warmup`
                self.now = warmup
                self._accumulate()
                self._weighted_tokens[:] = 0.0
                self._last_stat_time = warmup
                self.firing_counts[:] = 0
                stats_armed = True
            self.now = t_fire
            self._scheduled[ti] = False
            affected = self._fire(ti)
            affected.add(ti)
            self._refresh(affected)
            self._fire_immediates()

        if not stats_armed:
            self._weighted_tokens[:] = 0.0
            self._last_stat_time = warmup
            self.firing_counts[:] = 0
        self.now = t_end
        self._accumulate()
        span = duration
        return SPNResult(
            duration=span,
            place_names=self.net.place_names,
            mean_tokens=self._weighted_tokens / span,
            firing_counts=self.firing_counts.copy(),
            transition_names=tuple(t.name for t in self.net.transitions),
            events=self.events,
        )
