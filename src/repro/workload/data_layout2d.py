"""2-D data layouts on the 2-D machine: the canonical SPMD scenario.

The natural fit for a ``k x k`` torus is a 2-D array distributed in 2-D
blocks, with each PE computing its own tile ("owner computes") and a stencil
reaching into neighbouring tiles.  This module derives the model inputs for
exactly that setting:

* :class:`Block2D` -- tile ``(gx x gy)`` sub-arrays onto the PE grid;
* :class:`Stencil` -- a set of ``(di, dj)`` offsets read per point
  (:data:`FIVE_POINT`, :data:`NINE_POINT` provided);
* :func:`derive_stencil_pattern` -- count local vs remote reads over the
  whole iteration space and build the per-source pattern.

The punchline (and the classic HPC result) falls out of the tolerance
analysis: remote fraction scales with the tile's *perimeter-to-area* ratio,
so machine scaling at fixed problem size (strong scaling) erodes locality
while scaled problem sizes (weak scaling) preserve it.  See
``bench_ext_stencil2d.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .access_patterns import EmpiricalPattern
from .data_layout import LoopPattern

__all__ = [
    "Block2D",
    "Stencil",
    "FIVE_POINT",
    "NINE_POINT",
    "derive_stencil_pattern",
]


@dataclass(frozen=True)
class Block2D:
    """An ``nx x ny`` array tiled in contiguous blocks over a ``gx x gy``
    PE grid (PE ``(px, py)`` owns the tile with corner
    ``(px * bx, py * by)``)."""

    nx: int
    ny: int
    gx: int
    gy: int

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise ValueError("array dimensions must be >= 1")
        if self.gx < 1 or self.gy < 1:
            raise ValueError("grid dimensions must be >= 1")
        if self.nx % self.gx or self.ny % self.gy:
            raise ValueError(
                f"array {self.nx}x{self.ny} must tile evenly over the "
                f"{self.gx}x{self.gy} grid"
            )

    @property
    def bx(self) -> int:
        """Tile width."""
        return self.nx // self.gx

    @property
    def by(self) -> int:
        """Tile height."""
        return self.ny // self.gy

    @property
    def num_pes(self) -> int:
        return self.gx * self.gy

    def owner(self, i: int, j: int) -> int:
        """PE index (row-major on the grid) owning element ``(i, j)``."""
        if not (0 <= i < self.nx and 0 <= j < self.ny):
            raise IndexError(f"({i}, {j}) outside {self.nx}x{self.ny}")
        return (j // self.by) * self.gx + (i // self.bx)


@dataclass(frozen=True)
class Stencil:
    """Read offsets per updated point, e.g. the 5-point Laplacian."""

    offsets: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if not self.offsets:
            raise ValueError("a stencil needs at least one offset")


FIVE_POINT = Stencil(((0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)))
NINE_POINT = Stencil(
    tuple((di, dj) for di in (-1, 0, 1) for dj in (-1, 0, 1))
)


def derive_stencil_pattern(layout: Block2D, stencil: Stencil) -> LoopPattern:
    """Tally every stencil read of every point against tile ownership.

    Exploits translation symmetry of interior tiles: reads are counted once
    per PE tile (each PE updates exactly its own tile).  Returns the same
    :class:`LoopPattern` shape as the 1-D bridge, pluggable into
    :class:`repro.core.MMSModel`.
    """
    p = layout.num_pes
    counts = np.zeros((p, p), dtype=np.float64)
    bx, by = layout.bx, layout.by
    for py in range(layout.gy):
        for px in range(layout.gx):
            pe = py * layout.gx + px
            # every point (i, j) of this PE's tile
            i0, j0 = px * bx, py * by
            for di, dj in stencil.offsets:
                # which reads leave the tile? count by clamped target rows
                ii = np.clip(np.arange(i0, i0 + bx) + di, 0, layout.nx - 1)
                jj = np.clip(np.arange(j0, j0 + by) + dj, 0, layout.ny - 1)
                # ownership decomposes per dimension for block tiling
                own_x = ii // bx  # (bx,)
                own_y = jj // by  # (by,)
                # accumulate the outer product of ownership histograms
                hx = np.bincount(own_x, minlength=layout.gx)
                hy = np.bincount(own_y, minlength=layout.gy)
                tile_counts = np.outer(hy, hx).ravel()  # row-major PE index
                counts[pe] += tile_counts
    total = counts.sum()
    local = float(np.trace(counts))
    p_remote = 1.0 - local / total

    per_pe_total = counts.sum(axis=1)
    per_pe_remote = 1.0 - np.diag(counts) / per_pe_total

    if p_remote == 0.0:
        return LoopPattern(p_remote=0.0, pattern=None, per_pe_remote=per_pe_remote)

    remote = counts.copy()
    np.fill_diagonal(remote, 0.0)
    row_sums = remote.sum(axis=1, keepdims=True)
    q = np.zeros_like(remote)
    nz = row_sums[:, 0] > 0
    q[nz] = remote[nz] / row_sums[nz]
    for i in np.flatnonzero(~nz):
        q[i] = 1.0 / max(p - 1, 1)
        q[i, i] = 0.0
    return LoopPattern(
        p_remote=p_remote,
        pattern=EmpiricalPattern(q),
        per_pe_remote=per_pe_remote,
    )
