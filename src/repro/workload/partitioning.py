"""Thread-partitioning strategy for do-all loops (paper, Section 5).

A compiler partitioning ``W`` units of exposed computation per processor can
trade the number of threads ``n_t`` against their granularity ``R`` while
keeping ``n_t * R = W`` constant.  The paper's Tables 3/4 and Figures 6/7
characterize the tolerance index along these iso-work lines and conclude that
*few long threads beat many short threads* once ``n_t > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..params import Workload

__all__ = ["IsoWorkPartitioning", "partition_workloads", "coalesce"]


@dataclass(frozen=True)
class IsoWorkPartitioning:
    """An iso-work family of partitionings: ``n_t * R == work`` for each member."""

    #: total exposed computation per processor, ``W = n_t * R``
    work: float
    #: template providing the non-partitioning workload fields
    template: Workload = Workload()

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise ValueError(f"work must be > 0, got {self.work}")

    def workload(self, num_threads: int) -> Workload:
        """The member with ``num_threads`` threads of runlength ``work / num_threads``."""
        if num_threads < 1:
            raise ValueError(f"need >= 1 thread, got {num_threads}")
        return self.template.with_(
            num_threads=num_threads, runlength=self.work / num_threads
        )

    def sweep(self, thread_counts: Sequence[int]) -> Iterator[Workload]:
        """Members for each thread count, e.g. ``sweep([1, 2, 4, 8, 16])``."""
        for n_t in thread_counts:
            yield self.workload(n_t)

    def runlengths(self, thread_counts: Sequence[int]) -> list[float]:
        """The runlength ``R = W / n_t`` of each member, for plotting axes."""
        return [self.work / n_t for n_t in thread_counts]


def partition_workloads(
    work: float,
    thread_counts: Sequence[int],
    template: Workload = Workload(),
) -> list[Workload]:
    """Shortcut: the iso-work workloads for each ``n_t`` in ``thread_counts``."""
    return list(IsoWorkPartitioning(work, template).sweep(thread_counts))


def coalesce(workload: Workload, factor: int) -> Workload:
    """Coalesce ``factor`` threads into one, preserving total work.

    Models the compiler transformation the paper recommends: fewer, longer
    threads.  ``coalesce(w, 2)`` halves ``n_t`` (rounding up, min 1) and
    scales ``R`` to keep ``n_t * R`` constant.
    """
    if factor < 1:
        raise ValueError(f"coalescing factor must be >= 1, got {factor}")
    work = workload.num_threads * workload.runlength
    new_nt = max(1, -(-workload.num_threads // factor))  # ceil division
    return workload.with_(num_threads=new_nt, runlength=work / new_nt)
