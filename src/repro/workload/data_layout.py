"""From data distribution + loop structure to an access pattern.

The paper's introduction frames the compiler's problem: "a suitable
computation decomposition and data distribution" determine the workload
parameters the tolerance analysis consumes.  This module closes that loop
for the classic case the paper keeps citing -- iterations of a do-all loop
over distributed arrays:

1. distribute each array over the ``P`` memory modules
   (:class:`BlockDistribution`, :class:`CyclicDistribution`,
   :class:`BlockCyclicDistribution`);
2. partition the iteration space over the PEs (block partition, the SPMD
   default);
3. walk every affine array reference ``A[a * i + b]`` of every local
   iteration and tally which module owns the element.

The result -- ``p_remote`` and a per-source :class:`EmpiricalPattern` -- plugs
straight into :class:`repro.core.MMSModel` and the simulator, so "which
distribution should this loop use?" becomes a solved tolerance query
(see ``examples/data_distribution.py``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from .access_patterns import EmpiricalPattern

__all__ = [
    "ArrayDistribution",
    "BlockDistribution",
    "CyclicDistribution",
    "BlockCyclicDistribution",
    "Reference",
    "DoAllLoop",
    "derive_pattern",
    "LoopPattern",
]


class ArrayDistribution(abc.ABC):
    """Maps an array element index to the memory module that owns it."""

    def __init__(self, num_elements: int, num_modules: int):
        if num_elements < 1:
            raise ValueError(f"need >= 1 element, got {num_elements}")
        if num_modules < 1:
            raise ValueError(f"need >= 1 module, got {num_modules}")
        self.num_elements = num_elements
        self.num_modules = num_modules

    @abc.abstractmethod
    def owner(self, index: int) -> int:
        """Module owning element ``index`` (0-based)."""

    def owners(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner` (subclasses override for speed)."""
        return np.array([self.owner(int(i)) for i in indices])

    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_elements:
            raise IndexError(
                f"element {index} outside array of {self.num_elements}"
            )


class BlockDistribution(ArrayDistribution):
    """Contiguous blocks: module ``m`` owns elements
    ``[m*B, (m+1)*B)`` with ``B = ceil(n / P)`` (HPF ``BLOCK``)."""

    @property
    def block_size(self) -> int:
        return -(-self.num_elements // self.num_modules)

    def owner(self, index: int) -> int:
        self._check(index)
        return index // self.block_size

    def owners(self, indices: np.ndarray) -> np.ndarray:
        return np.asarray(indices) // self.block_size


class CyclicDistribution(ArrayDistribution):
    """Round-robin elements: module ``index % P`` (HPF ``CYCLIC``)."""

    def owner(self, index: int) -> int:
        self._check(index)
        return index % self.num_modules

    def owners(self, indices: np.ndarray) -> np.ndarray:
        return np.asarray(indices) % self.num_modules


class BlockCyclicDistribution(ArrayDistribution):
    """Round-robin blocks of ``block_size`` (HPF ``CYCLIC(B)``)."""

    def __init__(self, num_elements: int, num_modules: int, block_size: int):
        super().__init__(num_elements, num_modules)
        if block_size < 1:
            raise ValueError(f"block size must be >= 1, got {block_size}")
        self.block_size = block_size

    def owner(self, index: int) -> int:
        self._check(index)
        return (index // self.block_size) % self.num_modules

    def owners(self, indices: np.ndarray) -> np.ndarray:
        return (np.asarray(indices) // self.block_size) % self.num_modules


@dataclass(frozen=True)
class Reference:
    """An affine array reference ``A[stride * i + offset]`` in the loop body."""

    stride: int = 1
    offset: int = 0

    def element(self, iteration: int) -> int:
        return self.stride * iteration + self.offset


@dataclass(frozen=True)
class DoAllLoop:
    """``forall i in [0, num_iterations): body referencing A[...]``.

    Iterations are block-partitioned over the PEs (the SPMD owner-computes
    default): PE ``p`` runs iterations ``[p*ceil(N/P), ...)``.
    """

    num_iterations: int
    references: tuple[Reference, ...] = field(default=(Reference(),))

    def __post_init__(self) -> None:
        if self.num_iterations < 1:
            raise ValueError("need >= 1 iteration")
        if not self.references:
            raise ValueError("need >= 1 array reference")

    def iterations_of(self, pe: int, num_pes: int) -> np.ndarray:
        """The iteration indices PE ``pe`` executes (block partition)."""
        chunk = -(-self.num_iterations // num_pes)
        lo = pe * chunk
        hi = min(lo + chunk, self.num_iterations)
        return np.arange(lo, max(lo, hi))


@dataclass(frozen=True)
class LoopPattern:
    """Derived workload characteristics of a (loop, distribution) pairing."""

    #: fraction of array references that touch a remote module
    p_remote: float
    #: per-source remote-access pattern (None when fully local)
    pattern: EmpiricalPattern | None
    #: per-PE remote fractions (exposes load imbalance across PEs)
    per_pe_remote: np.ndarray

    @property
    def is_local_only(self) -> bool:
        return self.pattern is None


def derive_pattern(
    loop: DoAllLoop,
    distribution: ArrayDistribution,
    num_pes: int,
) -> LoopPattern:
    """Compile a loop + data distribution into model inputs.

    Every reference of every iteration is attributed to the PE executing
    that iteration; elements owned by that PE's module are local, the rest
    build the empirical remote matrix.  Out-of-range elements (from strides
    and offsets at the array edge) are clamped out -- they correspond to
    boundary iterations a real compiler peels.
    """
    if num_pes != distribution.num_modules:
        raise ValueError(
            f"distribution spans {distribution.num_modules} modules but the "
            f"machine has {num_pes} PEs"
        )
    counts = np.zeros((num_pes, num_pes), dtype=np.float64)
    for pe in range(num_pes):
        its = loop.iterations_of(pe, num_pes)
        if its.size == 0:
            continue
        for ref in loop.references:
            elems = ref.stride * its + ref.offset
            valid = (elems >= 0) & (elems < distribution.num_elements)
            if not valid.any():
                continue
            owners = distribution.owners(elems[valid])
            counts[pe] += np.bincount(owners, minlength=num_pes)
    total = counts.sum()
    if total == 0:
        raise ValueError("loop makes no in-range array references")
    local = float(np.trace(counts))
    p_remote = 1.0 - local / total

    per_pe_total = counts.sum(axis=1)
    per_pe_local = np.diag(counts)
    with np.errstate(divide="ignore", invalid="ignore"):
        per_pe_remote = np.where(
            per_pe_total > 0, 1.0 - per_pe_local / per_pe_total, 0.0
        )

    remote = counts.copy()
    np.fill_diagonal(remote, 0.0)
    row_sums = remote.sum(axis=1, keepdims=True)
    if p_remote == 0.0:
        return LoopPattern(
            p_remote=0.0, pattern=None, per_pe_remote=per_pe_remote
        )
    with np.errstate(divide="ignore", invalid="ignore"):
        q = np.where(row_sums > 0, remote / np.maximum(row_sums, 1e-300), 0.0)
    # rows with no remote traffic: spread uniformly so the matrix stays a
    # valid distribution (those rows are never drawn from when the model
    # scales by the per-source remote share anyway)
    for i in range(num_pes):
        if row_sums[i, 0] == 0:
            q[i] = 1.0 / max(num_pes - 1, 1)
            q[i, i] = 0.0
    return LoopPattern(
        p_remote=p_remote,
        pattern=EmpiricalPattern(q),
        per_pe_remote=per_pe_remote,
    )
