"""Remote-access patterns: where do a thread's remote accesses go?

The paper studies two distributions (Section 2, "Memory Node"):

* **geometric** -- the probability of targeting distance class ``h`` is
  ``p_sw**h / a`` (normalized over ``h = 1..d_max``), split evenly among the
  modules at that distance.  Low ``p_sw`` = strong locality.  This is the
  pattern under which the paper's Section 7 "better than an ideal network"
  phenomenon appears.
* **uniform** -- every one of the ``P - 1`` remote modules is equally likely.

Both are exposed through a common :class:`AccessPattern` interface so the
analytical model, the discrete-event simulator, and the Petri-net builder all
draw from identical statistics.
"""

from __future__ import annotations

import abc

import numpy as np

from ..topology import (
    Torus2D,
    average_distance,
    geometric_distance_pmf,
    uniform_distance_pmf,
)

__all__ = [
    "AccessPattern",
    "GeometricPattern",
    "UniformPattern",
    "HotspotPattern",
    "EmpiricalPattern",
    "make_pattern",
    "pattern_for",
]


class AccessPattern(abc.ABC):
    """Distribution of a *remote* access over the remote memory modules.

    Patterns are defined per *source*: each node weights its remote distance
    classes (:meth:`class_weights`), splits each class's mass evenly among
    the modules at that distance, and normalizes.  On a vertex-transitive
    machine (torus) every source sees the same distance profile, recovering
    the paper's definitions; on a mesh the per-source profiles differ
    (corners vs. center) and everything still works -- the machine is then
    asymmetric even under an SPMD workload.
    """

    #: True when every source sees a translation-equivalent distribution --
    #: the condition for the symmetric AMVA fast path (and for the SPMD
    #: assumption of the paper).  Asymmetric patterns (hotspot) require the
    #: full multi-class solver.  NOTE: machine asymmetry (mesh) is tracked
    #: separately by the model.
    is_symmetric: bool = True

    @abc.abstractmethod
    def class_weights(self, h: np.ndarray) -> np.ndarray:
        """Unnormalized weight of each remote distance class ``h >= 1``."""

    def module_probability_matrix(self, topology) -> np.ndarray:
        """``(P, P)`` matrix ``q[i, j]``: probability a remote access from
        ``i`` targets module ``j`` (zero diagonal, rows sum to 1)."""
        d = topology.distance_matrix  # (P, P)
        p = topology.num_nodes
        if p < 2:
            raise ValueError("machine has no remote modules")
        hmax = int(d.max())
        h = np.arange(hmax + 1, dtype=np.float64)
        w = self.class_weights(h)  # (hmax+1,)
        w = np.asarray(w, dtype=np.float64)
        w[0] = 0.0
        # per-source distance-class counts
        q = np.zeros((p, p))
        for src in range(p):
            counts = np.bincount(d[src], minlength=hmax + 1)
            with np.errstate(divide="ignore", invalid="ignore"):
                class_mass = np.where(counts > 0, w, 0.0)
            total = class_mass.sum()
            if total <= 0:
                raise ValueError("degenerate pattern: no reachable class")
            per_module = np.where(
                counts > 0, class_mass / total / np.maximum(counts, 1), 0.0
            )
            q[src] = per_module[d[src]]
            q[src, src] = 0.0
        return q

    def module_probabilities(self, topology, src: int) -> np.ndarray:
        """``q[j]`` for one source (see :meth:`module_probability_matrix`)."""
        return self.module_probability_matrix(topology)[src]

    def distance_pmf(self, topology) -> np.ndarray:
        """Source-averaged distance distribution of remote accesses."""
        q = self.module_probability_matrix(topology)
        d = topology.distance_matrix
        hmax = int(d.max())
        pmf = np.zeros(hmax + 1)
        p = topology.num_nodes
        for h in range(hmax + 1):
            pmf[h] = float(q[d == h].sum()) / p
        return pmf

    def d_avg(self, topology) -> float:
        """Average hops traveled by a remote access (the paper's ``d_avg``)."""
        return average_distance(self.distance_pmf(topology))


class GeometricPattern(AccessPattern):
    """Geometric locality pattern with parameter ``p_sw`` (paper's default).

    Distance class ``h`` carries weight ``p_sw**h``; within a class the
    modules are equally likely -- exactly the paper's ``p_sw^h / a``.
    """

    def __init__(self, p_sw: float = 0.5):
        if not 0.0 < p_sw <= 1.0:
            raise ValueError(f"p_sw must be in (0, 1], got {p_sw}")
        self.p_sw = p_sw

    def class_weights(self, h: np.ndarray) -> np.ndarray:
        return self.p_sw ** h

    def distance_pmf(self, topology) -> np.ndarray:
        if isinstance(topology, Torus2D):
            # vertex-transitive: the closed form applies (and is faster)
            return geometric_distance_pmf(topology, self.p_sw)
        return super().distance_pmf(topology)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GeometricPattern(p_sw={self.p_sw})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GeometricPattern) and other.p_sw == self.p_sw

    def __hash__(self) -> int:
        return hash(("geometric", self.p_sw))


class UniformPattern(AccessPattern):
    """Uniform pattern: each remote module with probability ``1 / (P - 1)``."""

    def class_weights(self, h: np.ndarray) -> np.ndarray:
        # weight proportional to class size is achieved by overriding the
        # matrix directly; this method is unused but kept for the interface
        return np.ones_like(h)

    def module_probability_matrix(self, topology) -> np.ndarray:
        p = topology.num_nodes
        if p < 2:
            raise ValueError("machine has no remote modules")
        q = np.full((p, p), 1.0 / (p - 1))
        np.fill_diagonal(q, 0.0)
        return q

    def distance_pmf(self, topology) -> np.ndarray:
        if isinstance(topology, Torus2D):
            return uniform_distance_pmf(topology)
        return super().distance_pmf(topology)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UniformPattern()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UniformPattern)

    def __hash__(self) -> int:
        return hash("uniform")


class HotspotPattern(AccessPattern):
    """A fixed hot module attracts an extra share of every remote access.

    With probability ``hot_fraction`` a remote access targets module
    ``hot_node`` (think: a lock, a reduction variable, a master data
    structure); otherwise it follows ``base``.  Sources other than the hot
    node see

        q[i, hot] = hot_fraction + (1 - hot_fraction) * base[i, hot]
        q[i, j]   = (1 - hot_fraction) * base[i, j]        (j != hot)

    while the hot node itself follows ``base`` unchanged (its own module is
    local, not remote).  This breaks the SPMD symmetry, so models using it
    are solved with the full multi-class AMVA -- an extension exercising the
    paper's remark that the model "is applicable to other distributions by
    changing em_{i,j}".
    """

    is_symmetric = False

    def __init__(
        self,
        hot_node: int = 0,
        hot_fraction: float = 0.5,
        base: AccessPattern | None = None,
    ):
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
        if hot_node < 0:
            raise ValueError(f"hot_node must be >= 0, got {hot_node}")
        self.hot_node = hot_node
        self.hot_fraction = hot_fraction
        self.base = base or GeometricPattern()

    def class_weights(self, h: np.ndarray) -> np.ndarray:
        """Distance classes of the *base* pattern (the hot mass is handled
        in the matrix construction, not by distance)."""
        return self.base.class_weights(h)

    def module_probability_matrix(self, torus: Torus2D) -> np.ndarray:
        if self.hot_node >= torus.num_nodes:
            raise ValueError(
                f"hot node {self.hot_node} outside machine of "
                f"{torus.num_nodes} PEs"
            )
        q = self.base.module_probability_matrix(torus)
        hot, f = self.hot_node, self.hot_fraction
        scaled = (1.0 - f) * q
        scaled[:, hot] += f
        scaled[hot] = q[hot]  # the hot node's own accesses follow the base
        np.fill_diagonal(scaled, 0.0)
        # renormalize defensively (exact already, bar fp noise)
        scaled /= scaled.sum(axis=1, keepdims=True)
        return scaled

    def module_probabilities(self, torus: Torus2D, src: int) -> np.ndarray:
        return self.module_probability_matrix(torus)[src]

    def distance_pmf(self, torus: Torus2D) -> np.ndarray:
        """Source-averaged distance distribution (sources are asymmetric)."""
        q = self.module_probability_matrix(torus)
        d = torus.distance_matrix
        pmf = np.zeros(torus.max_distance + 1)
        p = torus.num_nodes
        for h in range(torus.max_distance + 1):
            pmf[h] = float(q[d == h].sum()) / p
        return pmf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HotspotPattern(hot_node={self.hot_node}, "
            f"hot_fraction={self.hot_fraction}, base={self.base!r})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HotspotPattern)
            and other.hot_node == self.hot_node
            and other.hot_fraction == self.hot_fraction
            and other.base == self.base
        )

    def __hash__(self) -> int:
        return hash(("hotspot", self.hot_node, self.hot_fraction, self.base))


class EmpiricalPattern(AccessPattern):
    """An arbitrary per-source remote-access matrix.

    The escape hatch for workload models that do not fit a named law --
    e.g. patterns derived from a data distribution and a loop's reference
    structure (:mod:`repro.workload.data_layout`).  Treated as asymmetric
    unless the caller proves otherwise.
    """

    def __init__(self, matrix: np.ndarray, symmetric: bool = False):
        q = np.asarray(matrix, dtype=np.float64)
        if q.ndim != 2 or q.shape[0] != q.shape[1]:
            raise ValueError(f"need a square matrix, got shape {q.shape}")
        if np.any(q < 0):
            raise ValueError("probabilities must be non-negative")
        if np.any(np.diag(q) != 0):
            raise ValueError("the diagonal (self access) must be zero")
        sums = q.sum(axis=1)
        if not np.allclose(sums[sums > 0], 1.0):
            raise ValueError("each row with remote traffic must sum to 1")
        self._q = q
        self.is_symmetric = symmetric

    def class_weights(self, h: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError("empirical patterns carry an explicit matrix")

    def module_probability_matrix(self, torus: Torus2D) -> np.ndarray:
        if torus.num_nodes != self._q.shape[0]:
            raise ValueError(
                f"pattern is for {self._q.shape[0]} nodes, machine has "
                f"{torus.num_nodes}"
            )
        return self._q.copy()

    def module_probabilities(self, torus: Torus2D, src: int) -> np.ndarray:
        return self.module_probability_matrix(torus)[src]

    def distance_pmf(self, torus: Torus2D) -> np.ndarray:
        """Source-averaged distance distribution."""
        q = self.module_probability_matrix(torus)
        d = torus.distance_matrix
        pmf = np.zeros(torus.max_distance + 1)
        active = q.sum(axis=1) > 0
        n_active = max(int(active.sum()), 1)
        for h in range(torus.max_distance + 1):
            pmf[h] = float(q[active][d[active] == h].sum()) / n_active
        return pmf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EmpiricalPattern({self._q.shape[0]} nodes)"


def make_pattern(
    name: str,
    p_sw: float = 0.5,
    hot_node: int = 0,
    hot_fraction: float = 0.5,
) -> AccessPattern:
    """Factory from the :class:`repro.params.Workload` string fields."""
    if name == "geometric":
        return GeometricPattern(p_sw)
    if name == "uniform":
        return UniformPattern()
    if name == "hotspot":
        return HotspotPattern(hot_node, hot_fraction, GeometricPattern(p_sw))
    raise ValueError(f"unknown access pattern {name!r}")


def pattern_for(workload) -> AccessPattern:
    """Resolve the :class:`AccessPattern` for a :class:`repro.params.Workload`."""
    return make_pattern(
        workload.pattern,
        workload.p_sw,
        getattr(workload, "hot_node", 0),
        getattr(workload, "hot_fraction", 0.5),
    )
