"""Visit ratios of the closed queueing network (paper, Section 2).

For a class-``i`` thread (threads never migrate, so class ``i`` = threads of
processor ``i``) one *cycle* is: execute on processor ``i``, issue a memory
access, receive the response.  Per cycle the thread visits:

* processor ``i`` exactly once,
* memory ``j`` with ratio ``em[i, j]`` -- ``1 - p_remote`` locally, and
  ``p_remote * q_i(j)`` remotely, where ``q_i`` is the access pattern,
* the *outbound* switch of node ``j``:

  - ``eo[i, i] = p_remote`` (every remote *request* leaves through the source's
    outbound switch), and
  - ``eo[i, j] = em[i, j]`` for ``j != i`` (every remote *response* leaves
    through the destination's outbound switch -- the paper's statement that
    "the visit ratio for the outbound switch is the same as ``em[i,j]``"),

* the *inbound* switch of node ``n`` with ratio ``ei[i, n]``: the sum over all
  routed request paths ``i -> j`` and response paths ``j -> i`` that traverse
  ``n``'s inbound switch (a message entering a node hop-by-hop is accepted by
  that node's inbound switch; the source's own inbound switch is bypassed).

Invariant (tested): ``ei[i, :].sum() == 2 * p_remote * d_avg`` -- a remote
round trip crosses ``2h`` inbound switches at distance ``h`` -- and
``eo[i, :].sum() == 2 * p_remote``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..params import MMSParams
from ..topology import Torus2D, inbound_transit_counts
from .access_patterns import AccessPattern, pattern_for

__all__ = ["VisitRatios", "build_visit_ratios"]


@dataclass(frozen=True)
class VisitRatios:
    """Per-cycle visit ratios of every class at every station.

    All arrays are ``(P, P)``, indexed ``[class, node]``.  The processor visit
    ratio is identically 1 at the class's own node and 0 elsewhere, so it is
    not stored.
    """

    memory: np.ndarray  #: ``em[i, j]``
    inbound: np.ndarray  #: ``ei[i, n]``
    outbound: np.ndarray  #: ``eo[i, n]``

    @property
    def num_nodes(self) -> int:
        return self.memory.shape[0]

    def total_network_visits(self, cls: int) -> float:
        """Total switch visits per cycle for class ``cls`` (in + out)."""
        return float(self.inbound[cls].sum() + self.outbound[cls].sum())


def build_visit_ratios(
    torus: Torus2D,
    p_remote: float,
    pattern: AccessPattern,
) -> VisitRatios:
    """Construct the visit-ratio matrices for an SPMD workload.

    Fully vectorized: the inbound ratios contract the routed transit tensor
    ``c[s, d, n]`` with the remote-access matrix (requests use ``c[i, j, n]``,
    responses ``c[j, i, n]``).
    """
    if not 0.0 <= p_remote <= 1.0:
        raise ValueError(f"p_remote must be in [0, 1], got {p_remote}")
    p = torus.num_nodes

    if p == 1 or p_remote == 0.0:
        em = np.zeros((p, p))
        np.fill_diagonal(em, 1.0)
        zeros = np.zeros((p, p))
        return VisitRatios(memory=em, inbound=zeros, outbound=zeros.copy())

    q = pattern.module_probability_matrix(torus)  # (P, P), zero diagonal
    em = p_remote * q
    np.fill_diagonal(em, 1.0 - p_remote)

    remote = p_remote * q  # em restricted to j != i

    eo = remote.copy()
    np.fill_diagonal(eo, p_remote)

    c = inbound_transit_counts(torus).astype(np.float64)  # c[s, d, n]
    ei = np.einsum("ij,ijn->in", remote, c)  # request paths i -> j
    ei += np.einsum("ij,jin->in", remote, c)  # response paths j -> i
    return VisitRatios(memory=em, inbound=ei, outbound=eo)


def visit_ratios_for(params: MMSParams) -> VisitRatios:
    """Convenience wrapper resolving the pattern from :class:`MMSParams`."""
    wl = params.workload
    return build_visit_ratios(params.arch.torus, wl.p_remote, pattern_for(wl))
