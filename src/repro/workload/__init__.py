"""Program-workload substrate: access patterns, visit ratios, partitioning."""

from .access_patterns import (
    AccessPattern,
    EmpiricalPattern,
    GeometricPattern,
    HotspotPattern,
    UniformPattern,
    make_pattern,
    pattern_for,
)
from .data_layout import (
    ArrayDistribution,
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    DoAllLoop,
    LoopPattern,
    Reference,
    derive_pattern,
)
from .data_layout2d import (
    FIVE_POINT,
    NINE_POINT,
    Block2D,
    Stencil,
    derive_stencil_pattern,
)
from .partitioning import IsoWorkPartitioning, coalesce, partition_workloads
from .visit_ratios import VisitRatios, build_visit_ratios, visit_ratios_for

__all__ = [
    "AccessPattern",
    "EmpiricalPattern",
    "GeometricPattern",
    "HotspotPattern",
    "UniformPattern",
    "ArrayDistribution",
    "BlockDistribution",
    "CyclicDistribution",
    "BlockCyclicDistribution",
    "Reference",
    "DoAllLoop",
    "LoopPattern",
    "derive_pattern",
    "Block2D",
    "Stencil",
    "FIVE_POINT",
    "NINE_POINT",
    "derive_stencil_pattern",
    "make_pattern",
    "pattern_for",
    "VisitRatios",
    "build_visit_ratios",
    "visit_ratios_for",
    "IsoWorkPartitioning",
    "partition_workloads",
    "coalesce",
]
