"""Model parameters: architecture and program-workload descriptions.

These dataclasses mirror the paper's Table 1 / Table 5 symbols:

========  =====================================================================
symbol    meaning
========  =====================================================================
``k``     PEs per torus dimension (the machine has ``P = k*k`` PEs)
``L``     memory access time (local module, no queueing)
``S``     switch routing delay per hop (inbound and outbound switches)
``C``     context-switch overhead added to every thread dispatch
``n_t``   threads per processor
``R``     mean thread runlength (computation time incl. issuing the access)
``p_remote``  probability a memory access targets a *remote* module
``p_sw``  geometric-locality parameter (low ``p_sw`` = high locality)
========  =====================================================================

Defaults are the reconstructed Table 1 settings (see DESIGN.md Section 2):
``n_t=8, R=10, p_remote=0.2, p_sw=0.5, L=10, S=10, k=4, C=0``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Mapping

from .topology import Torus2D

__all__ = ["Architecture", "MMSParams", "ParamError", "Workload", "paper_defaults"]


class ParamError(ValueError):
    """A parameter failed validation; the message names the offending field.

    A distinct type (rather than bare :class:`ValueError`) lets the CLI
    show user mistakes as one clean line while an unexpected ``ValueError``
    from deeper in the solver keeps its traceback.
    """


def _plain(value: object) -> object:
    """Collapse numpy scalars to native Python so ``to_dict`` output is
    JSON-safe and a point built from ``np.float64(0.2)`` hashes identically
    to one built from ``0.2``."""
    if type(value) in (bool, int, float, str) or value is None:
        return value
    item = getattr(value, "item", None)  # numpy scalar protocol
    if callable(item):
        return item()
    return value


def _checked_fields(cls: type, data: Mapping[str, object]) -> dict[str, object]:
    """Validate a ``from_dict`` payload: every key must be a field of *cls*."""
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - names
    if unknown:
        raise TypeError(
            f"unknown {cls.__name__} field(s): {sorted(map(str, unknown))}"
        )
    return dict(data)


@dataclass(frozen=True)
class Architecture:
    """Hardware description of the multithreaded multiprocessor system."""

    k: int = 4
    #: memory access time ``L`` (time units)
    memory_latency: float = 10.0
    #: per-hop switch routing delay ``S`` (time units)
    switch_delay: float = 10.0
    #: context switch overhead ``C`` (time units, added to each dispatch)
    context_switch: float = 0.0
    #: second torus dimension; -1 means square (``ky = k``)
    ky: int = -1
    #: memory module ports (paper Section 7: "multiporting/pipelining the
    #: memory can be of help"); 1 = the paper's single-ported module
    memory_ports: int = 1
    #: wrap-around links (True = torus, the paper's text; False = mesh, the
    #: paper's Figure-1 caption).  A mesh is not vertex transitive, so mesh
    #: machines always use the full multi-class solvers.
    wraparound: bool = True

    def __post_init__(self) -> None:
        # Every rejection names the offending field exactly as the user
        # spelled it, so CLI errors point straight at the bad axis/flag.
        if self.k < 1:
            raise ParamError(f"k must be >= 1, got {self.k}")
        if self.ky != -1 and self.ky < 1:
            raise ParamError(
                f"ky must be >= 1 (or -1 for a square k x k machine), got {self.ky}"
            )
        if self.memory_latency < 0:
            raise ParamError(
                f"memory_latency must be >= 0, got {self.memory_latency}"
            )
        if self.switch_delay < 0:
            raise ParamError(f"switch_delay must be >= 0, got {self.switch_delay}")
        if self.context_switch < 0:
            raise ParamError(f"context_switch must be >= 0, got {self.context_switch}")
        if self.memory_ports < 1:
            raise ParamError(f"memory_ports must be >= 1, got {self.memory_ports}")

    @property
    def torus(self):
        """The machine's interconnect topology (torus or mesh).

        The name reflects the paper's default; ``wraparound=False`` yields
        the Figure-1-caption mesh instead.
        """
        ky = self.ky if self.ky != -1 else self.k
        if self.wraparound:
            return Torus2D(self.k, ky)
        from .topology.mesh import Mesh2D

        return Mesh2D(self.k, ky)

    @property
    def num_processors(self) -> int:
        """``P``, the number of PEs."""
        return self.torus.num_nodes

    def with_(self, **changes: object) -> "Architecture":
        """Functional update (e.g. ``arch.with_(switch_delay=0.0)``)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form (JSON-safe; round-trips through :meth:`from_dict`)."""
        return {k: _plain(v) for k, v in dataclasses.asdict(self).items()}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Architecture":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        return cls(**_checked_fields(cls, data))


@dataclass(frozen=True)
class Workload:
    """SPMD program workload: every PE runs the same thread population."""

    #: threads per processor ``n_t``
    num_threads: int = 8
    #: mean thread runlength ``R`` (time units)
    runlength: float = 10.0
    #: probability an access is remote ``p_remote``
    p_remote: float = 0.2
    #: remote access pattern: ``"geometric"``, ``"uniform"`` or ``"hotspot"``
    pattern: str = "geometric"
    #: geometric locality parameter ``p_sw`` (ignored for uniform)
    p_sw: float = 0.5
    #: hotspot pattern only: the hot module's node index
    hot_node: int = 0
    #: hotspot pattern only: share of remote accesses drawn to the hot module
    hot_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ParamError(f"num_threads must be >= 1, got {self.num_threads}")
        if self.runlength <= 0:
            raise ParamError(f"runlength must be > 0, got {self.runlength}")
        if not 0.0 <= self.p_remote <= 1.0:
            raise ParamError(f"p_remote must be in [0, 1], got {self.p_remote}")
        if self.pattern not in ("geometric", "uniform", "hotspot"):
            raise ParamError(f"unknown access pattern {self.pattern!r}")
        if self.pattern in ("geometric", "hotspot") and not 0.0 < self.p_sw <= 1.0:
            raise ParamError(f"p_sw must be in (0, 1], got {self.p_sw}")
        if self.pattern == "hotspot":
            if not 0.0 <= self.hot_fraction <= 1.0:
                raise ParamError(
                    f"hot_fraction must be in [0, 1], got {self.hot_fraction}"
                )
            if self.hot_node < 0:
                raise ParamError(f"hot_node must be >= 0, got {self.hot_node}")

    @property
    def is_symmetric(self) -> bool:
        """True when every PE sees a statistically identical workload (the
        paper's SPMD assumption) -- the precondition for the symmetric
        solver fast path."""
        return self.pattern != "hotspot"

    def with_(self, **changes: object) -> "Workload":
        """Functional update (e.g. ``wl.with_(p_remote=0.0)``)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form (JSON-safe; round-trips through :meth:`from_dict`)."""
        return {k: _plain(v) for k, v in dataclasses.asdict(self).items()}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Workload":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        return cls(**_checked_fields(cls, data))


@dataclass(frozen=True)
class MMSParams:
    """An architecture paired with a workload -- one model evaluation point."""

    arch: Architecture = Architecture()
    workload: Workload = Workload()

    def with_(self, **changes: object) -> "MMSParams":
        """Functional update routing keys to the right sub-dataclass.

        ``params.with_(switch_delay=0, p_remote=0.4)`` touches the
        architecture and the workload respectively.
        """
        arch_fields = {f.name for f in dataclasses.fields(Architecture)}
        wl_fields = {f.name for f in dataclasses.fields(Workload)}
        arch_changes = {k: v for k, v in changes.items() if k in arch_fields}
        wl_changes = {k: v for k, v in changes.items() if k in wl_fields}
        unknown = set(changes) - arch_fields - wl_fields
        if unknown:
            raise TypeError(f"unknown parameter(s): {sorted(unknown)}")
        return MMSParams(
            arch=self.arch.with_(**arch_changes) if arch_changes else self.arch,
            workload=self.workload.with_(**wl_changes) if wl_changes else self.workload,
        )

    def to_dict(self) -> dict[str, object]:
        """Canonical nested-dict form.

        This is the serialization the :mod:`repro.runner` subsystem hashes to
        build content-addressed cache keys and ships to worker processes, so
        it must stay a pure-JSON structure that round-trips exactly through
        :meth:`from_dict`.
        """
        return {"arch": self.arch.to_dict(), "workload": self.workload.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MMSParams":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        payload = _checked_fields(cls, data)
        arch = payload.get("arch", Architecture())
        workload = payload.get("workload", Workload())
        if isinstance(arch, Mapping):
            arch = Architecture.from_dict(arch)
        if isinstance(workload, Mapping):
            workload = Workload.from_dict(workload)
        return cls(arch=arch, workload=workload)


def paper_defaults(**overrides: object) -> MMSParams:
    """The reconstructed Table 1 default configuration, with overrides.

    >>> p = paper_defaults(p_remote=0.4, num_threads=4)
    >>> p.arch.k, p.workload.p_remote
    (4, 0.4)
    """
    return MMSParams().with_(**overrides)
