"""Job specifications: one solvable point, content-addressed.

A :class:`JobSpec` pairs an :class:`~repro.params.MMSParams` point with a
solver method and derives a **stable content-addressed key** from the
canonical JSON serialization of both.  Two specs describing the same
computation -- however their parameter objects were constructed, and whether
the method was spelled ``"auto"`` or its resolved name -- hash to the same
key, which is what lets the result store guarantee that identical points are
never solved twice.

:class:`RunResult` is the runner's per-point outcome: the solved
:class:`~repro.core.MMSPerformance` (or an error), solve wall-clock, attempt
count, and cache provenance.  Its :meth:`RunResult.record` form is
deliberately free of timing/provenance so that serial, parallel, and cached
executions of the same grid emit bitwise-identical records; timing lives in
the run manifest instead.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Mapping

from ..core.metrics import MMSPerformance
from ..params import MMSParams

__all__ = [
    "SOLVER_VERSION",
    "TIMEOUT_ERROR_PREFIX",
    "canonical_json",
    "JobSpec",
    "RunResult",
]

#: Version tag of the analytical-solver stack as seen by the result cache.
#: Bump whenever a solver change alters any cached measure: every store
#: created under a different version invalidates itself on open.
#: "2": batched AMVA kernels; symmetric-path pooling reductions reordered.
SOLVER_VERSION = "2"

#: Every timed-out point's :attr:`RunResult.error` starts with this prefix
#: (the executor writes ``"timeout after <budget>s"``).  The fabric's
#: experiment DB classifies failed trials by it so a distributed run's
#: manifest counts timeouts the same way a single-host run does.
TIMEOUT_ERROR_PREFIX = "timeout after "


def canonical_json(obj: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace, NaN/Inf rejected.

    The byte-for-byte stability of this encoding is what makes cache keys
    content addresses rather than object identities.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


@dataclass(frozen=True)
class JobSpec:
    """One point to solve: parameters plus solver method plus scenario.

    ``scenario=None`` infers the family from the params type (an
    :class:`~repro.params.MMSParams` is ``"torus"``), so every
    pre-registry construction site keeps working unchanged.  The default
    torus scenario contributes no ``scenario`` field to the key payload
    or wire form -- its keys and payload bytes are identical to the
    pre-registry format -- while every other scenario adds its name,
    making keys injective across (scenario, params).
    """

    params: MMSParams
    method: str = "auto"
    scenario: str | None = None

    def __post_init__(self) -> None:
        if self.scenario is None:
            from ..scenarios import scenario_for_params

            object.__setattr__(
                self, "scenario", scenario_for_params(self.params).name
            )
        else:
            from ..scenarios import validate_scenario_name

            validate_scenario_name(self.scenario)

    def _scenario_impl(self):
        from ..scenarios import get_scenario

        return get_scenario(self.scenario)

    def canonical_method(self) -> str:
        """The method that will actually run (``"auto"`` resolved).

        Keying on the resolved method makes ``method="auto"`` and its
        explicit spelling share cache entries.
        """
        if self.method != "auto":
            return self.method
        return self._scenario_impl().canonical_method(self.params, self.method)

    def key(self) -> str:
        """Content-addressed cache key (SHA-256 hex digest)."""
        payload = self._scenario_impl().cache_payload(
            self.params, self.canonical_method()
        )
        return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()

    def payload(self) -> dict[str, object]:
        """Pure-JSON worker dispatch form (what crosses the process boundary)."""
        data: dict[str, object] = {
            "key": self.key(),
            "method": self.canonical_method(),
            "params": self.params.to_dict(),
        }
        from ..scenarios import DEFAULT_SCENARIO

        if self.scenario != DEFAULT_SCENARIO:
            data["scenario"] = self.scenario
        return data

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "JobSpec":
        """Rebuild a spec from its :meth:`payload` form."""
        from ..scenarios import DEFAULT_SCENARIO, get_scenario

        name = str(payload.get("scenario", DEFAULT_SCENARIO))
        return cls(
            params=get_scenario(name).params_from_dict(payload["params"]),
            method=payload["method"],
            scenario=name,
        )


@dataclass
class RunResult:
    """Outcome of one managed point."""

    key: str
    params: MMSParams
    #: canonical solver method (never ``"auto"``)
    method: str
    perf: MMSPerformance | None
    #: solver wall-clock seconds (the *original* solve for cache hits)
    elapsed: float = 0.0
    #: solve attempts consumed this run (0 for a cache hit)
    attempts: int = 1
    from_cache: bool = False
    error: str | None = None
    #: True when ``elapsed`` is an even share of a batched solve's wall
    #: clock rather than a per-point measurement -- time-attribution must
    #: count the batch span once, not re-sum amortized shares
    amortized: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and self.perf is not None

    def record(self) -> dict[str, object]:
        """Deterministic data record for this point.

        Contains only the computation's content -- key, method, parameters,
        measures -- never timing or cache provenance, so records from serial,
        parallel and warm-cache runs of the same grid compare equal.
        """
        if not self.ok:
            raise ValueError(f"point {self.key[:12]} failed: {self.error}")
        return {
            "key": self.key,
            "method": self.method,
            "params": self.params.to_dict(),
            "measures": {k: float(v) for k, v in self.perf.summary().items()},
        }

    def as_duplicate(self) -> "RunResult":
        """A copy representing another request for the same key in one run
        (served from the first solve, so flagged as cached)."""
        return replace(self, from_cache=True, attempts=0)
