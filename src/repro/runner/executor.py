"""The sweep runner: managed, parallel, cached execution of model points.

Execution pipeline for one :meth:`SweepRunner.run`:

1. **Deduplicate** the requested specs by content-addressed key -- within a
   single run an identical point is never solved twice.
2. **Probe the store**: keys with a persisted result become cache hits.
3. **Solve the misses** on one of three backends:

   * ``batch`` -- stack same-shape points into one batched AMVA fixed point
     (:func:`repro.core.model.solve_points`); the in-process default for
     figure-sized lattices, typically an order of magnitude faster than the
     per-point loop.  Symmetric points come back bitwise-identical to a
     scalar solve, so swapping backends never disturbs cached records.
   * ``process`` -- a ``ProcessPoolExecutor`` with per-point timeout.
     Worker exceptions are retried (bounded); a broken pool (worker died)
     degrades gracefully to serial execution of whatever is left.
   * ``serial`` -- the per-point in-process loop (tiny sweeps, where any
     batching or pool overhead would dominate; also the fallback when a
     batch group fails).

4. **Persist** fresh results and emit a :class:`~repro.runner.manifest.RunManifest`.

Fresh solves are round-tripped through the same JSON form a cache hit is
read from, so a warm run is bitwise-indistinguishable from a cold one.

Resilience (see ``docs/RESILIENCE.md``): every backend fallback is an
explicit :class:`~repro.resilience.degrade.DegradationPolicy` step recorded
in ``manifest.degradations``; with ``journal=`` each completed point is
durably appended to a :class:`~repro.resilience.journal.SweepJournal` so a
killed sweep resumes (``resume=True``) bitwise-identically; non-finite
solver output is caught before it can poison the store; and the
``worker.crash`` / ``worker.hang`` / ``solve.delay`` fault sites let the
chaos suite drive every one of those paths deterministically.
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..core.metrics import MMSPerformance
from ..core.model import MMSModel
from ..obs import Tracer, diff_snapshots, get_tracer
from ..obs import registry as obs_registry
from ..obs import trace_span
from ..obs.trace import configure
from ..params import MMSParams
from ..resilience.degrade import DegradationPolicy
from ..resilience.faults import fault_point
from ..resilience.integrity import finite_measures
from ..resilience.journal import SweepJournal, sweep_signature
from .manifest import RunManifest, latency_stats
from .spec import SOLVER_VERSION, TIMEOUT_ERROR_PREFIX, JobSpec, RunResult
from .store import ResultStore

__all__ = ["SweepRunner", "RunReport", "solve_job", "BACKENDS", "BATCHABLE_METHODS"]

#: a worker callable: JSON payload in, ``{"perf": dict, "elapsed": s}`` out
Worker = Callable[[Mapping[str, object]], Mapping[str, object]]
#: progress callback: ``(done, total_unique, result)``
Progress = Callable[[int, int, RunResult], None]

#: recognised execution backends
BACKENDS = ("auto", "batch", "process", "serial")
#: solver methods the batched kernel accepts; others always run per-point
BATCHABLE_METHODS = ("symmetric", "amva")
#: poll interval while a pooled point waits for a worker slot
_POLL_S = 0.05


def solve_job(payload: Mapping[str, object]) -> dict[str, object]:
    """Default worker: solve one canonicalized point.

    Module-level so it pickles for process-pool dispatch; takes and returns
    pure-JSON structures so the same function serves the serial path.

    When the payload carries a ``"trace"`` context (pool dispatch under an
    active tracer), the solve runs under a local buffering tracer adopted
    from it and the finished spans ride back with the result as
    ``"spans"`` -- the parent ingests them into its own sink, so workers
    never touch the trace file.
    """
    if payload.get("pooled"):
        # chaos sites for pool workers only: the executor marks dispatched
        # payloads, so the parent's serial fallback can never kill itself
        if fault_point("worker.crash") is not None:
            os.kill(os.getpid(), signal.SIGKILL)
        spec = fault_point("worker.hang")
        if spec is not None:
            time.sleep(float(spec.args.get("sleep_s", 30.0)))
    spec = fault_point("solve.delay")
    if spec is not None:
        time.sleep(float(spec.args.get("sleep_s", 0.05)))
    params = MMSParams.from_dict(payload["params"])
    ctx = payload.get("trace")
    if ctx is not None:
        tracer = Tracer.adopt(ctx)
        prev = configure(tracer=tracer)
        try:
            t0 = time.perf_counter()
            with tracer.span(
                "sweep.point", key=str(payload["key"])[:12], method=payload["method"]
            ):
                perf = MMSModel(params).solve(method=payload["method"])
            elapsed = time.perf_counter() - t0
        finally:
            configure(**prev)
        return {"perf": perf.to_dict(), "elapsed": elapsed, "spans": tracer.drain()}
    t0 = time.perf_counter()
    with trace_span(
        "sweep.point", key=str(payload["key"])[:12], method=payload["method"]
    ):
        perf = MMSModel(params).solve(method=payload["method"])
    return {"perf": perf.to_dict(), "elapsed": time.perf_counter() - t0}


class _PoolWatch:
    """Execution-deadline bookkeeping for one pool collection loop.

    See :meth:`SweepRunner._pooled_result` for the semantics; one instance
    is shared by every pooled wait of a run so deadlines arm as points
    start, not as collection happens to reach them.
    """

    def __init__(self) -> None:
        #: per-future execution deadline, armed at first observed running
        self.deadlines: dict = {}
        #: index into the futures list; everything before it is armed
        self._armed_prefix = 0
        #: last instant the pool showed life (a point started running)
        self.progress_t = time.monotonic()

    def arm(self, futures: list, timeout: float) -> None:
        """Arm deadlines for futures that have started since the last scan.

        The pool dispatches work items in submission order, so the scan
        walks the armed prefix forward and stops at the first future that
        is neither running nor done -- nothing later can have started yet.
        Amortized O(1) per call over a run.
        """
        now = time.monotonic()
        i = self._armed_prefix
        while i < len(futures):
            f = futures[i][1]
            if f not in self.deadlines:
                if not (f.running() or f.done()):
                    break
                self.deadlines[f] = now + timeout
                self.progress_t = now
            i += 1
        self._armed_prefix = i


@dataclass
class RunReport:
    """Everything one managed sweep produced."""

    #: one result per requested spec, in request order
    results: list[RunResult]
    manifest: RunManifest

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def records(self) -> list[dict[str, object]]:
        """Deterministic data records (raises if any point failed)."""
        return [r.record() for r in self.results]


def _result_record(result: RunResult) -> dict[str, object]:
    """The persistable record of a successful result.

    One shape for the store, the journal, and journal replay -- the round
    trip through this JSON form is what makes warm, resumed and cold runs
    bitwise-indistinguishable.
    """
    rec: dict[str, object] = {
        "method": result.method,
        "params": result.params.to_dict(),
        "perf": result.perf.to_dict(),
        "elapsed": result.elapsed,
    }
    if result.amortized:
        rec["amortized"] = True
    return rec


class _RunStats:
    """Mutable counters threaded through one run."""

    def __init__(self) -> None:
        self.timeouts = 0
        self.retries = 0
        self.worker_crashes = 0
        self.latencies: list[float] = []
        #: how many of ``latencies`` are amortized batch shares
        self.amortized = 0


class SweepRunner:
    """Managed executor for batches of model points.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (default) solves in-process.
    store / cache_dir:
        Persistent result store (or a directory to open one in).  ``None``
        disables caching.
    timeout:
        Per-point wall-clock budget in seconds.  Enforced only on the
        parallel path -- a serial in-process solve cannot be preempted.
    retries:
        Extra attempts for a point whose solve *raised* (timeouts are not
        retried: a point that exceeded its budget once will again).
    min_parallel_points:
        Smallest number of cache misses worth spinning up a pool for;
        below it the run stays serial regardless of ``jobs``.
    worker:
        Override the solve callable (test seam / custom backends).  Must be
        picklable for the parallel path.  A custom worker disables the
        batched backend -- batching is a property of the default solver.
    backend:
        ``"auto"`` (default) picks the process pool when ``jobs > 1`` and
        the sweep is big enough, then the batched kernel for groups of
        same-shape points, then per-point serial.  ``"batch"``,
        ``"process"`` and ``"serial"`` force a backend (each still falls
        back to serial where its preconditions fail -- e.g. one point,
        unbatchable method, or a dead pool).
    min_batch_points:
        Smallest group of same-shape cache misses worth stacking into one
        batched solve; below it points run per-point.
    journal:
        Path of a sweep progress journal.  When given, every completed
        point is durably appended (one flushed line each) so an
        interrupted sweep can be resumed.
    resume:
        Replay an existing journal at ``journal`` before solving: its
        verified records count as ``journal_hits`` and only the remainder
        is solved.  The journal must belong to this exact sweep (same
        points, same solver version) -- a mismatch raises
        :class:`~repro.resilience.journal.JournalError`.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: ResultStore | None = None,
        cache_dir: str | None = None,
        timeout: float | None = None,
        retries: int = 1,
        min_parallel_points: int = 8,
        worker: Worker | None = None,
        backend: str = "auto",
        min_batch_points: int = 2,
        journal: str | os.PathLike | None = None,
        resume: bool = False,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; pick from {'/'.join(BACKENDS)}"
            )
        if min_batch_points < 2:
            raise ValueError(f"min_batch_points must be >= 2, got {min_batch_points}")
        if store is None and cache_dir is not None:
            store = ResultStore(cache_dir)
        self.jobs = jobs
        self.store = store
        self.timeout = timeout
        self.retries = retries
        self.min_parallel_points = min_parallel_points
        self.worker: Worker = worker if worker is not None else solve_job
        self.backend = backend
        self.min_batch_points = min_batch_points
        self.journal = journal
        self.resume = resume

    # ------------------------------------------------------------ public API
    def solve(self, params: MMSParams, method: str = "auto") -> MMSPerformance:
        """Single-point convenience: solve through the cache, raise on failure."""
        report = self.run([JobSpec(params=params, method=method)])
        result = report.results[0]
        if not result.ok:
            raise RuntimeError(f"solve failed: {result.error}")
        return result.perf

    def run(
        self, specs: Sequence[JobSpec], progress: Progress | None = None
    ) -> RunReport:
        t_start = time.perf_counter()
        stats = _RunStats()
        policy = DegradationPolicy()
        metrics_before = obs_registry().snapshot()
        #: consecutive wall-clock segments; they tile the run, so their sum
        #: tracks ``wall_clock_s`` (CI asserts within 5%)
        stages: dict[str, float] = {}

        with trace_span(
            "sweep.run", total_points=len(specs), backend=self.backend, jobs=self.jobs
        ) as root:
            t0 = time.perf_counter()
            with trace_span("sweep.spec_hash", points=len(specs)):
                payloads = [spec.payload() for spec in specs]
                # first-seen order of unique keys
                unique: dict[str, dict[str, object]] = {}
                for payload in payloads:
                    unique.setdefault(payload["key"], payload)
            stages["spec_hash"] = time.perf_counter() - t0

            # open (or resume) the durable progress journal; the "journal"
            # stage exists only when journaling is on, so unjournaled runs
            # keep their exact historical stage set
            journal: SweepJournal | None = None
            replay: dict[str, dict[str, object]] = {}
            journal_hits = 0
            if self.journal is not None:
                t0 = time.perf_counter()
                sig = sweep_signature(unique, SOLVER_VERSION)
                with trace_span("sweep.journal", resume=self.resume) as sp:
                    if self.resume:
                        journal, replay = SweepJournal.resume(
                            self.journal, sig, len(unique)
                        )
                    else:
                        journal = SweepJournal.create(self.journal, sig, len(unique))
                    sp.set(replayed=len(replay), dropped=journal.dropped)
                stages["journal"] = time.perf_counter() - t0

            report_progress = progress
            if journal is not None:
                # every successful point is durably journaled the moment it
                # completes -- the solve paths all funnel through progress
                def report_progress(
                    done: int,
                    total: int,
                    result: RunResult,
                    _journal: SweepJournal = journal,
                    _inner: Progress | None = progress,
                ) -> None:
                    if result.ok:
                        _journal.append(result.key, _result_record(result))
                    if _inner is not None:
                        _inner(done, total, result)

            t0 = time.perf_counter()
            resolved: dict[str, RunResult] = {}
            cache_hits = 0
            done = 0
            with trace_span("sweep.cache_lookup", unique_points=len(unique)) as sp:
                for key, payload in unique.items():
                    rec = replay.get(key)
                    if rec is not None:
                        result = self._from_record(payload, rec, from_cache=True)
                        resolved[key] = result
                        journal_hits += 1
                        done += 1
                        if report_progress is not None:
                            report_progress(done, len(unique), result)
                        continue
                    rec = self.store.get(key) if self.store is not None else None
                    if rec is not None:
                        result = self._from_record(payload, rec, from_cache=True)
                        resolved[key] = result
                        cache_hits += 1
                        done += 1
                        if report_progress is not None:
                            report_progress(done, len(unique), result)
                sp.set(hits=cache_hits, journal_hits=journal_hits)
            stages["cache_lookup"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            pending = [p for k, p in unique.items() if k not in resolved]
            mode = "serial"
            solver_batches: list[dict[str, object]] = []
            with trace_span("sweep.solve", pending=len(pending)) as sp:
                if pending:
                    use_pool = (
                        self.backend in ("auto", "process")
                        and self.jobs > 1
                        and len(pending) >= self.min_parallel_points
                    )
                    if use_pool:
                        mode = self._run_parallel(
                            pending, resolved, stats, report_progress, done, policy
                        )
                    elif self.backend in ("auto", "batch") and self.worker is solve_job:
                        mode = self._run_batch(
                            pending,
                            resolved,
                            stats,
                            report_progress,
                            done,
                            solver_batches,
                            policy,
                        )
                    else:
                        self._run_serial(
                            pending, resolved, stats, report_progress, done
                        )
                sp.set(mode=mode)
            stages["solve"] = time.perf_counter() - t0

            # persist fresh successes (journal-replayed points too: the
            # interrupted run died before its store_write, and put() is
            # idempotent for anything already on disk)
            t0 = time.perf_counter()
            with trace_span("sweep.store_write"):
                if self.store is not None:
                    for key, result in resolved.items():
                        if result.ok and (not result.from_cache or key in replay):
                            self.store.put(key, _result_record(result))
                    self.store.flush()
            if journal is not None:
                journal.close()
            stages["store_write"] = time.perf_counter() - t0

            # assemble per-request results (duplicates share the first solve)
            t0 = time.perf_counter()
            with trace_span("sweep.assemble"):
                results: list[RunResult] = []
                seen: set[str] = set()
                for payload in payloads:
                    key = payload["key"]
                    base = resolved[key]
                    results.append(base if key not in seen else base.as_duplicate())
                    seen.add(key)
                failures = sum(1 for r in resolved.values() if not r.ok)
            stages["assemble"] = time.perf_counter() - t0

            solved = len(resolved) - cache_hits - journal_hits - failures
            root.set(mode=mode, solved=solved)

        manifest = RunManifest(
            solver_version=SOLVER_VERSION,
            jobs=self.jobs,
            mode=mode,
            backend=self.backend,
            solver_batches=solver_batches,
            total_points=len(specs),
            unique_points=len(unique),
            cache_hits=cache_hits,
            solved=solved,
            failures=failures,
            timeouts=stats.timeouts,
            retries=stats.retries,
            worker_crashes=stats.worker_crashes,
            wall_clock_s=time.perf_counter() - t_start,
            cache_hit_rate=(cache_hits / len(unique)) if unique else 0.0,
            point_latency=latency_stats(stats.latencies, amortized=stats.amortized),
            store=self.store.stats() if self.store is not None else None,
            stages=stages,
            metrics=diff_snapshots(metrics_before, obs_registry().snapshot()),
            journal_hits=journal_hits,
            resumed=bool(self.resume and self.journal is not None),
            journal_path=str(self.journal) if self.journal is not None else None,
            degradations=policy.to_list(),
        )
        return RunReport(results=results, manifest=manifest)

    # -------------------------------------------------------------- internals
    def _from_record(
        self,
        payload: Mapping[str, object],
        rec: Mapping[str, object],
        from_cache: bool,
    ) -> RunResult:
        return RunResult(
            key=payload["key"],
            params=MMSParams.from_dict(payload["params"]),
            method=payload["method"],
            perf=MMSPerformance.from_dict(rec["perf"]),
            elapsed=float(rec.get("elapsed", 0.0)),
            attempts=0 if from_cache else 1,
            from_cache=from_cache,
            amortized=bool(rec.get("amortized", False)),
        )

    def _failure(
        self, payload: Mapping[str, object], error: str, attempts: int
    ) -> RunResult:
        return RunResult(
            key=payload["key"],
            params=MMSParams.from_dict(payload["params"]),
            method=payload["method"],
            perf=None,
            attempts=attempts,
            error=error,
        )

    def _solve_with_retry(
        self,
        payload: Mapping[str, object],
        stats: _RunStats,
        prior_attempts: int = 0,
        prior_error: str | None = None,
    ) -> RunResult:
        """In-process solve with bounded retry on exceptions.

        ``prior_attempts``/``prior_error`` carry failed pool attempts into
        the budget, so a point gets ``retries + 1`` attempts total no matter
        where they ran.
        """
        attempts = prior_attempts
        last_error = prior_error
        while attempts <= self.retries:
            attempts += 1
            if attempts > 1:
                stats.retries += 1
            try:
                out = self.worker(payload)
            except Exception as exc:  # noqa: BLE001 - solver faults become results
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            if not finite_measures(out.get("perf")):
                # NaN/Inf must never reach the store (its canonical
                # encoding rejects them); burn an attempt instead
                last_error = "non-finite measures in solve result"
                continue
            result = self._from_record(payload, out, from_cache=False)
            result.attempts = attempts
            stats.latencies.append(result.elapsed)
            return result
        return self._failure(payload, last_error or "unknown error", attempts)

    def _run_serial(
        self,
        pending: list[Mapping[str, object]],
        resolved: dict[str, RunResult],
        stats: _RunStats,
        progress: Progress | None,
        done: int,
    ) -> None:
        self._run_serial_counted(
            pending, resolved, stats, progress, done, done + len(pending)
        )

    def _run_serial_counted(
        self,
        pending: list[Mapping[str, object]],
        resolved: dict[str, RunResult],
        stats: _RunStats,
        progress: Progress | None,
        done: int,
        total: int,
    ) -> None:
        for payload in pending:
            result = self._solve_with_retry(payload, stats)
            resolved[payload["key"]] = result
            done += 1
            if progress is not None:
                progress(done, total, result)

    def _run_batch(
        self,
        pending: list[Mapping[str, object]],
        resolved: dict[str, RunResult],
        stats: _RunStats,
        progress: Progress | None,
        done: int,
        solver_batches: list[dict[str, object]],
        policy: DegradationPolicy,
    ) -> str:
        """Batched in-process execution; returns the mode the run ended in.

        Pending points are grouped by ``(method, machine size)`` -- the
        homogeneity :func:`~repro.core.model.solve_points` requires -- and
        each group large enough is solved as one stacked fixed point.
        Leftovers (small groups, unbatchable methods) run per-point; a
        group whose batch solve raised or produced non-finite measures is
        a recorded batch->serial degradation and also runs per-point.  The
        mode is ``"batch"`` only if at least one group actually batched.
        """
        from ..core.model import solve_points

        total = done + len(pending)
        groups: dict[tuple[str, int], list[Mapping[str, object]]] = {}
        for payload in pending:
            params = MMSParams.from_dict(payload["params"])
            groups.setdefault(
                (payload["method"], params.arch.num_processors), []
            ).append(payload)

        batched_any = False
        serial_left: list[Mapping[str, object]] = []
        for (method, _size), group in groups.items():
            if method not in BATCHABLE_METHODS or len(group) < self.min_batch_points:
                serial_left.extend(group)
                continue
            t0 = time.perf_counter()
            try:
                perfs, telemetry = solve_points(
                    [MMSParams.from_dict(p["params"]) for p in group],
                    method=method,
                )
            except Exception as exc:  # noqa: BLE001 - degrade to the per-point loop
                policy.degrade(
                    "batch", "serial", f"{type(exc).__name__}: {exc}", len(group)
                )
                serial_left.extend(group)
                continue
            if not all(finite_measures(perf.to_dict()) for perf in perfs):
                policy.degrade(
                    "batch",
                    "serial",
                    "non-finite measures in batched solve",
                    len(group),
                )
                serial_left.extend(group)
                continue
            batched_any = True
            # The true batch span is recorded once: `solve_points` emits the
            # solver.batch trace span and the telemetry below carries the
            # batch wall time.  Each point still gets an even `share` so the
            # manifest's point-latency distribution counts every point, but
            # the results are flagged amortized so time-attribution (the
            # `report` command) never re-sums shares on top of the batch.
            share = (time.perf_counter() - t0) / len(group)
            for payload, perf in zip(group, perfs):
                result = self._from_record(
                    payload,
                    {"perf": perf.to_dict(), "elapsed": share, "amortized": True},
                    from_cache=False,
                )
                stats.latencies.append(result.elapsed)
                stats.amortized += 1
                resolved[payload["key"]] = result
                done += 1
                if progress is not None:
                    progress(done, total, result)
            if telemetry is not None:
                solver_batches.append({"method": method, **telemetry.to_dict()})

        if serial_left:
            self._run_serial_counted(serial_left, resolved, stats, progress, done, total)
        return "batch" if batched_any else "serial"

    def _pooled_result(
        self,
        future,
        futures: list[tuple[Mapping[str, object], object]],
        watch: "_PoolWatch",
    ) -> Mapping[str, object]:
        """One pooled result under the per-point *execution* budget.

        ``self.timeout`` is charged against solve time, not queue wait:
        *watch* arms a deadline for every future the moment it is first
        observed running, so a point queued behind a busy pool keeps its
        full budget no matter how late collection reaches it.  (The pool
        marks a work item running when it enters its dispatch queue, so
        the budget can include at most one predecessor's remaining solve
        time.)

        While the point waits for a worker slot, the watch's progress
        clock backstops the pathological case where every worker is
        wedged: collection runs in submission order, so an undispatched
        point here means each worker is either about to pick it up or
        stuck on an already-abandoned (timed-out) point -- if a full
        budget passes without any point starting, waiting cannot help, and
        the wait is abandoned as a timeout (:class:`FutureTimeout`) rather
        than blocking forever.
        """
        while True:
            watch.arm(futures, self.timeout)
            deadline = watch.deadlines.get(future)
            try:
                if deadline is not None:
                    return future.result(
                        timeout=max(0.0, deadline - time.monotonic())
                    )
                return future.result(timeout=_POLL_S)
            except FutureTimeout:
                if deadline is not None:
                    raise
                if time.monotonic() - watch.progress_t >= self.timeout:
                    raise

    def _run_parallel(
        self,
        pending: list[Mapping[str, object]],
        resolved: dict[str, RunResult],
        stats: _RunStats,
        progress: Progress | None,
        done: int,
        policy: DegradationPolicy,
    ) -> str:
        """Pool execution; returns the mode the run ended in.

        The per-point timeout budgets *execution*, not queue wait: each
        future's clock arms when it is first observed running, so a long
        sweep whose total wall clock exceeds the timeout never spuriously
        fails points that merely queued behind a busy pool, and a future
        that finished within budget is always collected even if collection
        gets to it late.  A pool that stops making progress entirely (every
        worker wedged on a hung point) fails its never-started points as
        timeouts instead of waiting forever -- see :meth:`_pooled_result`.
        """
        total = done + len(pending)
        mode = "parallel"
        # Under an active tracer, submitted payload copies carry the trace
        # context; each worker's buffered spans come back in the result and
        # are ingested here (retries/fallback run in-process and trace
        # through the global tracer directly).  The "pooled" mark scopes the
        # worker.* fault sites to pool processes.
        tracer = get_tracer()
        ctx = tracer.context() if tracer is not None else None
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        pool_error: str | None = None
        hung = False
        #: arms execution deadlines as points start; shared stall guard
        watch = _PoolWatch()
        try:
            try:
                futures = []
                for p in pending:
                    job = {**p, "pooled": True}
                    if ctx is not None:
                        job["trace"] = ctx
                    futures.append((p, pool.submit(self.worker, job)))
            except BrokenProcessPool as exc:
                pool_error = f"{type(exc).__name__}: {exc}"
                futures = []
            for payload, future in futures:
                key = payload["key"]
                try:
                    if self.timeout is None:
                        out = future.result()
                    else:
                        out = self._pooled_result(future, futures, watch)
                    if tracer is not None and out.get("spans"):
                        tracer.ingest(out["spans"])
                    if not finite_measures(out.get("perf")):
                        result = self._solve_with_retry(
                            payload,
                            stats,
                            prior_attempts=1,
                            prior_error="non-finite measures in solve result",
                        )
                    else:
                        result = self._from_record(payload, out, from_cache=False)
                        stats.latencies.append(result.elapsed)
                except FutureTimeout:
                    future.cancel()
                    stats.timeouts += 1
                    hung = True
                    result = self._failure(
                        payload, f"{TIMEOUT_ERROR_PREFIX}{self.timeout}s", attempts=1
                    )
                except BrokenProcessPool as exc:
                    pool_error = f"{type(exc).__name__}: {exc}"
                    break  # pool is dead; fall through to serial below
                except Exception as exc:  # worker raised: bounded serial retry
                    result = self._solve_with_retry(
                        payload,
                        stats,
                        prior_attempts=1,
                        prior_error=f"{type(exc).__name__}: {exc}",
                    )
                resolved[key] = result
                done += 1
                if progress is not None:
                    progress(done, total, result)
        finally:
            # don't block on a hung-but-running worker; cancel what we can,
            # and kill workers still running a timed-out point outright so
            # interpreter exit never joins a sleeping process
            handles = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            if hung:
                for proc in handles:
                    if proc.is_alive():
                        proc.terminate()

        remaining = [p for p in pending if p["key"] not in resolved]
        if remaining:
            stats.worker_crashes += 1
            mode = "serial-fallback"
            policy.degrade(
                "process",
                "serial",
                pool_error or "broken process pool",
                len(remaining),
            )
            self._run_serial(remaining, resolved, stats, progress, done)
        return mode

    def close(self) -> None:
        if self.store is not None:
            self.store.flush()
