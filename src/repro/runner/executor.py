"""The sweep runner: managed, parallel, cached execution of model points.

Execution pipeline for one :meth:`SweepRunner.run`:

1. **Deduplicate** the requested specs by content-addressed key -- within a
   single run an identical point is never solved twice.
2. **Probe the store**: keys with a persisted result become cache hits.
3. **Solve the misses** on one of three backends:

   * ``batch`` -- stack same-shape points into one batched AMVA fixed point
     (:func:`repro.core.model.solve_points`); the in-process default for
     figure-sized lattices, typically an order of magnitude faster than the
     per-point loop.  Symmetric points come back bitwise-identical to a
     scalar solve, so swapping backends never disturbs cached records.
   * ``process`` -- a ``ProcessPoolExecutor`` with per-point timeout.
     Worker exceptions are retried (bounded); a broken pool (worker died)
     degrades gracefully to serial execution of whatever is left.
   * ``serial`` -- the per-point in-process loop (tiny sweeps, where any
     batching or pool overhead would dominate; also the fallback when a
     batch group fails).

4. **Persist** fresh results and emit a :class:`~repro.runner.manifest.RunManifest`.

Fresh solves are round-tripped through the same JSON form a cache hit is
read from, so a warm run is bitwise-indistinguishable from a cold one.

Resilience (see ``docs/RESILIENCE.md``): every backend fallback is an
explicit :class:`~repro.resilience.degrade.DegradationPolicy` step recorded
in ``manifest.degradations``; with ``journal=`` each completed point is
durably appended to a :class:`~repro.resilience.journal.SweepJournal` so a
killed sweep resumes (``resume=True``) bitwise-identically; non-finite
solver output is caught before it can poison the store; and the
``worker.crash`` / ``worker.hang`` / ``solve.delay`` fault sites let the
chaos suite drive every one of those paths deterministically.
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.metrics import MMSPerformance
from ..core.model import MMSModel
from ..obs import Tracer, diff_snapshots, get_tracer
from ..obs import registry as obs_registry
from ..obs import trace_span
from ..obs.timeseries import get_recorder
from ..obs.trace import configure
from ..params import MMSParams
from ..queueing.kernels import resolve_kernel
from ..queueing.kernels.shm import SharedArrays, attach_arrays, write_arrays
from ..resilience.degrade import DegradationPolicy
from ..resilience.faults import fault_point
from ..resilience.integrity import finite_measures
from ..resilience.journal import SweepJournal, sweep_signature
from ..scenarios import payload_scenario
from .manifest import RunManifest, latency_stats
from .spec import SOLVER_VERSION, TIMEOUT_ERROR_PREFIX, JobSpec, RunResult
from .store import ResultStore

__all__ = [
    "SweepRunner",
    "RunReport",
    "solve_job",
    "solve_group_shm",
    "BACKENDS",
    "BATCHABLE_METHODS",
]

#: a worker callable: JSON payload in, ``{"perf": dict, "elapsed": s}`` out
Worker = Callable[[Mapping[str, object]], Mapping[str, object]]
#: progress callback: ``(done, total_unique, result)``
Progress = Callable[[int, int, RunResult], None]

#: recognised execution backends
BACKENDS = ("auto", "batch", "process", "serial")
#: solver methods the batched kernel accepts; others always run per-point
BATCHABLE_METHODS = ("symmetric", "amva")
#: poll interval while a pooled point waits for a worker slot
_POLL_S = 0.05


def solve_job(payload: Mapping[str, object]) -> dict[str, object]:
    """Default worker: solve one canonicalized point.

    Module-level so it pickles for process-pool dispatch; takes and returns
    pure-JSON structures so the same function serves the serial path.

    When the payload carries a ``"trace"`` context (pool dispatch under an
    active tracer), the solve runs under a local buffering tracer adopted
    from it and the finished spans ride back with the result as
    ``"spans"`` -- the parent ingests them into its own sink, so workers
    never touch the trace file.
    """
    if payload.get("pooled"):
        # chaos sites for pool workers only: the executor marks dispatched
        # payloads, so the parent's serial fallback can never kill itself
        if fault_point("worker.crash") is not None:
            os.kill(os.getpid(), signal.SIGKILL)
        spec = fault_point("worker.hang")
        if spec is not None:
            time.sleep(float(spec.args.get("sleep_s", 30.0)))
    spec = fault_point("solve.delay")
    if spec is not None:
        time.sleep(float(spec.args.get("sleep_s", 0.05)))
    scenario = payload_scenario(payload)
    params = scenario.params_from_dict(payload["params"])
    ctx = payload.get("trace")
    if ctx is not None:
        tracer = Tracer.adopt(ctx)
        prev = configure(tracer=tracer)
        try:
            t0 = time.perf_counter()
            with tracer.span(
                "sweep.point", key=str(payload["key"])[:12], method=payload["method"]
            ):
                perf = scenario.solve(params, method=payload["method"])
            elapsed = time.perf_counter() - t0
        finally:
            configure(**prev)
        return {"perf": perf.to_dict(), "elapsed": elapsed, "spans": tracer.drain()}
    t0 = time.perf_counter()
    with trace_span(
        "sweep.point", key=str(payload["key"])[:12], method=payload["method"]
    ):
        perf = scenario.solve(params, method=payload["method"])
    return {"perf": perf.to_dict(), "elapsed": time.perf_counter() - t0}


def solve_group_shm(payload: Mapping[str, object]) -> dict[str, object]:
    """Pool worker for one shared-memory batched group.

    The packed station arrays arrive as a :class:`SharedArrays` descriptor
    (``payload["shm"]``) instead of pickled bytes; the solved arrays travel
    back through pre-created result segments (``payload["out"]``), so the
    only pickled traffic either direction is the small name/shape/dtype
    metadata -- a figure-scale group costs the pool two byte copies, not
    two serializations.  Runs the same ``solve_symmetric_batch`` every
    other backend uses, so results are bitwise-identical to an in-process
    batched solve.
    """
    if payload.get("pooled"):
        if fault_point("worker.crash") is not None:
            os.kill(os.getpid(), signal.SIGKILL)
        spec = fault_point("worker.hang")
        if spec is not None:
            time.sleep(float(spec.args.get("sleep_s", 30.0)))
    from ..queueing.mva_batch import solve_symmetric_batch

    t0 = time.perf_counter()
    arrays = attach_arrays(payload["shm"])
    sols = solve_symmetric_batch(
        arrays["visits"],
        arrays["service"],
        arrays["station_type"],
        arrays["populations"],
        tol=float(payload.get("tol", 1e-12)),
        servers=arrays["servers"],
        kernel=payload.get("kernel"),
    )
    batch = sols[0].telemetry.batch if sols and sols[0].telemetry else None
    write_arrays(
        payload["out"],
        {
            "throughput": np.array([s.throughput for s in sols]),
            "waiting": np.stack([s.waiting for s in sols]),
            "queue": np.stack([s.queue_length for s in sols]),
            "total_queue": np.stack([s.total_queue for s in sols]),
            "iterations": np.array([s.iterations for s in sols], dtype=np.int64),
            "converged": np.array([s.converged for s in sols], dtype=bool),
            "residual": np.array([s.residual for s in sols]),
        },
    )
    return {
        "batch": None if batch is None else batch.to_dict(),
        "elapsed": time.perf_counter() - t0,
    }


class _PoolWatch:
    """Execution-deadline bookkeeping for one pool collection loop.

    See :meth:`SweepRunner._pooled_result` for the semantics; one instance
    is shared by every pooled wait of a run so deadlines arm as points
    start, not as collection happens to reach them.
    """

    def __init__(self) -> None:
        #: per-future execution deadline, armed at first observed running
        self.deadlines: dict = {}
        #: index into the futures list; everything before it is armed
        self._armed_prefix = 0
        #: last instant the pool showed life (a point started running)
        self.progress_t = time.monotonic()

    def arm(self, futures: list, timeout: float) -> None:
        """Arm deadlines for futures that have started since the last scan.

        The pool dispatches work items in submission order, so the scan
        walks the armed prefix forward and stops at the first future that
        is neither running nor done -- nothing later can have started yet.
        Amortized O(1) per call over a run.
        """
        now = time.monotonic()
        i = self._armed_prefix
        while i < len(futures):
            f = futures[i][1]
            if f not in self.deadlines:
                if not (f.running() or f.done()):
                    break
                self.deadlines[f] = now + timeout
                self.progress_t = now
            i += 1
        self._armed_prefix = i


@dataclass
class RunReport:
    """Everything one managed sweep produced."""

    #: one result per requested spec, in request order
    results: list[RunResult]
    manifest: RunManifest

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def records(self) -> list[dict[str, object]]:
        """Deterministic data records (raises if any point failed)."""
        return [r.record() for r in self.results]


def _result_record(result: RunResult) -> dict[str, object]:
    """The persistable record of a successful result.

    One shape for the store, the journal, and journal replay -- the round
    trip through this JSON form is what makes warm, resumed and cold runs
    bitwise-indistinguishable.
    """
    rec: dict[str, object] = {
        "method": result.method,
        "params": result.params.to_dict(),
        "perf": result.perf.to_dict(),
        "elapsed": result.elapsed,
    }
    if result.amortized:
        rec["amortized"] = True
    return rec


class _RunStats:
    """Mutable counters threaded through one run."""

    def __init__(self) -> None:
        self.timeouts = 0
        self.retries = 0
        self.worker_crashes = 0
        self.latencies: list[float] = []
        #: how many of ``latencies`` are amortized batch shares
        self.amortized = 0


class SweepRunner:
    """Managed executor for batches of model points.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (default) solves in-process.
    store / cache_dir:
        Persistent result store (or a directory to open one in).  ``None``
        disables caching.
    timeout:
        Per-point wall-clock budget in seconds.  Enforced only on the
        parallel path -- a serial in-process solve cannot be preempted.
    retries:
        Extra attempts for a point whose solve *raised* (timeouts are not
        retried: a point that exceeded its budget once will again).
    min_parallel_points:
        Smallest number of cache misses worth spinning up a pool for;
        below it the run stays serial regardless of ``jobs``.
    worker:
        Override the solve callable (test seam / custom backends).  Must be
        picklable for the parallel path.  A custom worker disables the
        batched backend -- batching is a property of the default solver.
    backend:
        ``"auto"`` (default) picks the process pool when ``jobs > 1`` and
        the sweep is big enough, then the batched kernel for groups of
        same-shape points, then per-point serial.  ``"batch"``,
        ``"process"`` and ``"serial"`` force a backend (each still falls
        back to serial where its preconditions fail -- e.g. one point,
        unbatchable method, or a dead pool).
    min_batch_points:
        Smallest group of same-shape cache misses worth stacking into one
        batched solve; below it points run per-point.
    kernel:
        Solver kernel for every batched solve (``"auto"``/``"numpy"``/
        ``"numba"``); ``None`` (default) honours :func:`repro.configure`
        and ``REPRO_SOLVE_KERNEL``.  Validated eagerly, so an explicit but
        unavailable kernel fails at construction, not mid-sweep.
    min_shm_points:
        Smallest symmetric same-shape group the process backend ships to a
        pool worker as one shared-memory batched solve (zero-pickle array
        handoff, see :mod:`repro.queueing.kernels.shm`); smaller groups are
        dispatched per point.  Only applies when no per-point ``timeout``
        is set -- a batched group cannot be preempted point by point.
    journal:
        Path of a sweep progress journal.  When given, every completed
        point is durably appended (one flushed line each) so an
        interrupted sweep can be resumed.
    resume:
        Replay an existing journal at ``journal`` before solving: its
        verified records count as ``journal_hits`` and only the remainder
        is solved.  The journal must belong to this exact sweep (same
        points, same solver version) -- a mismatch raises
        :class:`~repro.resilience.journal.JournalError`.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: ResultStore | None = None,
        cache_dir: str | None = None,
        timeout: float | None = None,
        retries: int = 1,
        min_parallel_points: int = 8,
        worker: Worker | None = None,
        backend: str = "auto",
        min_batch_points: int = 2,
        journal: str | os.PathLike | None = None,
        resume: bool = False,
        kernel: str | None = None,
        min_shm_points: int = 1024,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; pick from {'/'.join(BACKENDS)}"
            )
        if min_batch_points < 2:
            raise ValueError(f"min_batch_points must be >= 2, got {min_batch_points}")
        if min_shm_points < 2:
            raise ValueError(f"min_shm_points must be >= 2, got {min_shm_points}")
        if kernel is not None:
            # fail fast: an unknown name or an explicitly requested but
            # unavailable kernel should surface here, not mid-sweep
            resolve_kernel(kernel)
        if store is None and cache_dir is not None:
            store = ResultStore(cache_dir)
        self.jobs = jobs
        self.store = store
        self.timeout = timeout
        self.retries = retries
        self.min_parallel_points = min_parallel_points
        self.worker: Worker = worker if worker is not None else solve_job
        self.backend = backend
        self.min_batch_points = min_batch_points
        self.journal = journal
        self.resume = resume
        self.kernel = kernel
        self.min_shm_points = min_shm_points

    # ------------------------------------------------------------ public API
    def solve(self, params: MMSParams, method: str = "auto") -> MMSPerformance:
        """Single-point convenience: solve through the cache, raise on failure."""
        report = self.run([JobSpec(params=params, method=method)])
        result = report.results[0]
        if not result.ok:
            raise RuntimeError(f"solve failed: {result.error}")
        return result.perf

    def run(
        self, specs: Sequence[JobSpec], progress: Progress | None = None
    ) -> RunReport:
        t_start = time.perf_counter()
        created_at = time.time()
        # a process-global MetricsRecorder (if the embedder started one)
        # gets its windowed digest embedded under manifest.series
        recorder = get_recorder()
        stats = _RunStats()
        policy = DegradationPolicy()
        metrics_before = obs_registry().snapshot()
        #: consecutive wall-clock segments; they tile the run, so their sum
        #: tracks ``wall_clock_s`` (CI asserts within 5%)
        stages: dict[str, float] = {}

        with trace_span(
            "sweep.run", total_points=len(specs), backend=self.backend, jobs=self.jobs
        ) as root:
            t0 = time.perf_counter()
            with trace_span("sweep.spec_hash", points=len(specs)):
                payloads = [spec.payload() for spec in specs]
                # first-seen order of unique keys
                unique: dict[str, dict[str, object]] = {}
                for payload in payloads:
                    unique.setdefault(payload["key"], payload)
            stages["spec_hash"] = time.perf_counter() - t0

            # open (or resume) the durable progress journal; the "journal"
            # stage exists only when journaling is on, so unjournaled runs
            # keep their exact historical stage set
            journal: SweepJournal | None = None
            replay: dict[str, dict[str, object]] = {}
            journal_hits = 0
            if self.journal is not None:
                t0 = time.perf_counter()
                sig = sweep_signature(unique, SOLVER_VERSION)
                with trace_span("sweep.journal", resume=self.resume) as sp:
                    if self.resume:
                        journal, replay = SweepJournal.resume(
                            self.journal, sig, len(unique)
                        )
                    else:
                        journal = SweepJournal.create(self.journal, sig, len(unique))
                    sp.set(replayed=len(replay), dropped=journal.dropped)
                stages["journal"] = time.perf_counter() - t0

            report_progress = progress
            if journal is not None:
                # every successful point is durably journaled the moment it
                # completes -- the solve paths all funnel through progress
                def report_progress(
                    done: int,
                    total: int,
                    result: RunResult,
                    _journal: SweepJournal = journal,
                    _inner: Progress | None = progress,
                ) -> None:
                    if result.ok:
                        _journal.append(result.key, _result_record(result))
                    if _inner is not None:
                        _inner(done, total, result)

            t0 = time.perf_counter()
            resolved: dict[str, RunResult] = {}
            cache_hits = 0
            done = 0
            with trace_span("sweep.cache_lookup", unique_points=len(unique)) as sp:
                for key, payload in unique.items():
                    rec = replay.get(key)
                    if rec is not None:
                        result = self._from_record(payload, rec, from_cache=True)
                        resolved[key] = result
                        journal_hits += 1
                        done += 1
                        if report_progress is not None:
                            report_progress(done, len(unique), result)
                        continue
                    rec = self.store.get(key) if self.store is not None else None
                    if rec is not None:
                        result = self._from_record(payload, rec, from_cache=True)
                        resolved[key] = result
                        cache_hits += 1
                        done += 1
                        if report_progress is not None:
                            report_progress(done, len(unique), result)
                sp.set(hits=cache_hits, journal_hits=journal_hits)
            stages["cache_lookup"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            pending = [p for k, p in unique.items() if k not in resolved]
            mode = "serial"
            solver_batches: list[dict[str, object]] = []
            with trace_span("sweep.solve", pending=len(pending)) as sp:
                if pending:
                    use_pool = (
                        self.backend in ("auto", "process")
                        and self.jobs > 1
                        and len(pending) >= self.min_parallel_points
                    )
                    if use_pool:
                        mode = self._run_parallel(
                            pending,
                            resolved,
                            stats,
                            report_progress,
                            done,
                            policy,
                            solver_batches,
                        )
                    elif self.backend in ("auto", "batch") and self.worker is solve_job:
                        mode = self._run_batch(
                            pending,
                            resolved,
                            stats,
                            report_progress,
                            done,
                            solver_batches,
                            policy,
                        )
                    else:
                        self._run_serial(
                            pending, resolved, stats, report_progress, done
                        )
                sp.set(mode=mode)
            stages["solve"] = time.perf_counter() - t0

            # persist fresh successes (journal-replayed points too: the
            # interrupted run died before its store_write, and put() is
            # idempotent for anything already on disk)
            t0 = time.perf_counter()
            with trace_span("sweep.store_write"):
                if self.store is not None:
                    for key, result in resolved.items():
                        if result.ok and (not result.from_cache or key in replay):
                            self.store.put(key, _result_record(result))
                    self.store.flush()
            if journal is not None:
                journal.close()
            stages["store_write"] = time.perf_counter() - t0

            # assemble per-request results (duplicates share the first solve)
            t0 = time.perf_counter()
            with trace_span("sweep.assemble"):
                results: list[RunResult] = []
                seen: set[str] = set()
                for payload in payloads:
                    key = payload["key"]
                    base = resolved[key]
                    results.append(base if key not in seen else base.as_duplicate())
                    seen.add(key)
                failures = sum(1 for r in resolved.values() if not r.ok)
            stages["assemble"] = time.perf_counter() - t0

            solved = len(resolved) - cache_hits - journal_hits - failures
            root.set(mode=mode, solved=solved)

        try:
            kernel_name = resolve_kernel(self.kernel)
        except ValueError:  # pragma: no cover - env-forced kernel went missing
            kernel_name = self.kernel or "auto"
        manifest = RunManifest(
            solver_version=SOLVER_VERSION,
            jobs=self.jobs,
            mode=mode,
            backend=self.backend,
            kernel=kernel_name,
            solver_batches=solver_batches,
            total_points=len(specs),
            unique_points=len(unique),
            cache_hits=cache_hits,
            solved=solved,
            failures=failures,
            timeouts=stats.timeouts,
            retries=stats.retries,
            worker_crashes=stats.worker_crashes,
            wall_clock_s=time.perf_counter() - t_start,
            cache_hit_rate=(cache_hits / len(unique)) if unique else 0.0,
            point_latency=latency_stats(stats.latencies, amortized=stats.amortized),
            store=self.store.stats() if self.store is not None else None,
            stages=stages,
            metrics=diff_snapshots(metrics_before, obs_registry().snapshot()),
            journal_hits=journal_hits,
            resumed=bool(self.resume and self.journal is not None),
            journal_path=str(self.journal) if self.journal is not None else None,
            degradations=policy.to_list(),
            created_at=created_at,
            series=recorder.summary() if recorder is not None else None,
        )
        return RunReport(results=results, manifest=manifest)

    # -------------------------------------------------------------- internals
    def _from_record(
        self,
        payload: Mapping[str, object],
        rec: Mapping[str, object],
        from_cache: bool,
    ) -> RunResult:
        scenario = payload_scenario(payload)
        return RunResult(
            key=payload["key"],
            params=scenario.params_from_dict(payload["params"]),
            method=payload["method"],
            perf=scenario.perf_from_dict(rec["perf"]),
            elapsed=float(rec.get("elapsed", 0.0)),
            attempts=0 if from_cache else 1,
            from_cache=from_cache,
            amortized=bool(rec.get("amortized", False)),
        )

    def _failure(
        self, payload: Mapping[str, object], error: str, attempts: int
    ) -> RunResult:
        return RunResult(
            key=payload["key"],
            params=payload_scenario(payload).params_from_dict(payload["params"]),
            method=payload["method"],
            perf=None,
            attempts=attempts,
            error=error,
        )

    def _solve_with_retry(
        self,
        payload: Mapping[str, object],
        stats: _RunStats,
        prior_attempts: int = 0,
        prior_error: str | None = None,
    ) -> RunResult:
        """In-process solve with bounded retry on exceptions.

        ``prior_attempts``/``prior_error`` carry failed pool attempts into
        the budget, so a point gets ``retries + 1`` attempts total no matter
        where they ran.
        """
        attempts = prior_attempts
        last_error = prior_error
        while attempts <= self.retries:
            attempts += 1
            if attempts > 1:
                stats.retries += 1
            try:
                out = self.worker(payload)
            except Exception as exc:  # noqa: BLE001 - solver faults become results
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            if not finite_measures(out.get("perf")):
                # NaN/Inf must never reach the store (its canonical
                # encoding rejects them); burn an attempt instead
                last_error = "non-finite measures in solve result"
                continue
            result = self._from_record(payload, out, from_cache=False)
            result.attempts = attempts
            stats.latencies.append(result.elapsed)
            return result
        return self._failure(payload, last_error or "unknown error", attempts)

    def _run_serial(
        self,
        pending: list[Mapping[str, object]],
        resolved: dict[str, RunResult],
        stats: _RunStats,
        progress: Progress | None,
        done: int,
    ) -> None:
        self._run_serial_counted(
            pending, resolved, stats, progress, done, done + len(pending)
        )

    def _run_serial_counted(
        self,
        pending: list[Mapping[str, object]],
        resolved: dict[str, RunResult],
        stats: _RunStats,
        progress: Progress | None,
        done: int,
        total: int,
    ) -> None:
        for payload in pending:
            result = self._solve_with_retry(payload, stats)
            resolved[payload["key"]] = result
            done += 1
            if progress is not None:
                progress(done, total, result)

    def _run_batch(
        self,
        pending: list[Mapping[str, object]],
        resolved: dict[str, RunResult],
        stats: _RunStats,
        progress: Progress | None,
        done: int,
        solver_batches: list[dict[str, object]],
        policy: DegradationPolicy,
    ) -> str:
        """Batched in-process execution; returns the mode the run ended in.

        Pending points are grouped by ``(scenario, method, group key)`` --
        the homogeneity the scenario's batched solve requires (for the
        torus: one machine size, per :func:`~repro.core.model.solve_points`)
        -- and each group large enough is solved as one stacked fixed
        point.  Leftovers (small groups, unbatchable methods, scenarios
        without a batch path) run per-point; a group whose batch solve
        raised or produced non-finite measures is a recorded batch->serial
        degradation and also runs per-point.  The mode is ``"batch"`` only
        if at least one group actually batched.
        """
        total = done + len(pending)
        groups: dict[tuple, list[Mapping[str, object]]] = {}
        for payload in pending:
            scenario = payload_scenario(payload)
            params = scenario.params_from_dict(payload["params"])
            groups.setdefault(
                (scenario.name, payload["method"], scenario.group_key(params)), []
            ).append(payload)

        batched_any = False
        serial_left: list[Mapping[str, object]] = []
        for (scenario_name, method, group_key), group in groups.items():
            scenario = payload_scenario(group[0])
            if (
                group_key is None
                or method not in scenario.batchable_methods
                or len(group) < self.min_batch_points
            ):
                serial_left.extend(group)
                continue
            t0 = time.perf_counter()
            try:
                perfs, telemetry = scenario.solve_points(
                    [scenario.params_from_dict(p["params"]) for p in group],
                    method=method,
                    kernel=self.kernel,
                )
            except Exception as exc:  # noqa: BLE001 - degrade to the per-point loop
                policy.degrade(
                    "batch", "serial", f"{type(exc).__name__}: {exc}", len(group)
                )
                serial_left.extend(group)
                continue
            if not all(finite_measures(perf.to_dict()) for perf in perfs):
                policy.degrade(
                    "batch",
                    "serial",
                    "non-finite measures in batched solve",
                    len(group),
                )
                serial_left.extend(group)
                continue
            batched_any = True
            # The true batch span is recorded once: `solve_points` emits the
            # solver.batch trace span and the telemetry below carries the
            # batch wall time.  Each point still gets an even `share` so the
            # manifest's point-latency distribution counts every point, but
            # the results are flagged amortized so time-attribution (the
            # `report` command) never re-sums shares on top of the batch.
            share = (time.perf_counter() - t0) / len(group)
            for payload, perf in zip(group, perfs):
                result = self._from_record(
                    payload,
                    {"perf": perf.to_dict(), "elapsed": share, "amortized": True},
                    from_cache=False,
                )
                stats.latencies.append(result.elapsed)
                stats.amortized += 1
                resolved[payload["key"]] = result
                done += 1
                if progress is not None:
                    progress(done, total, result)
            if telemetry is not None:
                solver_batches.append({"method": method, **telemetry.to_dict()})

        if serial_left:
            self._run_serial_counted(serial_left, resolved, stats, progress, done, total)
        return "batch" if batched_any else "serial"

    def _pooled_result(
        self,
        future,
        futures: list[tuple[Mapping[str, object], object]],
        watch: "_PoolWatch",
    ) -> Mapping[str, object]:
        """One pooled result under the per-point *execution* budget.

        ``self.timeout`` is charged against solve time, not queue wait:
        *watch* arms a deadline for every future the moment it is first
        observed running, so a point queued behind a busy pool keeps its
        full budget no matter how late collection reaches it.  (The pool
        marks a work item running when it enters its dispatch queue, so
        the budget can include at most one predecessor's remaining solve
        time.)

        While the point waits for a worker slot, the watch's progress
        clock backstops the pathological case where every worker is
        wedged: collection runs in submission order, so an undispatched
        point here means each worker is either about to pick it up or
        stuck on an already-abandoned (timed-out) point -- if a full
        budget passes without any point starting, waiting cannot help, and
        the wait is abandoned as a timeout (:class:`FutureTimeout`) rather
        than blocking forever.
        """
        while True:
            watch.arm(futures, self.timeout)
            deadline = watch.deadlines.get(future)
            try:
                if deadline is not None:
                    return future.result(
                        timeout=max(0.0, deadline - time.monotonic())
                    )
                return future.result(timeout=_POLL_S)
            except FutureTimeout:
                if deadline is not None:
                    raise
                if time.monotonic() - watch.progress_t >= self.timeout:
                    raise

    def _shm_partition(
        self, pending: list[Mapping[str, object]]
    ) -> tuple[list[list[tuple[Mapping[str, object], MMSModel]]], list[Mapping[str, object]]]:
        """Split *pending* into shm-batchable symmetric groups and the rest.

        A group qualifies for the shared-memory batched handoff when the
        default worker is in play (batching is a property of the default
        solver), no per-point timeout is set (a stacked solve cannot be
        preempted point by point), every point resolves to the symmetric
        method on one machine size, and the group reaches
        ``min_shm_points``.
        """
        if self.worker is not solve_job or self.timeout is not None:
            return [], list(pending)
        groups: dict[int, list[tuple[Mapping[str, object], MMSModel]]] = {}
        rest: list[Mapping[str, object]] = []
        for payload in pending:
            if payload.get("scenario") is not None:
                # the shm pack is torus-specific; non-default scenarios
                # take the per-point (or in-process batch) path
                rest.append(payload)
                continue
            if payload["method"] not in ("auto", "symmetric"):
                rest.append(payload)
                continue
            model = MMSModel(MMSParams.from_dict(payload["params"]))
            if not model.is_symmetric:
                rest.append(payload)
                continue
            groups.setdefault(model.params.arch.num_processors, []).append(
                (payload, model)
            )
        eligible = []
        for _size, group in groups.items():
            if len(group) >= self.min_shm_points:
                eligible.append(group)
            else:
                rest.extend(p for p, _m in group)
        return eligible, rest

    def _submit_shm_group(self, pool: ProcessPoolExecutor, group) -> tuple:
        """Pack one symmetric group into shared memory and submit it.

        Both the packed station arrays and the (pre-created) result
        segments are owned by this process; the worker only ever attaches.
        On any failure the segments are unlinked before re-raising, so a
        broken submission never leaks shared memory.
        """
        arrays = [m.station_arrays() for _, m in group]
        visits = np.stack([a[0] for a in arrays])
        b, m = visits.shape
        inputs = SharedArrays(
            {
                "visits": visits,
                "service": np.stack([a[1] for a in arrays]),
                "servers": np.stack([a[3] for a in arrays]),
                "populations": np.array(
                    [mod.params.workload.num_threads for _, mod in group]
                ),
                "station_type": arrays[0][2],
            }
        )
        try:
            outs = SharedArrays(
                {
                    "throughput": np.zeros(b),
                    "waiting": np.zeros((b, m)),
                    "queue": np.zeros((b, m)),
                    "total_queue": np.zeros((b, m)),
                    "iterations": np.zeros(b, dtype=np.int64),
                    "converged": np.zeros(b, dtype=bool),
                    "residual": np.zeros(b),
                }
            )
        except Exception:
            inputs.unlink()
            raise
        try:
            future = pool.submit(
                solve_group_shm,
                {
                    "shm": inputs.meta,
                    "out": outs.meta,
                    "tol": 1e-12,
                    "kernel": self.kernel,
                    "pooled": True,
                },
            )
        except Exception:
            inputs.unlink()
            outs.unlink()
            raise
        return group, arrays, inputs, outs, future

    def _collect_shm_group(
        self,
        group,
        arrays,
        outs: SharedArrays,
        future,
        resolved: dict[str, RunResult],
        stats: _RunStats,
        progress: Progress | None,
        done: int,
        total: int,
        solver_batches: list[dict[str, object]],
    ) -> int:
        """Turn one finished shm group into per-point results; returns the
        updated done count.  Raises (for the caller to degrade the whole
        group) if the worker failed or produced non-finite measures."""
        out = future.result()
        res = attach_arrays(outs.meta)
        share = float(out["elapsed"]) / len(group)
        results = []
        for i, ((payload, model), arr) in enumerate(zip(group, arrays)):
            perf = model._measures(
                arr[0],
                res["waiting"][i],
                res["queue"][i],
                res["total_queue"][i],
                float(res["throughput"][i]),
                "symmetric",
                int(res["iterations"][i]),
                bool(res["converged"][i]),
                residual=float(res["residual"][i]),
            )
            rec = {"perf": perf.to_dict(), "elapsed": share, "amortized": True}
            if not finite_measures(rec["perf"]):
                raise RuntimeError("non-finite measures in shared-memory batch")
            results.append((payload, rec))
        batch = out.get("batch")
        if batch is not None:
            solver_batches.append({"method": "symmetric", "handoff": "shm", **batch})
            self._record_shm_batch_obs(batch)
        for payload, rec in results:
            result = self._from_record(payload, rec, from_cache=False)
            stats.latencies.append(result.elapsed)
            stats.amortized += 1
            resolved[payload["key"]] = result
            done += 1
            if progress is not None:
                progress(done, total, result)
        return done

    @staticmethod
    def _record_shm_batch_obs(batch: Mapping[str, object]) -> None:
        """Fold a worker-side batched solve into this process's telemetry.

        The worker solved in its own process, so the usual ``solver.batch``
        span and ``solver.batch.*`` counters landed in a registry that died
        with it; re-emit them here from the returned batch telemetry so
        shm-handoff runs mean the same thing in traces and metrics as
        in-process batched ones.
        """
        from ..core.model import _record_batch_obs
        from ..queueing.solution import BatchTelemetry

        telemetry = BatchTelemetry(
            batch_size=int(batch["batch_size"]),
            iterations=int(batch["iterations"]),
            converged=int(batch["converged"]),
            max_residual=float(batch["max_residual"]),
            active_trajectory=tuple(batch["active_trajectory"]),
            wall_time_s=float(batch["wall_time_s"]),
            kernel=str(batch["kernel"]),
        )
        with trace_span("solver.batch", points=telemetry.batch_size) as sp:
            _record_batch_obs(sp, "symmetric", telemetry)

    @staticmethod
    def _degrade_shm_group(
        policy: DegradationPolicy,
        group,
        reason: str,
        shm_failed: list[Mapping[str, object]],
    ) -> None:
        """Record one shm group's shm->batch degradation."""
        policy.degrade("shm", "batch", reason, len(group))
        shm_failed.extend(p for p, _m in group)

    def _run_parallel(
        self,
        pending: list[Mapping[str, object]],
        resolved: dict[str, RunResult],
        stats: _RunStats,
        progress: Progress | None,
        done: int,
        policy: DegradationPolicy,
        solver_batches: list[dict[str, object]],
    ) -> str:
        """Pool execution; returns the mode the run ended in.

        Figure-scale symmetric groups (``min_shm_points`` or more points of
        one machine size) are shipped to a pool worker as a single batched
        solve over shared memory -- zero pickled arrays either direction --
        and unpacked into the same per-point results the batch backend
        produces.  A group whose worker failed degrades (recorded) to the
        in-process batch path, not to per-point serial.  Everything else is
        dispatched per point exactly as before.

        The per-point timeout budgets *execution*, not queue wait: each
        future's clock arms when it is first observed running, so a long
        sweep whose total wall clock exceeds the timeout never spuriously
        fails points that merely queued behind a busy pool, and a future
        that finished within budget is always collected even if collection
        gets to it late.  A pool that stops making progress entirely (every
        worker wedged on a hung point) fails its never-started points as
        timeouts instead of waiting forever -- see :meth:`_pooled_result`.
        """
        total = done + len(pending)
        mode = "parallel"
        # Under an active tracer, submitted payload copies carry the trace
        # context; each worker's buffered spans come back in the result and
        # are ingested here (retries/fallback run in-process and trace
        # through the global tracer directly).  The "pooled" mark scopes the
        # worker.* fault sites to pool processes.
        tracer = get_tracer()
        ctx = tracer.context() if tracer is not None else None
        shm_groups, perpoint = self._shm_partition(pending)
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        pool_error: str | None = None
        hung = False
        #: arms execution deadlines as points start; shared stall guard
        watch = _PoolWatch()
        shm_jobs: list[tuple] = []
        shm_failed: list[Mapping[str, object]] = []
        try:
            for group in shm_groups:
                try:
                    shm_jobs.append(self._submit_shm_group(pool, group))
                except BrokenProcessPool as exc:
                    pool_error = f"{type(exc).__name__}: {exc}"
                    self._degrade_shm_group(policy, group, pool_error, shm_failed)
                except Exception as exc:  # noqa: BLE001 - degrade, don't die
                    self._degrade_shm_group(
                        policy, group, f"{type(exc).__name__}: {exc}", shm_failed
                    )
            try:
                futures = []
                for p in perpoint:
                    job = {**p, "pooled": True}
                    if ctx is not None:
                        job["trace"] = ctx
                    futures.append((p, pool.submit(self.worker, job)))
            except BrokenProcessPool as exc:
                pool_error = f"{type(exc).__name__}: {exc}"
                futures = []
            for group, arrays, inputs, outs, future in shm_jobs:
                try:
                    done = self._collect_shm_group(
                        group,
                        arrays,
                        outs,
                        future,
                        resolved,
                        stats,
                        progress,
                        done,
                        total,
                        solver_batches,
                    )
                except BrokenProcessPool as exc:
                    pool_error = f"{type(exc).__name__}: {exc}"
                    self._degrade_shm_group(policy, group, pool_error, shm_failed)
                except Exception as exc:  # noqa: BLE001 - degrade, don't die
                    self._degrade_shm_group(
                        policy, group, f"{type(exc).__name__}: {exc}", shm_failed
                    )
                finally:
                    inputs.unlink()
                    outs.unlink()
            for payload, future in futures:
                key = payload["key"]
                try:
                    if self.timeout is None:
                        out = future.result()
                    else:
                        out = self._pooled_result(future, futures, watch)
                    if tracer is not None and out.get("spans"):
                        tracer.ingest(out["spans"])
                    if not finite_measures(out.get("perf")):
                        result = self._solve_with_retry(
                            payload,
                            stats,
                            prior_attempts=1,
                            prior_error="non-finite measures in solve result",
                        )
                    else:
                        result = self._from_record(payload, out, from_cache=False)
                        stats.latencies.append(result.elapsed)
                except FutureTimeout:
                    future.cancel()
                    stats.timeouts += 1
                    hung = True
                    result = self._failure(
                        payload, f"{TIMEOUT_ERROR_PREFIX}{self.timeout}s", attempts=1
                    )
                except BrokenProcessPool as exc:
                    pool_error = f"{type(exc).__name__}: {exc}"
                    break  # pool is dead; fall through to serial below
                except Exception as exc:  # worker raised: bounded serial retry
                    result = self._solve_with_retry(
                        payload,
                        stats,
                        prior_attempts=1,
                        prior_error=f"{type(exc).__name__}: {exc}",
                    )
                resolved[key] = result
                done += 1
                if progress is not None:
                    progress(done, total, result)
        finally:
            # don't block on a hung-but-running worker; cancel what we can,
            # and kill workers still running a timed-out point outright so
            # interpreter exit never joins a sleeping process
            handles = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            if hung:
                for proc in handles:
                    if proc.is_alive():
                        proc.terminate()

        if shm_failed:
            # a failed shared-memory group still gets its stacked solve --
            # in-process, through the batch backend (degradation recorded
            # above); only a second failure there drops it to per-point
            unresolved = sum(1 for p in pending if p["key"] not in resolved)
            self._run_batch(
                shm_failed,
                resolved,
                stats,
                progress,
                total - unresolved,
                solver_batches,
                policy,
            )

        remaining = [p for p in pending if p["key"] not in resolved]
        if remaining:
            stats.worker_crashes += 1
            mode = "serial-fallback"
            policy.degrade(
                "process",
                "serial",
                pool_error or "broken process pool",
                len(remaining),
            )
            self._run_serial(remaining, resolved, stats, progress, total - len(remaining))
        return mode

    def close(self) -> None:
        if self.store is not None:
            self.store.flush()
