"""Experiment orchestration: managed sweeps with a content-addressed cache.

The paper's every figure and table is a parameter sweep; this package turns
those sweeps into managed jobs instead of ad-hoc loops:

* :mod:`~repro.runner.spec` -- :class:`JobSpec` canonicalizes a parameter
  point + solver method into a stable content-addressed key, so identical
  points are never solved twice (within a run or across runs);
* :mod:`~repro.runner.store` -- :class:`ResultStore` persists solved points
  (JSONL + index) with hit/miss accounting and automatic invalidation when
  :data:`SOLVER_VERSION` is bumped;
* :mod:`~repro.runner.executor` -- :class:`SweepRunner` executes the misses
  serially or on a process pool with per-point timeout, bounded retry, and
  graceful serial fallback when workers die;
* :mod:`~repro.runner.manifest` -- :class:`RunManifest` reports wall clock,
  per-point latency, cache hit rate and failure counts as JSON;
* :mod:`~repro.runner.config` -- process-global defaults wiring the runner
  into :func:`repro.analysis.sweep` and the benchmark harness.

Quick start::

    from repro import paper_defaults
    from repro.runner import JobSpec, SweepRunner

    runner = SweepRunner(jobs=4, cache_dir=".mms-cache")
    specs = [JobSpec(paper_defaults(num_threads=n)) for n in (1, 2, 4, 8)]
    report = runner.run(specs)
    print(report.manifest.summary())

or via the CLI: ``repro-mms sweep --axis num_threads=1,2,4,8 --jobs 4``.
"""

from .config import configure, default_runner, effective_config, shared_store
from .executor import RunReport, SweepRunner, solve_job
from .manifest import RunManifest, latency_stats
from .spec import SOLVER_VERSION, JobSpec, RunResult, canonical_json
from .store import ResultStore, StoreLockError

__all__ = [
    "SOLVER_VERSION",
    "JobSpec",
    "RunResult",
    "canonical_json",
    "ResultStore",
    "StoreLockError",
    "RunManifest",
    "latency_stats",
    "SweepRunner",
    "RunReport",
    "solve_job",
    "configure",
    "default_runner",
    "effective_config",
    "shared_store",
]
