"""Persistent content-addressed result store (JSONL + JSON index).

Layout under ``cache_dir``::

    results.jsonl   one canonical-JSON record per solved point (append-only)
    index.json      {"solver_version", "size", "offsets": {key: byte offset}}

The JSONL file is the source of truth; the index is a rebuildable
acceleration structure (key -> byte offset of the record line).  On open the
index is trusted only if its solver version matches and its recorded file
size equals the actual file size -- otherwise the store falls back to a full
scan.  A store written under a *different* solver version is **invalidated**
(both files removed) so stale measures can never be served after a solver
bump.

Only one process -- the sweep runner's parent -- ever touches the store;
workers just solve and return, which keeps the on-disk format free of
locking concerns.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..obs import registry as obs_registry
from .spec import SOLVER_VERSION, canonical_json

__all__ = ["ResultStore"]


class ResultStore:
    """On-disk cache of solved points with hit/miss accounting."""

    def __init__(
        self, cache_dir: str | os.PathLike, solver_version: str = SOLVER_VERSION
    ):
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.results_path = self.cache_dir / "results.jsonl"
        self.index_path = self.cache_dir / "index.json"
        self.solver_version = solver_version
        #: lookups served from disk / lookups that missed (lifetime of this
        #: store object; the manifest reports per-run figures separately)
        self.hits = 0
        self.misses = 0
        #: True when opening discarded a store written under another version
        self.invalidated = False
        self._offsets: dict[str, int] = {}
        self._dirty = False
        self._load()

    # ------------------------------------------------------------------ open
    def _load(self) -> None:
        if not self.results_path.exists():
            self.index_path.unlink(missing_ok=True)
            return
        size = self.results_path.stat().st_size
        try:
            index = json.loads(self.index_path.read_text())
            if (
                index.get("solver_version") == self.solver_version
                and index.get("size") == size
                and isinstance(index.get("offsets"), dict)
            ):
                self._offsets = {str(k): int(v) for k, v in index["offsets"].items()}
                return
        except (OSError, ValueError):
            pass
        self._rebuild_index()

    def _rebuild_index(self) -> None:
        """Recover the index by scanning the JSONL file."""
        offsets: dict[str, int] = {}
        with open(self.results_path, "rb") as fh:
            offset = 0
            for raw in fh:
                line = raw.decode("utf-8").strip()
                if line:
                    try:
                        rec = json.loads(line)
                    except ValueError:
                        break  # truncated tail (e.g. crash mid-append): drop it
                    if rec.get("solver_version") != self.solver_version:
                        self.invalidate()
                        return
                    offsets[rec["key"]] = offset
                offset += len(raw)
        self._offsets = offsets
        self._dirty = True
        self.flush()

    # ------------------------------------------------------------- lifecycle
    def invalidate(self) -> None:
        """Drop every cached result (used on solver-version bump)."""
        self.results_path.unlink(missing_ok=True)
        self.index_path.unlink(missing_ok=True)
        self._offsets = {}
        self._dirty = False
        self.invalidated = True
        obs_registry().counter("store.invalidations").inc()

    def flush(self) -> None:
        """Persist the index (the JSONL itself is written on every put)."""
        if not self._dirty:
            return
        size = self.results_path.stat().st_size if self.results_path.exists() else 0
        tmp = self.index_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(
                {
                    "solver_version": self.solver_version,
                    "size": size,
                    "offsets": self._offsets,
                }
            )
        )
        tmp.replace(self.index_path)
        self._dirty = False

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.flush()

    # ------------------------------------------------------------------- ops
    def get(self, key: str) -> dict[str, object] | None:
        """Cached record for *key*, or None (counted as hit/miss)."""
        offset = self._offsets.get(key)
        if offset is None:
            self.misses += 1
            obs_registry().counter("store.misses").inc()
            return None
        with open(self.results_path, "rb") as fh:
            fh.seek(offset)
            rec = json.loads(fh.readline().decode("utf-8"))
        if rec.get("key") != key:  # pragma: no cover - index corruption guard
            self.misses += 1
            obs_registry().counter("store.misses").inc()
            del self._offsets[key]
            return None
        self.hits += 1
        obs_registry().counter("store.hits").inc()
        return rec

    def put(self, key: str, record: dict[str, object]) -> None:
        """Append a solved record (idempotent: an existing key is kept)."""
        if key in self._offsets:
            return
        payload = {"key": key, "solver_version": self.solver_version, **record}
        line = canonical_json(payload) + "\n"
        with open(self.results_path, "ab") as fh:
            offset = fh.tell()
            fh.write(line.encode("utf-8"))
        self._offsets[key] = offset
        self._dirty = True
        obs_registry().counter("store.puts").inc()

    def __contains__(self, key: str) -> bool:
        return key in self._offsets

    def __len__(self) -> int:
        return len(self._offsets)

    def stats(self) -> dict[str, object]:
        """Lifetime accounting for observability."""
        total = self.hits + self.misses
        return {
            "entries": len(self._offsets),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
            "invalidated": self.invalidated,
            "cache_dir": str(self.cache_dir),
            "solver_version": self.solver_version,
        }
