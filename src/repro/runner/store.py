"""Persistent content-addressed result store (JSONL + JSON index).

Layout under ``cache_dir``::

    results.jsonl             one canonical-JSON record per solved point
    results.jsonl.quarantine  corrupt/truncated lines moved out of the way
    index.json                {"format", "solver_version", "size", "offsets"}

The JSONL file is the source of truth; the index is a rebuildable
acceleration structure (key -> byte offset of the record line).  On open
the index is trusted only if its format and solver version match and its
recorded file size equals the actual file size -- otherwise the store runs
a full **recovery scan**: every record is re-verified against its embedded
SHA-256, corrupt or truncated lines are quarantined to
``results.jsonl.quarantine``, legacy records written before checksums
existed are migrated in place, and the JSONL is compacted atomically.  A
store written under a *different* solver version is **invalidated** (files
removed) so stale measures can never be served after a solver bump.

Integrity on the read path: every ``get`` verifies the record's checksum
and key before serving it.  A mismatch -- bit rot, a torn write, an index
pointing at the wrong line -- triggers the same recovery scan and the
lookup is retried once against the rebuilt index, so a corrupted record is
quarantined and re-solved rather than served or crashing the read.
Counters (``store.integrity.*``, ``store.index_rebuilds``) land in the
process metrics registry and the per-run manifest delta.

Concurrency: every ``put`` is a **single ``O_APPEND`` write of one
complete line**, which POSIX guarantees lands contiguously -- concurrent
writers can share a ``results.jsonl`` without interleaving records.  In
the default (exclusive) mode one process -- the sweep runner's parent --
owns the store and maintains the index.  Fabric workers
(``docs/DISTRIBUTED.md``) open the store with ``shared=True`` instead:
a write-mostly mode that never reads, writes, or trusts the index and
never compacts (a recovery scan would race other writers' appends); the
scheduler reopens the store exclusively after the last worker exits,
which dedups any at-least-once double-solves (first write wins) and
rebuilds the index.

The one operation that is *unsafe* under concurrent appenders is the
recovery scan itself: compaction replaces ``results.jsonl`` with a new
inode, so a writer still holding an ``O_APPEND`` fd to the old file
would append into the void.  A ``flock``-based ``.lock`` file in the
store directory enforces the boundary: shared stores hold a **shared**
lock for their whole lifetime (the kernel releases it even on SIGKILL),
and a recovery scan must take the **exclusive** lock first -- if live
appenders still hold the store, the scan raises :class:`StoreLockError`
after ``lock_timeout_s`` instead of silently eating their writes.
"""

from __future__ import annotations

import fcntl
import json
import os
import time
from pathlib import Path

from ..obs import registry as obs_registry
from ..resilience.faults import fault_point, garble
from ..resilience.integrity import record_digest
from .spec import SOLVER_VERSION, canonical_json

__all__ = ["ResultStore", "StoreLockError", "STORE_FORMAT"]

#: on-disk format version; 2 added per-record SHA-256 checksums
STORE_FORMAT = 2


class StoreLockError(RuntimeError):
    """The store's cross-process ``.lock`` could not be acquired in time.

    Raised by a recovery scan while live shared writers hold the store
    (their appends would land on the compacted-away inode), or by a
    shared open while a recovery scan is compacting.
    """


class ResultStore:
    """On-disk cache of solved points with hit/miss accounting."""

    def __init__(
        self,
        cache_dir: str | os.PathLike,
        solver_version: str = SOLVER_VERSION,
        shared: bool = False,
        lock_timeout_s: float = 10.0,
    ):
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.results_path = self.cache_dir / "results.jsonl"
        self.quarantine_path = self.cache_dir / "results.jsonl.quarantine"
        self.index_path = self.cache_dir / "index.json"
        self.lock_path = self.cache_dir / ".lock"
        self.lock_timeout_s = lock_timeout_s
        self.solver_version = solver_version
        #: multi-writer mode: appends only, no index, no recovery scans --
        #: other processes may be appending to the same JSONL concurrently
        self.shared = shared
        #: lookups served from disk / lookups that missed (lifetime of this
        #: store object; the manifest reports per-run figures separately)
        self.hits = 0
        self.misses = 0
        #: True when opening discarded a store written under another version
        self.invalidated = False
        #: lifetime integrity accounting (this store object)
        self.quarantined = 0
        self.index_rebuilds = 0
        self._offsets: dict[str, int] = {}
        self._dirty = False
        self._fd: int | None = None
        self._lock_fd: int | None = None
        #: bytes of results.jsonl the offsets describe; the index stamps
        #: this (not the stat size), so a file grown by a process we never
        #: saw fails the size check and forces a recovery scan on reopen
        self._covered = 0
        try:
            if shared:
                # declare "I may append" for this handle's whole lifetime;
                # flock dies with the process, so a SIGKILLed worker never
                # wedges the fabric's finalize
                self._flock(fcntl.LOCK_SH, "shared")
            else:
                self._load()
        except BaseException:
            self._close_lock_fd()
            raise

    # ------------------------------------------------------------------ lock
    def _flock(self, op: int, what: str) -> None:
        """Take *op* on the ``.lock`` file, polling up to ``lock_timeout_s``.

        Non-blocking attempts in a poll loop rather than a blocking
        ``flock`` so a held lock surfaces as a diagnosable
        :class:`StoreLockError` instead of an indefinite hang.
        """
        if self._lock_fd is None:
            self._lock_fd = os.open(
                self.lock_path, os.O_RDWR | os.O_CREAT, 0o644
            )
        deadline = time.monotonic() + self.lock_timeout_s
        while True:
            try:
                fcntl.flock(self._lock_fd, op | fcntl.LOCK_NB)
                return
            except OSError:
                if time.monotonic() >= deadline:
                    raise StoreLockError(
                        f"could not acquire the {what} store lock on "
                        f"{self.lock_path} within {self.lock_timeout_s:.1f}s; "
                        "another process still holds the store"
                    ) from None
                time.sleep(0.05)

    def _close_lock_fd(self) -> None:
        if self._lock_fd is not None:
            os.close(self._lock_fd)  # closing drops any flock we hold
            self._lock_fd = None

    # ------------------------------------------------------------------ open
    def _load(self) -> None:
        if not self.results_path.exists():
            self.index_path.unlink(missing_ok=True)
            return
        size = self.results_path.stat().st_size
        try:
            index = json.loads(self.index_path.read_text())
            if (
                index.get("format") == STORE_FORMAT
                and index.get("solver_version") == self.solver_version
                and index.get("size") == size
                and isinstance(index.get("offsets"), dict)
            ):
                self._offsets = {str(k): int(v) for k, v in index["offsets"].items()}
                self._covered = size
                return
        except (OSError, ValueError):
            pass
        self._recover()

    def _recover(self) -> None:
        """Verify, quarantine, migrate and compact; rebuild the index.

        Scans the JSONL: records whose checksum verifies are kept, legacy
        records without one are stamped (migration from format 1), and
        anything else -- torn writes, garbled bytes, truncated tails -- is
        appended to the quarantine file.  The surviving records are
        rewritten atomically and the index rebuilt from them.

        Never runs in ``shared`` mode: compaction would race the other
        writers appending to the same file.  Compaction replaces the JSONL
        with a new inode, so the scan first takes the exclusive store lock
        -- raising :class:`StoreLockError` while live shared writers hold
        the store, instead of orphaning their append fds.
        """
        if self.shared:  # pragma: no cover - guarded at every call site
            raise RuntimeError("recovery scan is not allowed on a shared store")
        self._flock(fcntl.LOCK_EX, "exclusive")
        try:
            self._recover_locked()
        finally:
            fcntl.flock(self._lock_fd, fcntl.LOCK_UN)

    def _recover_locked(self) -> None:
        self.index_rebuilds += 1
        obs_registry().counter("store.index_rebuilds").inc()
        good: list[str] = []
        bad: list[str] = []
        keys: set[str] = set()
        if self.results_path.exists():
            with open(self.results_path, "rb") as fh:
                for raw in fh:
                    line = raw.decode("utf-8", errors="replace").strip()
                    if not line:
                        continue
                    try:
                        rec = json.loads(line)
                    except ValueError:
                        bad.append(line)
                        continue
                    if not isinstance(rec, dict):
                        bad.append(line)
                        continue
                    if rec.get("solver_version") != self.solver_version:
                        self.invalidate()
                        return
                    sha = rec.pop("sha256", None)
                    if sha is not None and sha != record_digest(rec):
                        obs_registry().counter("store.integrity.sha_mismatches").inc()
                        bad.append(line)
                        continue
                    # sha is None: legacy format-1 record -- migrate by
                    # stamping a digest during the rewrite below
                    key = rec.get("key")
                    if not isinstance(key, str):
                        # checksum-valid but unaddressable: without a key it
                        # can never be served, so quarantine it rather than
                        # indexing it under the literal string "None"
                        bad.append(line)
                        continue
                    if key in keys:  # first write wins, as in put()
                        continue
                    keys.add(key)
                    good.append(canonical_json({**rec, "sha256": record_digest(rec)}))
        if bad:
            self.quarantined += len(bad)
            obs_registry().counter("store.integrity.quarantined").inc(len(bad))
            with open(self.quarantine_path, "a", encoding="utf-8") as fh:
                for line in bad:
                    fh.write(line + "\n")
        offsets: dict[str, int] = {}
        tmp = self.results_path.with_suffix(".jsonl.tmp")
        with open(tmp, "wb") as fh:
            for line in good:
                data = (line + "\n").encode("utf-8")
                offsets[json.loads(line)["key"]] = fh.tell()
                fh.write(data)
            self._covered = fh.tell()
        self._close_fd()  # the compacted file is a new inode
        tmp.replace(self.results_path)
        self._offsets = offsets
        self._dirty = True
        self.flush()

    # ------------------------------------------------------------- lifecycle
    def _close_fd(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def close(self) -> None:
        """Flush the index (exclusive mode), release fds and any lock."""
        self.flush()
        self._close_fd()
        self._close_lock_fd()

    def invalidate(self) -> None:
        """Drop every cached result (used on solver-version bump)."""
        self._close_fd()
        self.results_path.unlink(missing_ok=True)
        self.index_path.unlink(missing_ok=True)
        self._offsets = {}
        self._covered = 0
        self._dirty = False
        self.invalidated = True
        obs_registry().counter("store.invalidations").inc()

    def flush(self) -> None:
        """Persist the index (the JSONL itself is written on every put).

        A shared store never writes the index: its view of the file is
        partial (only its own appends), and a size stamp would immediately
        be stale anyway.  The exclusive reopen after the fabric drains is
        what rebuilds the index from the full file.
        """
        if self.shared or not self._dirty:
            return
        tmp = self.index_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(
                {
                    "format": STORE_FORMAT,
                    "solver_version": self.solver_version,
                    "size": self._covered,
                    "offsets": self._offsets,
                }
            )
        )
        tmp.replace(self.index_path)
        self._dirty = False

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------- ops
    def _read_verified(self, offset: int, key: str) -> dict[str, object] | None:
        """The verified record at *offset*, or None on any integrity failure."""
        try:
            with open(self.results_path, "rb") as fh:
                fh.seek(offset)
                raw = fh.readline()
            rec = json.loads(raw.decode("utf-8"))
        except (OSError, ValueError, UnicodeDecodeError):
            obs_registry().counter("store.integrity.read_errors").inc()
            return None
        if not isinstance(rec, dict):
            obs_registry().counter("store.integrity.read_errors").inc()
            return None
        sha = rec.pop("sha256", None)
        if sha is None or sha != record_digest(rec):
            obs_registry().counter("store.integrity.sha_mismatches").inc()
            return None
        if rec.get("key") != key:
            # the record is intact but the index pointed at the wrong line
            obs_registry().counter("store.integrity.index_mismatches").inc()
            return None
        return rec

    def get(self, key: str) -> dict[str, object] | None:
        """Cached record for *key*, or None (counted as hit/miss).

        Every read is checksum-verified; a failure quarantines the bad
        record(s), rebuilds the index from the JSONL, and retries the
        lookup once -- so corruption degrades to a cache miss, never to a
        wrong answer or an exception.
        """
        offset = self._offsets.get(key)
        if offset is None:
            self.misses += 1
            obs_registry().counter("store.misses").inc()
            return None
        rec = self._read_verified(offset, key)
        if rec is None and not self.shared:
            self._recover()
            offset = self._offsets.get(key)
            rec = self._read_verified(offset, key) if offset is not None else None
        if rec is None:
            self.misses += 1
            obs_registry().counter("store.misses").inc()
            return None
        self.hits += 1
        obs_registry().counter("store.hits").inc()
        return rec

    def _append_fd(self) -> int:
        """The lazily-opened ``O_APPEND`` descriptor every put writes through."""
        if self._fd is None:
            self._fd = os.open(
                self.results_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self._fd

    def put(self, key: str, record: dict[str, object]) -> None:
        """Append a solved record (idempotent: an existing key is kept).

        The record goes down as **one ``os.write`` of one complete line**
        on an ``O_APPEND`` descriptor, so concurrent writers sharing the
        file can never interleave bytes mid-record -- the unit of failure
        is a whole line, which the recovery scan already handles.  The
        record's offset is recovered from this descriptor's file position
        (``O_APPEND`` moves it to exactly the end of our write, regardless
        of what other processes appended before it).
        """
        if key in self._offsets:
            return
        payload = {"key": key, "solver_version": self.solver_version, **record}
        line = canonical_json({**payload, "sha256": record_digest(payload)})
        if fault_point("store.corrupt_record") is not None:
            line = garble(line)
        data = (line + "\n").encode("utf-8")
        if fault_point("store.truncate") is not None:
            data = data[: max(1, len(data) // 2)]  # torn write: no newline
        fd = self._append_fd()
        written = os.write(fd, data)
        end = os.lseek(fd, 0, os.SEEK_CUR)
        self._offsets[key] = end - written
        if end - written == self._covered:
            # contiguous with everything the offsets describe; a gap means
            # a process we never saw appended in between -- leave _covered
            # stale so the next open fails the size check and rescans
            self._covered = end
        self._dirty = True
        obs_registry().counter("store.puts").inc()

    def __contains__(self, key: str) -> bool:
        return key in self._offsets

    def __len__(self) -> int:
        return len(self._offsets)

    def stats(self) -> dict[str, object]:
        """Lifetime accounting for observability."""
        total = self.hits + self.misses
        return {
            "entries": len(self._offsets),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
            "invalidated": self.invalidated,
            "quarantined": self.quarantined,
            "index_rebuilds": self.index_rebuilds,
            "cache_dir": str(self.cache_dir),
            "solver_version": self.solver_version,
        }
