"""Process-global runner defaults (and their environment overrides).

:func:`repro.analysis.sweep.sweep` builds its runner from here when the
caller does not pass one, so a single :func:`configure` call (or the
``REPRO_CACHE_DIR`` / ``REPRO_SWEEP_JOBS`` / ``REPRO_SWEEP_BACKEND``
environment variables) turns every sweep in the process cached, parallel
and/or batched -- this is how the
benchmark harness shares one persistent cache across all figure
regenerations without threading a runner through every call site.

Precedence per setting: explicit ``configure()`` value > environment
variable > built-in default (serial, uncached).
"""

from __future__ import annotations

import os

from .executor import SweepRunner
from .store import ResultStore

__all__ = ["configure", "effective_config", "default_runner", "shared_store"]

_CONFIG: dict[str, object] = {
    "jobs": None,  # None -> $REPRO_SWEEP_JOBS -> 1
    "cache_dir": None,  # None -> $REPRO_CACHE_DIR -> no cache
    "timeout": None,
    "retries": 1,
    "backend": None,  # None -> $REPRO_SWEEP_BACKEND -> "auto"
}

#: one live store per cache dir, so hit/miss accounting and index flushes
#: stay coherent when many sweeps share a cache in one process
_STORES: dict[str, ResultStore] = {}


def _configure(**settings: object) -> dict[str, object]:
    """Set process-global runner defaults; returns the previous values.

    Internal implementation behind :func:`repro.configure`; the public
    module-level :func:`configure` is a deprecated shim over this.
    """
    unknown = set(settings) - set(_CONFIG)
    if unknown:
        raise TypeError(f"unknown runner setting(s): {sorted(map(str, unknown))}")
    previous = {k: _CONFIG[k] for k in settings}
    _CONFIG.update(settings)
    return previous


def configure(**settings: object) -> dict[str, object]:
    """Deprecated: use :func:`repro.configure` (same keywords, superset).

    Forwards to the internal implementation after a one-time
    ``DeprecationWarning``; returns the previous values like before.

    >>> prev = configure(cache_dir="/tmp/mms-cache", jobs=4)  # doctest: +SKIP
    >>> configure(**prev)  # restore                          # doctest: +SKIP
    """
    from .._deprecation import warn_once

    warn_once("repro.runner.configure", "repro.configure")
    return _configure(**settings)


def effective_config() -> dict[str, object]:
    """The defaults a runner built right now would use (env resolved)."""
    jobs = _CONFIG["jobs"]
    if jobs is None:
        jobs = int(os.environ.get("REPRO_SWEEP_JOBS", "0") or 0) or 1
    cache_dir = _CONFIG["cache_dir"]
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    backend = _CONFIG["backend"]
    if backend is None:
        backend = os.environ.get("REPRO_SWEEP_BACKEND") or "auto"
    # the kernel default lives with the solver kernels (configure() routes
    # it there), so direct queueing-layer calls honour it too
    from ..queueing.kernels import default_kernel

    return {
        "jobs": int(jobs),
        "cache_dir": cache_dir,
        "timeout": _CONFIG["timeout"],
        "retries": _CONFIG["retries"],
        "backend": str(backend),
        "kernel": default_kernel(),
    }


def shared_store(cache_dir: str) -> ResultStore:
    """The process-wide store for *cache_dir* (opened once, then reused)."""
    key = os.path.abspath(str(cache_dir))
    store = _STORES.get(key)
    if store is None:
        store = ResultStore(key)
        _STORES[key] = store
    return store


def default_runner() -> SweepRunner:
    """A runner reflecting the current global configuration."""
    cfg = effective_config()
    store = shared_store(cfg["cache_dir"]) if cfg["cache_dir"] else None
    return SweepRunner(
        jobs=cfg["jobs"],
        store=store,
        timeout=cfg["timeout"],
        retries=cfg["retries"],
        backend=cfg["backend"],
        kernel=cfg["kernel"],
    )
