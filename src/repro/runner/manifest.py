"""Run manifests: per-sweep observability emitted as JSON.

Every :meth:`~repro.runner.executor.SweepRunner.run` produces one
:class:`RunManifest` summarizing what happened -- wall clock, execution mode,
cache hit rate, per-point solve-latency distribution, failure/timeout/retry
counts.  Records (the data) stay deterministic; the manifest (the telemetry)
is where all the run-to-run variation lives.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Sequence

__all__ = ["RunManifest", "latency_stats"]


def latency_stats(latencies: Sequence[float], amortized: int = 0) -> dict[str, float]:
    """Summary statistics of per-point solve times (seconds).

    ``amortized`` counts entries that are even shares of a batched solve's
    wall clock rather than individual measurements; time-attribution must
    not sum those on top of the batch wall time already reported in
    ``solver_batches`` (each batch's true span is recorded exactly once).
    """
    if not latencies:
        return {
            "count": 0,
            "total": 0.0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
            "amortized": 0,
        }
    total = float(sum(latencies))
    return {
        "count": len(latencies),
        "total": total,
        "mean": total / len(latencies),
        "min": float(min(latencies)),
        "max": float(max(latencies)),
        "amortized": int(amortized),
    }


@dataclass
class RunManifest:
    """What one managed sweep did, in numbers."""

    solver_version: str
    #: requested worker count (1 = serial)
    jobs: int
    #: how the run actually executed: ``serial`` | ``batch`` | ``parallel``
    #: | ``serial-fallback`` (workers died, remaining points ran in-process)
    mode: str
    #: points requested, including duplicates within the request
    total_points: int
    #: distinct content-addressed keys among them
    unique_points: int
    #: unique points served from the persistent store
    cache_hits: int
    #: unique points solved this run
    solved: int
    #: unique points that exhausted retries or timed out
    failures: int
    timeouts: int
    #: extra attempts consumed by retries across all points
    retries: int
    #: times the process pool broke and the run fell back to serial
    worker_crashes: int
    wall_clock_s: float
    #: cache_hits / unique_points (0.0 for an empty sweep)
    cache_hit_rate: float
    #: distribution of solver wall-clock over points *solved this run*
    point_latency: dict[str, float] = field(default_factory=dict)
    #: lifetime stats of the backing store, if any
    store: dict[str, object] | None = None
    #: requested execution backend (``auto``/``batch``/``process``/``serial``)
    backend: str = "auto"
    #: solver kernel the run resolved to (``numpy``/``numba``; kernels are
    #: bitwise-interchangeable, so this is provenance, not a cache key)
    kernel: str = "numpy"
    #: per-batch solver telemetry (method, batch size, iterations, max
    #: residual, active-set trajectory, wall time) for every batched fixed
    #: point this run executed
    solver_batches: list = field(default_factory=list)
    #: wall-clock seconds per execution stage (``spec_hash`` /
    #: ``cache_lookup`` / ``solve`` / ``store_write`` / ``assemble``);
    #: consecutive segments of the run, so they sum to ``wall_clock_s``
    stages: dict = field(default_factory=dict)
    #: run-scoped :mod:`repro.obs` metrics delta (what this run's solves,
    #: store lookups and simulator calls moved in the process registry)
    metrics: dict | None = None
    #: unique points replayed from a sweep journal on ``--resume``
    journal_hits: int = 0
    #: True when this run resumed a prior journal
    resumed: bool = False
    #: journal file backing this run, if journaling was enabled
    journal_path: str | None = None
    #: structured backend fallbacks (see
    #: :class:`repro.resilience.degrade.DegradationPolicy`); empty when the
    #: run stayed on its requested backend
    degradations: list = field(default_factory=list)
    #: distributed-dispatch accounting when the sweep ran on the fabric
    #: (``mode == "fabric"``): trial status histogram, leases
    #: granted/expired/active, dispatch attempts, re-dispatched trials,
    #: per-worker contribution (see ``docs/DISTRIBUTED.md``); None for
    #: single-host runs
    fabric: dict | None = None
    #: wall-clock epoch seconds when the run started (lets the dashboard
    #: place the run on an absolute timeline); 0.0 in legacy manifests
    created_at: float = 0.0
    #: windowed digest of the process-global
    #: :class:`~repro.obs.timeseries.MetricsRecorder` (rates, gauges,
    #: histogram percentiles) when one was running during the sweep;
    #: None otherwise
    series: dict | None = None

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    def to_json(self, path: str | os.PathLike | None = None, indent: int = 2) -> str:
        """JSON form; also written to *path* when given."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    def summary(self) -> str:
        """One human line for CLI/log output."""
        return (
            f"{self.total_points} points ({self.unique_points} unique): "
            f"{self.cache_hits} cached ({self.cache_hit_rate:.0%}), "
            f"{self.solved} solved, {self.failures} failed "
            f"[{self.mode}, jobs={self.jobs}] in {self.wall_clock_s:.2f}s"
        )
