"""Fleet-wide observability rollup for fabric runs.

Workers are separate processes, so their metrics registries and traces
are invisible to the scheduler unless shipped.  The conventions here keep
that shipping append-only and crash-tolerant, like everything else in the
fabric directory:

* ``<fabric_dir>/obs/metrics-<worker>.jsonl`` -- one JSON line per lease
  (plus one at exit) with the worker's tally and a full registry
  snapshot.  Single writer per file; append-only; a SIGKILL loses at
  most the final line.
* ``<fabric_dir>/obs/trace-w<i>.jsonl`` -- the worker's own trace file
  when the scheduler dispatches with worker tracing enabled
  (``repro-mms sweep --fabric DIR --trace ...``); merged for the fleet
  view with :func:`merge_traces` and validated cross-process by
  ``scripts/validate_trace.py``.

:func:`fleet_rollup` distills the database's ``workers`` / ``leases`` /
``trials`` tables plus the shipped snapshots into the per-worker
throughput, lease-latency, and heartbeat-gap view the scheduler records
under ``manifest.fabric["fleet"]``; :func:`sweep_timeline` extracts the
per-worker dispatch-to-complete bars the dashboard renders as a Gantt.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path
from typing import Mapping

from ..obs import registry as obs_registry
from .db import ExperimentDB

__all__ = [
    "OBS_DIRNAME",
    "obs_dir",
    "worker_metrics_path",
    "worker_trace_path",
    "append_worker_snapshot",
    "read_worker_snapshots",
    "merge_traces",
    "fleet_rollup",
    "sweep_timeline",
]

#: subdirectory of a fabric dir holding shipped worker telemetry
OBS_DIRNAME = "obs"

#: counter-name prefixes worth echoing per worker in the fleet view
#: (the full snapshots stay on disk; the manifest keeps a digest)
SNAPSHOT_COUNTER_PREFIXES = ("solver.", "store.", "fabric.", "sweep.")

_UNSAFE = re.compile(r"[^A-Za-z0-9._-]")


def obs_dir(fabric_dir: str | os.PathLike) -> Path:
    return Path(fabric_dir) / OBS_DIRNAME


def _safe(worker_id: str) -> str:
    return _UNSAFE.sub("_", worker_id)


def worker_metrics_path(fabric_dir: str | os.PathLike, worker_id: str) -> Path:
    return obs_dir(fabric_dir) / f"metrics-{_safe(worker_id)}.jsonl"


def worker_trace_path(fabric_dir: str | os.PathLike, index: int) -> Path:
    """Trace file for the scheduler's *index*-th spawned local worker."""
    return obs_dir(fabric_dir) / f"trace-w{index}.jsonl"


def append_worker_snapshot(
    fabric_dir: str | os.PathLike,
    worker_id: str,
    tally: Mapping[str, int],
    now: float | None = None,
) -> None:
    """Ship one metrics snapshot line from a worker (append-only).

    Never raises: telemetry shipping must not take a solve down (same
    discipline as the event sink).
    """
    try:
        directory = obs_dir(fabric_dir)
        directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(
            {
                "t": time.time() if now is None else float(now),
                "worker_id": worker_id,
                **dict(tally),
                "metrics": obs_registry().snapshot(),
            },
            sort_keys=True,
        )
        with open(worker_metrics_path(fabric_dir, worker_id), "a") as fh:
            fh.write(line + "\n")
    except OSError:
        obs_registry().counter("fabric.obs.ship_errors").inc()


def read_worker_snapshots(
    fabric_dir: str | os.PathLike,
) -> dict[str, list[dict[str, object]]]:
    """Shipped snapshot lines per worker id, in file (= time) order.

    Malformed trailing lines (a worker killed mid-write) are skipped.
    """
    out: dict[str, list[dict[str, object]]] = {}
    for path in sorted(obs_dir(fabric_dir).glob("metrics-*.jsonl")):
        for raw in path.read_text().splitlines():
            try:
                rec = json.loads(raw)
            except ValueError:
                continue
            out.setdefault(str(rec.get("worker_id", path.stem)), []).append(rec)
    return out


def merge_traces(
    fabric_dir: str | os.PathLike, out_path: str | os.PathLike | None = None
) -> list[dict[str, object]]:
    """Merge every shipped worker trace into one event list.

    Keeps the first ``meta`` record (all workers share the solver
    version) and every span/metrics record from every file.  When
    *out_path* is given, also writes the merged JSONL -- a file
    ``scripts/validate_trace.py`` can check for cross-process parentage.
    """
    events: list[dict[str, object]] = []
    meta_seen = False
    for path in sorted(obs_dir(fabric_dir).glob("trace-*.jsonl")):
        for raw in path.read_text().splitlines():
            try:
                event = json.loads(raw)
            except ValueError:
                continue
            if event.get("kind") == "meta":
                if meta_seen:
                    continue
                meta_seen = True
            events.append(event)
    if out_path is not None and events:
        with open(out_path, "w") as fh:
            for event in events:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
    return events


def _latency_summary(values: list[float]) -> dict[str, float]:
    if not values:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    ordered = sorted(values)

    def rank(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "p50": rank(0.5),
        "p95": rank(0.95),
        "max": ordered[-1],
    }


def fleet_rollup(
    db: ExperimentDB,
    experiment_id: str,
    fabric_dir: str | os.PathLike | None = None,
) -> dict[str, object]:
    """Aggregate the fleet view recorded under ``manifest.fabric["fleet"]``.

    Per worker: trials done/failed, busy seconds (sum of solve times),
    throughput (done trials per active second), and the heartbeat gap --
    seconds between the worker's final heartbeat and the fleet's last
    event, so a SIGKILLed worker shows a large gap while healthy workers
    sit near zero.  Fleet-wide: lease latency (granted-to-released) and
    expiry counts from the ``leases`` table, plus a digest of the metric
    snapshots and trace files the workers shipped into ``obs/``.
    """
    workers = db.workers(experiment_id)
    leases = db.leases(experiment_id)
    trials = db.trials(experiment_id)

    by_worker: dict[str, dict[str, object]] = {}
    last_event = 0.0
    for w in workers:
        last_event = max(last_event, float(w["heartbeat_s"] or 0.0))
    for t in trials:
        last_event = max(last_event, float(t["updated_s"] or 0.0))

    trials_by_worker: dict[str, list[dict]] = {}
    for t in trials:
        wid = t["worker_id"]
        if wid is not None:
            trials_by_worker.setdefault(str(wid), []).append(t)

    for w in workers:
        wid = str(w["worker_id"])
        own = trials_by_worker.get(wid, [])
        done = sum(1 for t in own if t["status"] == "done")
        failed = sum(1 for t in own if t["status"] == "failed")
        busy_s = sum(float(t["elapsed_s"] or 0.0) for t in own)
        started = float(w["started_s"] or 0.0)
        own_last = max(
            [float(t["updated_s"] or 0.0) for t in own]
            + [float(w["heartbeat_s"] or 0.0)]
        )
        active_s = max(0.0, own_last - started)
        by_worker[wid] = {
            "status": w["status"],
            "trials_done": done,
            "trials_failed": failed,
            "busy_s": busy_s,
            "active_s": active_s,
            "throughput_per_s": (done / active_s) if active_s > 0 else 0.0,
            "heartbeat_gap_s": max(
                0.0, last_event - float(w["heartbeat_s"] or 0.0)
            ),
        }

    lease_latencies = [
        float(l["released_s"]) - float(l["granted_s"])
        for l in leases
        if l["released_s"] is not None
    ]
    fleet: dict[str, object] = {
        "workers": by_worker,
        "lease_latency_s": _latency_summary(lease_latencies),
        "leases_expired": sum(1 for l in leases if l["status"] == "expired"),
    }

    if fabric_dir is not None:
        snapshots = read_worker_snapshots(fabric_dir)
        shipped: dict[str, object] = {}
        for wid, lines in snapshots.items():
            last = lines[-1]
            counters = last.get("metrics", {}).get("counters", {})
            shipped[wid] = {
                "snapshots": len(lines),
                "counters": {
                    name: value
                    for name, value in counters.items()
                    if name.startswith(SNAPSHOT_COUNTER_PREFIXES)
                },
            }
        fleet["shipped_metrics"] = shipped
        fleet["trace_files"] = sorted(
            p.name for p in obs_dir(fabric_dir).glob("trace-*.jsonl")
        )
    return fleet


def sweep_timeline(
    db: ExperimentDB, experiment_id: str
) -> dict[str, object]:
    """Per-worker dispatch-to-complete bars for the dashboard Gantt.

    Each terminal trial becomes one bar on its worker's lane: the end is
    the trial's terminal ``updated_s``, the start is ``end - elapsed_s``
    clamped to its lease's ``granted_s`` (dispatch time) when known.
    Store-probe cache hits have no worker and no duration; they are
    collected on a synthetic ``(cache)`` lane as zero-width marks.
    """
    lease_granted = {
        int(l["lease_id"]): float(l["granted_s"]) for l in db.leases(experiment_id)
    }
    lanes: dict[str, list[dict[str, object]]] = {}
    t0 = t1 = None
    for t in db.trials(experiment_id):
        if t["status"] not in ("done", "failed"):
            continue
        end = float(t["updated_s"] or 0.0)
        if not end:
            continue
        start = end - float(t["elapsed_s"] or 0.0)
        lease_id = t["lease_id"]
        if lease_id is not None and int(lease_id) in lease_granted:
            start = max(start, lease_granted[int(lease_id)])
        start = min(start, end)
        lane = str(t["worker_id"]) if t["worker_id"] is not None else "(cache)"
        lanes.setdefault(lane, []).append(
            {
                "start": start,
                "end": end,
                "status": str(t["status"]),
                "key": str(t["key"]),
                "cached": bool(t["from_cache"]),
            }
        )
        t0 = start if t0 is None else min(t0, start)
        t1 = end if t1 is None else max(t1, end)
    for bars in lanes.values():
        bars.sort(key=lambda b: b["start"])
    return {"t0": t0, "t1": t1, "lanes": lanes}
