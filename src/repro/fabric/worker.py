"""The fabric worker: claim a lease, solve it, report, repeat.

One worker process (``repro-mms worker --fabric DIR``) drives the whole
existing solve stack per lease: the payloads it claims become
:class:`~repro.runner.spec.JobSpec`\\ s executed by an in-process
:class:`~repro.runner.SweepRunner` -- batched AMVA kernel, degradation
policy, retry budget and fault-injection sites all intact -- and the
results land in the fabric's **shared** content-addressed
:class:`~repro.runner.store.ResultStore` (opened ``shared=True``:
append-only single-write puts, no index).

Liveness protocol: a daemon heartbeat thread (its own DB connection)
extends the active lease every ``lease_ttl / 3`` seconds.  A worker that
is SIGKILLed simply stops heartbeating; its lease expires and the
scheduler -- or any surviving worker's next claim -- returns the leased
trials to ``pending``.  Store writes happen *before* the trial is marked
``done``, so a kill between the two re-dispatches an already-persisted
point: the second solve's put is deduplicated by the exclusive reopen at
finalize (first write wins), never served twice and never lost.

Exit condition: no trial is ``pending`` or ``leased`` (the sweep is
drained), or the experiment has been marked terminal by the scheduler.
"""

from __future__ import annotations

import os
import threading
import time

from ..obs import registry as obs_registry
from ..obs import trace_span
from ..obs.trace import configure as obs_configure
from ..obs.trace import get_tracer
from ..queueing.kernels import validate_kernel_name
from ..runner.executor import BACKENDS, SweepRunner
from ..runner.spec import JobSpec
from ..runner.store import ResultStore
from .db import ExperimentDB, FabricError, worker_identity
from .rollup import append_worker_snapshot

__all__ = ["FabricWorker", "WorkerStats"]


class _Heartbeat:
    """Daemon thread extending the worker's active lease.

    The sqlite connection must be **created on the heartbeat thread**
    itself (``sqlite3`` binds a connection to its creating thread, and a
    cross-thread call raises ``ProgrammingError``), so ``_run`` opens its
    own :class:`ExperimentDB` and the main thread never touches it.  The
    lock-protected "current lease" slot is ``None`` while the worker is
    between leases, in which case only the worker-liveness stamp is
    refreshed; :meth:`set_lease` kicks an event so a fresh lease is
    stamped immediately instead of waiting out a full interval.

    **Partition guard**: ``max_failures`` *consecutive* heartbeat
    failures set the :attr:`broken` event (a success resets the count).
    A worker whose heartbeats cannot reach the DB has effectively lost
    its leases already -- any reaper will re-dispatch them -- so the main
    loop checks :attr:`broken` and exits cleanly instead of
    double-solving for the rest of its lifetime.
    """

    def __init__(
        self, fabric_dir, worker_id: str, ttl_s: float, max_failures: int = 3
    ):
        self._fabric_dir = fabric_dir
        self._worker_id = worker_id
        self._ttl_s = ttl_s
        self._max_failures = max(1, int(max_failures))
        self._consecutive_failures = 0
        #: set once the DB has been unreachable max_failures beats in a row
        self.broken = threading.Event()
        self._lease_id: int | None = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._kick = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def set_lease(self, lease_id: int | None) -> None:
        with self._lock:
            self._lease_id = lease_id
        if lease_id is not None:
            # wake the thread so a slow first solve can't outrun the ttl
            self._kick.set()

    def _run(self) -> None:
        interval = max(0.05, self._ttl_s / 3.0)
        try:
            db = ExperimentDB(self._fabric_dir)  # this thread's connection
        except Exception:  # noqa: BLE001 - liveness must never kill a solve
            obs_registry().counter("fabric.heartbeat_errors").inc()
            # no connection at all: the guard trips immediately, the
            # worker must not run lease-less forever
            self.broken.set()
            return
        try:
            while not self._stop.is_set():
                self._kick.wait(interval)
                self._kick.clear()
                if self._stop.is_set():
                    break
                with self._lock:
                    lease_id = self._lease_id
                try:
                    if lease_id is not None:
                        db.heartbeat(lease_id, self._worker_id, self._ttl_s)
                        obs_registry().counter("fabric.heartbeats").inc()
                    else:
                        db.touch_worker(self._worker_id)
                    self._consecutive_failures = 0
                except Exception:  # noqa: BLE001 - see above
                    obs_registry().counter("fabric.heartbeat_errors").inc()
                    self._consecutive_failures += 1
                    if self._consecutive_failures >= self._max_failures:
                        self.broken.set()
                        return
        finally:
            db.close()

    def close(self) -> None:
        self._stop.set()
        self._kick.set()  # wake the wait so shutdown is prompt
        self._thread.join(timeout=5.0)


class WorkerStats:
    """What one worker did, for its exit line and tests."""

    def __init__(self) -> None:
        self.leases = 0
        self.points = 0
        self.solved = 0
        self.failed = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "leases": self.leases,
            "points": self.points,
            "solved": self.solved,
            "failed": self.failed,
        }


class FabricWorker:
    """Pull-based solve loop against one fabric directory.

    Parameters
    ----------
    fabric_dir:
        The shared fabric directory (``fabric.db`` + ``store/``).
    experiment_id:
        Experiment to serve; default waits up to ``wait_s`` for the most
        recently created running experiment.
    worker_id:
        Fleet-unique identity; default ``host-pid``.
    lease_points:
        Trials claimed per lease -- the batching grain (a whole lease goes
        through one ``SweepRunner.run``, so same-shape points batch).
    lease_ttl:
        Seconds a lease survives without a heartbeat before any reaper
        returns its trials to ``pending``.
    poll_s:
        Idle sleep between empty claims.
    backend / kernel / retries / timeout:
        Passed to the inner :class:`SweepRunner` (per-lease execution).
    max_leases:
        Stop after this many leases (test seam / bounded shifts).
    wait_s:
        How long to wait for a running experiment to appear.
    heartbeat_max_failures:
        Consecutive heartbeat failures after which the worker stops
        claiming and exits (the partition guard; see :class:`_Heartbeat`).
    trace:
        Path for this worker's own trace file (spans written locally,
        merged fleet-wide by :func:`repro.fabric.rollup.merge_traces`);
        ``None`` leaves tracing on the process default (``REPRO_TRACE``).
    """

    def __init__(
        self,
        fabric_dir,
        experiment_id: str | None = None,
        worker_id: str | None = None,
        lease_points: int = 32,
        lease_ttl: float = 15.0,
        poll_s: float = 0.2,
        backend: str = "auto",
        retries: int = 1,
        timeout: float | None = None,
        max_leases: int | None = None,
        wait_s: float = 30.0,
        kernel: str | None = None,
        trace: str | None = None,
        heartbeat_max_failures: int = 3,
    ):
        if lease_points < 1:
            raise FabricError(f"lease_points must be >= 1, got {lease_points}")
        if lease_ttl <= 0:
            raise FabricError(f"lease_ttl must be > 0, got {lease_ttl}")
        if backend not in BACKENDS:
            raise FabricError(
                f"unknown backend {backend!r}; pick from {'/'.join(BACKENDS)}"
            )
        if kernel is not None:
            try:
                validate_kernel_name(kernel)
            except ValueError as exc:
                raise FabricError(str(exc)) from None
        self.fabric_dir = fabric_dir
        self.experiment_id = experiment_id
        self.worker_id = worker_id or worker_identity()
        self.lease_points = lease_points
        self.lease_ttl = lease_ttl
        self.poll_s = poll_s
        self.backend = backend
        self.kernel = kernel
        self.retries = retries
        self.timeout = timeout
        self.max_leases = max_leases
        self.wait_s = wait_s
        self.trace = trace
        self.heartbeat_max_failures = heartbeat_max_failures

    def _resolve_experiment(self, db: ExperimentDB) -> str:
        if self.experiment_id is not None:
            db.experiment(self.experiment_id)  # raises if unknown
            return self.experiment_id
        deadline = time.monotonic() + self.wait_s
        while True:
            experiment_id = db.latest_running()
            if experiment_id is not None:
                return experiment_id
            if time.monotonic() >= deadline:
                raise FabricError(
                    f"no running experiment appeared in {self.fabric_dir} "
                    f"within {self.wait_s:.0f}s"
                )
            time.sleep(min(self.poll_s, 0.5))

    def run(self, progress=None) -> WorkerStats:
        """Serve leases until the experiment drains; returns the tally.

        ``progress`` (optional) is called ``(stats,)`` after every lease.
        """
        stats = WorkerStats()
        db = ExperimentDB(self.fabric_dir)
        heart: _Heartbeat | None = None
        store: ResultStore | None = None
        prev_trace = obs_configure(trace=self.trace) if self.trace else None
        registered = False
        try:
            experiment_id = self._resolve_experiment(db)
            db.register_worker(experiment_id, self.worker_id)
            registered = True
            heart = _Heartbeat(
                self.fabric_dir,
                self.worker_id,
                self.lease_ttl,
                max_failures=self.heartbeat_max_failures,
            )
            store = ResultStore(os.path.join(self.fabric_dir, "store"), shared=True)
            runner = SweepRunner(
                jobs=1,
                store=store,
                backend=self.backend,
                retries=self.retries,
                timeout=self.timeout,
                kernel=self.kernel,
            )
            with trace_span(
                "fabric.worker", worker=self.worker_id, experiment=experiment_id
            ):
                while True:
                    if heart.broken.is_set():
                        # partition guard: our leases are (or will be)
                        # reaped and re-dispatched; claiming more would
                        # double-solve for the rest of this lifetime
                        obs_registry().counter(
                            "fabric.worker.partitioned_exits"
                        ).inc()
                        break
                    lease_id, payloads = db.claim(
                        experiment_id,
                        self.worker_id,
                        self.lease_points,
                        self.lease_ttl,
                    )
                    if lease_id is None:
                        counts = db.counts(experiment_id)
                        if counts["pending"] == 0 and counts["leased"] == 0:
                            break
                        if db.experiment(experiment_id)["status"] != "running":
                            break
                        time.sleep(self.poll_s)
                        continue
                    heart.set_lease(lease_id)
                    try:
                        self._serve_lease(
                            db, store, runner, experiment_id, lease_id, payloads, stats
                        )
                    finally:
                        heart.set_lease(None)
                    stats.leases += 1
                    # ship a metrics snapshot per lease: the scheduler's
                    # fleet rollup reads these without touching the worker
                    append_worker_snapshot(
                        self.fabric_dir, self.worker_id, stats.as_dict()
                    )
                    if progress is not None:
                        progress(stats)
                    if self.max_leases is not None and stats.leases >= self.max_leases:
                        break
        finally:
            # the store must close on every exit path: its fd (and shared
            # store lock) otherwise outlives the worker, and a held shared
            # lock would block the scheduler's exclusive finalize reopen
            if store is not None:
                store.close()
            if heart is not None:
                heart.close()
            if registered:
                append_worker_snapshot(
                    self.fabric_dir, self.worker_id, stats.as_dict()
                )
            if self.trace:
                tracer = get_tracer()
                if tracer is not None:
                    tracer.close()
                obs_configure(**prev_trace)
            try:
                db.worker_exit(self.worker_id)
            finally:
                db.close()
        return stats

    def _serve_lease(
        self,
        db: ExperimentDB,
        store: ResultStore,
        runner: SweepRunner,
        experiment_id: str,
        lease_id: int,
        payloads: list[dict[str, object]],
        stats: WorkerStats,
    ) -> None:
        """Solve one lease through the runner and report every trial.

        The runner's own ``store_write`` stage persists successes into the
        shared store *before* the loop below marks trials ``done`` -- the
        ordering that makes a mid-lease SIGKILL safe (re-dispatch re-solves
        an already-stored point at worst; it never loses one).
        """
        with trace_span(
            "fabric.lease", lease=lease_id, points=len(payloads)
        ) as span:
            specs = [JobSpec.from_payload(p) for p in payloads]
            report = runner.run(specs)
            solved = failed = 0
            for payload, result in zip(payloads, report.results):
                key = str(payload["key"])
                if result.ok:
                    db.complete_trial(
                        experiment_id,
                        key,
                        self.worker_id,
                        result.elapsed,
                        from_cache=result.from_cache,
                    )
                    solved += 1
                else:
                    db.fail_trial(
                        experiment_id, key, self.worker_id, result.error or "unknown"
                    )
                    failed += 1
            db.release_lease(lease_id)
            span.set(solved=solved, failed=failed, mode=report.manifest.mode)
        stats.points += len(payloads)
        stats.solved += solved
        stats.failed += failed
        obs_registry().counter("fabric.worker.points").inc(len(payloads))
