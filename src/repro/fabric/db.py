r"""The experiment database: a dependency-free task queue over ``sqlite3``.

One ``fabric.db`` file (WAL mode) is the shared coordination point of a
sweep fabric: the scheduler registers an **experiment** (one sweep, pinned
to its content signature) whose points become **trials**, workers claim
**leases** -- short-lived exclusive grants over batches of pending trials --
and every status transition is a single serialized transaction, so any
number of processes (and, via a shared directory, hosts) can cooperate
without a broker.

State machine per trial::

    pending --claim--> leased --complete--------------> done
                          |  \--fail (budget left)----> pending
                          |  \--fail (budget spent)---> failed / quarantined
                          \--lease expiry-------------> pending (re-dispatched)

A worker holds a lease alive by heartbeating; a SIGKILLed worker stops
heartbeating, its lease expires, and :meth:`ExperimentDB.reap_expired`
(run by the scheduler *and* by every worker before claiming) returns the
leased trials to ``pending`` -- at-least-once dispatch, made effectively
exactly-once by the content-addressed result store's first-write-wins
dedup.  ``attempts`` counts dispatches, so a re-dispatched trial is
visible in ``repro-mms exp trials`` as ``attempts > 1``.

**Poison-trial quarantine** (schema v2).  A failed attempt is no longer
instantly terminal: the error is recorded and the trial returns to
``pending`` until the experiment's ``max_attempts`` budget is spent.  A
trial that exhausts its budget across **two or more distinct workers**
moves to ``quarantined`` -- the failure travels with the trial, not the
fleet -- with its last error preserved; a budget spent on a single
worker stays ``failed`` (the evidence cannot distinguish a poison trial
from a poisoned worker).  Suspect trials (``attempts >=``
:data:`SUSPECT_AFTER`) are claimed in **solo leases**, preferring a
worker that has not tried them, so one worker-killing trial stops
taking innocent lease-mates (and their attempt budgets) down with it.
The experiment drains to completion around the quarantine;
``repro-mms exp quarantine list|retry`` manages it afterwards.

The shape follows FuzzBench's Experiment/Trial tables and scheduler
dispatch loop, reduced to the stdlib.  Schema reference:
``docs/DISTRIBUTED.md``.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import time
from pathlib import Path

from ..obs import registry as obs_registry
from ..runner.spec import TIMEOUT_ERROR_PREFIX

__all__ = [
    "DB_SCHEMA_VERSION",
    "DEFAULT_MAX_ATTEMPTS",
    "ExperimentDB",
    "FabricError",
    "SUSPECT_AFTER",
    "worker_identity",
]

#: bump on any incompatible schema change; a known older version is
#: migrated in place, anything else is refused
DB_SCHEMA_VERSION = 2

#: per-trial dispatch budget before a trial goes terminal
DEFAULT_MAX_ATTEMPTS = 5

#: attempts at which a trial becomes a *suspect* and is claimed in solo
#: leases only (so a worker-killer stops burning lease-mates' budgets)
SUSPECT_AFTER = 3

#: distinct workers that must have tried a trial before exhausting the
#: budget quarantines it (one worker's evidence can't separate a poison
#: trial from a poisoned worker)
QUARANTINE_MIN_WORKERS = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS experiments (
    experiment_id  TEXT PRIMARY KEY,
    signature      TEXT NOT NULL,
    solver_version TEXT NOT NULL,
    status         TEXT NOT NULL,
    total_trials   INTEGER NOT NULL,
    created_s      REAL NOT NULL,
    finished_s     REAL,
    meta           TEXT NOT NULL,
    max_attempts   INTEGER NOT NULL DEFAULT 5
);
CREATE TABLE IF NOT EXISTS trials (
    experiment_id  TEXT NOT NULL,
    seq            INTEGER NOT NULL,
    key            TEXT NOT NULL,
    payload        TEXT NOT NULL,
    status         TEXT NOT NULL,
    attempts       INTEGER NOT NULL DEFAULT 0,
    from_cache     INTEGER NOT NULL DEFAULT 0,
    worker_id      TEXT,
    lease_id       INTEGER,
    elapsed_s      REAL,
    error          TEXT,
    updated_s      REAL NOT NULL,
    attempt_workers TEXT NOT NULL DEFAULT '[]',
    PRIMARY KEY (experiment_id, key)
);
CREATE INDEX IF NOT EXISTS trials_by_status
    ON trials (experiment_id, status, seq);
CREATE TABLE IF NOT EXISTS leases (
    lease_id       INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment_id  TEXT NOT NULL,
    worker_id      TEXT NOT NULL,
    status         TEXT NOT NULL,
    granted_s      REAL NOT NULL,
    expires_s      REAL NOT NULL,
    released_s     REAL,
    trial_count    INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS workers (
    worker_id      TEXT PRIMARY KEY,
    experiment_id  TEXT NOT NULL,
    pid            INTEGER,
    host           TEXT,
    started_s      REAL NOT NULL,
    heartbeat_s    REAL NOT NULL,
    status         TEXT NOT NULL
);
"""

#: trial statuses that need no further work
TERMINAL = ("done", "failed", "quarantined")

#: schema v1 -> v2: per-trial distinct-worker history (quarantine
#: evidence) and the experiment's dispatch budget
_MIGRATIONS: dict[int, tuple[str, ...]] = {
    1: (
        "ALTER TABLE trials ADD COLUMN attempt_workers "
        "TEXT NOT NULL DEFAULT '[]'",
        f"ALTER TABLE experiments ADD COLUMN max_attempts "
        f"INTEGER NOT NULL DEFAULT {DEFAULT_MAX_ATTEMPTS}",
    ),
}


class FabricError(ValueError):
    """A fabric directory or experiment cannot serve the request."""


def worker_identity(suffix: str | None = None) -> str:
    """A fleet-unique worker id: ``host-pid[-suffix]``."""
    base = f"{socket.gethostname()}-{os.getpid()}"
    return f"{base}-{suffix}" if suffix else base


class ExperimentDB:
    """One process's handle on a fabric's ``fabric.db``.

    Every public method is a complete transaction; handles are cheap and
    **not** thread-safe -- a heartbeat thread opens its own.  ``sqlite3``
    in WAL mode serializes writers and lets readers proceed, which is all
    the concurrency a lease queue needs; ``busy_timeout`` absorbs writer
    contention instead of surfacing ``database is locked``.
    """

    def __init__(self, fabric_dir: str | os.PathLike, timeout_s: float = 30.0):
        self.fabric_dir = Path(fabric_dir)
        self.fabric_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.fabric_dir / "fabric.db"
        self._conn = sqlite3.connect(self.path, timeout=timeout_s)
        self._conn.row_factory = sqlite3.Row
        # autocommit mode: transactions are explicit BEGIN IMMEDIATE blocks
        self._conn.isolation_level = None
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(timeout_s * 1000)}")
        version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        if version == 0:
            self._conn.executescript(_SCHEMA)
            self._conn.execute(f"PRAGMA user_version={DB_SCHEMA_VERSION}")
        elif version < DB_SCHEMA_VERSION and all(
            v in _MIGRATIONS for v in range(version, DB_SCHEMA_VERSION)
        ):
            # known older schema: migrate in place, one version at a time,
            # the whole ladder in a single transaction (a SIGKILL mid-way
            # leaves the old version and a clean retry)
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                current = self._conn.execute(
                    "PRAGMA user_version"
                ).fetchone()[0]
                for v in range(current, DB_SCHEMA_VERSION):
                    for statement in _MIGRATIONS[v]:
                        self._conn.execute(statement)
                self._conn.execute(f"PRAGMA user_version={DB_SCHEMA_VERSION}")
            except BaseException:
                self._conn.execute("ROLLBACK")
                self._conn.close()
                raise
            self._conn.execute("COMMIT")
            obs_registry().counter("fabric.db.migrations").inc()
        elif version != DB_SCHEMA_VERSION:
            self._conn.close()
            raise FabricError(
                f"fabric DB {self.path} has schema version {version}, "
                f"this build speaks {DB_SCHEMA_VERSION}; "
                "point at a fresh fabric directory"
            )

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ExperimentDB":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ----------------------------------------------------------- experiments
    def create_or_resume(
        self,
        signature: str,
        solver_version: str,
        payloads: list[dict[str, object]],
        meta: dict[str, object] | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> tuple[str, bool]:
        """Register one sweep as an experiment, or attach to it.

        The experiment id derives from the sweep's content signature, so
        submitting the same JobSpecs again -- a restarted scheduler, a second
        host -- attaches to the existing experiment and its completed trials
        rather than re-running them.  Returns ``(experiment_id, created)``.
        """
        experiment_id = f"exp-{signature[:16]}"
        now = time.time()
        with self._txn():
            row = self._conn.execute(
                "SELECT signature, solver_version, status FROM experiments "
                "WHERE experiment_id = ?",
                (experiment_id,),
            ).fetchone()
            if row is not None:
                if row["signature"] != signature or (
                    row["solver_version"] != solver_version
                ):
                    raise FabricError(
                        f"experiment {experiment_id} exists with a different "
                        "signature/solver version; use a fresh fabric dir"
                    )
                if row["status"] in ("done", "failed"):
                    # completed experiments stay queryable; re-running the
                    # same sweep is a no-op dispatch (every trial terminal)
                    return experiment_id, False
                return experiment_id, False
            if max_attempts < 1:
                raise FabricError(
                    f"max_attempts must be >= 1, got {max_attempts}"
                )
            self._conn.execute(
                "INSERT INTO experiments (experiment_id, signature, "
                "solver_version, status, total_trials, created_s, meta, "
                "max_attempts) VALUES (?, ?, ?, 'running', ?, ?, ?, ?)",
                (
                    experiment_id,
                    signature,
                    solver_version,
                    len(payloads),
                    now,
                    json.dumps(meta or {}, sort_keys=True),
                    int(max_attempts),
                ),
            )
            self._conn.executemany(
                "INSERT INTO trials (experiment_id, seq, key, payload, "
                "status, updated_s) VALUES (?, ?, ?, ?, 'pending', ?)",
                [
                    (experiment_id, seq, p["key"], json.dumps(p, sort_keys=True), now)
                    for seq, p in enumerate(payloads)
                ],
            )
        return experiment_id, True

    def finish(self, experiment_id: str, status: str = "done") -> None:
        with self._txn():
            self._conn.execute(
                "UPDATE experiments SET status = ?, finished_s = ? "
                "WHERE experiment_id = ?",
                (status, time.time(), experiment_id),
            )

    def experiment(self, experiment_id: str) -> dict[str, object]:
        row = self._conn.execute(
            "SELECT * FROM experiments WHERE experiment_id = ?",
            (experiment_id,),
        ).fetchone()
        if row is None:
            raise FabricError(f"no experiment {experiment_id!r} in {self.path}")
        return dict(row)

    def experiments(self) -> list[dict[str, object]]:
        """Every experiment, newest first."""
        rows = self._conn.execute(
            "SELECT * FROM experiments ORDER BY created_s DESC"
        ).fetchall()
        return [dict(r) for r in rows]

    def latest_running(self) -> str | None:
        """The most recently created running experiment, if any."""
        row = self._conn.execute(
            "SELECT experiment_id FROM experiments WHERE status = 'running' "
            "ORDER BY created_s DESC LIMIT 1"
        ).fetchone()
        return row["experiment_id"] if row is not None else None

    # --------------------------------------------------------------- workers
    def register_worker(self, experiment_id: str, worker_id: str) -> None:
        now = time.time()
        with self._txn():
            self._conn.execute(
                "INSERT OR REPLACE INTO workers (worker_id, experiment_id, "
                "pid, host, started_s, heartbeat_s, status) "
                "VALUES (?, ?, ?, ?, ?, ?, 'active')",
                (
                    worker_id,
                    experiment_id,
                    os.getpid(),
                    socket.gethostname(),
                    now,
                    now,
                ),
            )
        obs_registry().counter("fabric.workers.registered").inc()

    def touch_worker(self, worker_id: str) -> None:
        """Refresh a worker's liveness stamp (idle heartbeat, no lease)."""
        with self._txn():
            self._conn.execute(
                "UPDATE workers SET heartbeat_s = ? WHERE worker_id = ?",
                (time.time(), worker_id),
            )

    def worker_exit(self, worker_id: str) -> None:
        with self._txn():
            self._conn.execute(
                "UPDATE workers SET status = 'exited', heartbeat_s = ? "
                "WHERE worker_id = ?",
                (time.time(), worker_id),
            )

    def workers(self, experiment_id: str) -> list[dict[str, object]]:
        rows = self._conn.execute(
            "SELECT * FROM workers WHERE experiment_id = ? ORDER BY started_s",
            (experiment_id,),
        ).fetchall()
        return [dict(r) for r in rows]

    # ---------------------------------------------------------------- leases
    def claim(
        self,
        experiment_id: str,
        worker_id: str,
        limit: int,
        ttl_s: float,
    ) -> tuple[int | None, list[dict[str, object]]]:
        """Atomically lease up to *limit* pending trials to *worker_id*.

        Expired leases are reaped first inside the same transaction, so a
        fabric with no scheduler process still re-dispatches dead workers'
        points.  Suspect trials (``attempts >=`` :data:`SUSPECT_AFTER`)
        are never mixed into a batch: once only suspects remain, exactly
        one is leased solo, preferring a worker that has not attempted it
        yet -- a worker-killing trial then takes nobody down with it and
        collects the distinct-worker evidence quarantine needs.  Returns
        ``(lease_id, payloads)``; ``(None, [])`` when nothing is pending.
        """
        now = time.time()
        with self._txn():
            self._reap_locked(experiment_id, now)
            rows = self._conn.execute(
                "SELECT key, payload, attempt_workers FROM trials "
                "WHERE experiment_id = ? AND status = 'pending' "
                "AND attempts < ? ORDER BY seq LIMIT ?",
                (experiment_id, SUSPECT_AFTER, limit),
            ).fetchall()
            if not rows:
                # only suspects left: solo lease, fresh worker preferred
                rows = self._conn.execute(
                    "SELECT key, payload, attempt_workers FROM trials "
                    "WHERE experiment_id = ? AND status = 'pending' "
                    "AND attempt_workers NOT LIKE ? ORDER BY seq LIMIT 1",
                    (experiment_id, f'%"{worker_id}"%'),
                ).fetchall() or self._conn.execute(
                    "SELECT key, payload, attempt_workers FROM trials "
                    "WHERE experiment_id = ? AND status = 'pending' "
                    "ORDER BY seq LIMIT 1",
                    (experiment_id,),
                ).fetchall()
            if not rows:
                return None, []
            cur = self._conn.execute(
                "INSERT INTO leases (experiment_id, worker_id, status, "
                "granted_s, expires_s, trial_count) "
                "VALUES (?, ?, 'active', ?, ?, ?)",
                (experiment_id, worker_id, now, now + ttl_s, len(rows)),
            )
            lease_id = cur.lastrowid
            updates = []
            for r in rows:
                tried = json.loads(r["attempt_workers"] or "[]")
                if worker_id not in tried:
                    tried.append(worker_id)
                updates.append(
                    (worker_id, lease_id, json.dumps(tried), now,
                     experiment_id, r["key"])
                )
            self._conn.executemany(
                "UPDATE trials SET status = 'leased', worker_id = ?, "
                "lease_id = ?, attempts = attempts + 1, "
                "attempt_workers = ?, updated_s = ? "
                "WHERE experiment_id = ? AND key = ?",
                updates,
            )
        obs_registry().counter("fabric.leases.granted").inc()
        obs_registry().counter("fabric.trials.dispatched").inc(len(rows))
        return lease_id, [json.loads(r["payload"]) for r in rows]

    def heartbeat(self, lease_id: int, worker_id: str, ttl_s: float) -> None:
        """Extend a live lease and refresh the worker's liveness stamp."""
        now = time.time()
        with self._txn():
            self._conn.execute(
                "UPDATE leases SET expires_s = ? "
                "WHERE lease_id = ? AND status = 'active'",
                (now + ttl_s, lease_id),
            )
            self._conn.execute(
                "UPDATE workers SET heartbeat_s = ? WHERE worker_id = ?",
                (now, worker_id),
            )

    def release_lease(self, lease_id: int) -> None:
        """Close out a lease whose trials have all been reported."""
        with self._txn():
            self._conn.execute(
                "UPDATE leases SET status = 'released', released_s = ? "
                "WHERE lease_id = ? AND status = 'active'",
                (time.time(), lease_id),
            )
        obs_registry().counter("fabric.leases.released").inc()

    def reap_expired(self, experiment_id: str, now: float | None = None) -> int:
        """Return expired leases' trials to ``pending``; count re-dispatched."""
        with self._txn():
            return self._reap_locked(experiment_id, now or time.time())

    def _reap_locked(self, experiment_id: str, now: float) -> int:
        """Expiry sweep; must run inside an open transaction.

        Un-reported trials of an expired lease normally return to
        ``pending``; one that already spent its ``max_attempts`` budget
        goes terminal instead -- ``quarantined`` when at least
        :data:`QUARANTINE_MIN_WORKERS` distinct workers died holding it
        (the classic worker-killer, which leaves no traceback), else
        ``failed``.
        """
        expired = [
            r["lease_id"]
            for r in self._conn.execute(
                "SELECT lease_id FROM leases WHERE experiment_id = ? "
                "AND status = 'active' AND expires_s < ?",
                (experiment_id, now),
            ).fetchall()
        ]
        if not expired:
            return 0
        max_attempts = self._max_attempts_locked(experiment_id)
        redispatched = quarantined = failed = 0
        for lease_id in expired:
            rows = self._conn.execute(
                "SELECT key, attempts, attempt_workers, error FROM trials "
                "WHERE experiment_id = ? AND lease_id = ? AND status = 'leased'",
                (experiment_id, lease_id),
            ).fetchall()
            for r in rows:
                tried = json.loads(r["attempt_workers"] or "[]")
                if r["attempts"] >= max_attempts:
                    detail = (
                        f"lease expired {r['attempts']} times "
                        f"(workers: {', '.join(tried) or 'unknown'})"
                    )
                    if r["error"]:
                        detail += f"; last error: {r['error']}"
                    if len(tried) >= QUARANTINE_MIN_WORKERS:
                        status = "quarantined"
                        quarantined += 1
                    else:
                        status = "failed"
                        failed += 1
                    self._conn.execute(
                        "UPDATE trials SET status = ?, error = ?, "
                        "updated_s = ? WHERE experiment_id = ? AND key = ?",
                        (status, detail, now, experiment_id, r["key"]),
                    )
                else:
                    self._conn.execute(
                        "UPDATE trials SET status = 'pending', "
                        "worker_id = NULL, lease_id = NULL, updated_s = ? "
                        "WHERE experiment_id = ? AND key = ?",
                        (now, experiment_id, r["key"]),
                    )
                    redispatched += 1
            self._conn.execute(
                "UPDATE leases SET status = 'expired', released_s = ? "
                "WHERE lease_id = ?",
                (now, lease_id),
            )
        reg = obs_registry()
        reg.counter("fabric.leases.expired").inc(len(expired))
        reg.counter("fabric.trials.redispatched").inc(redispatched)
        if quarantined:
            reg.counter("fabric.trials.quarantined").inc(quarantined)
        if failed:
            reg.counter("fabric.trials.failed").inc(failed)
        return redispatched

    def _max_attempts_locked(self, experiment_id: str) -> int:
        row = self._conn.execute(
            "SELECT max_attempts FROM experiments WHERE experiment_id = ?",
            (experiment_id,),
        ).fetchone()
        return int(row["max_attempts"]) if row else DEFAULT_MAX_ATTEMPTS

    def leases(self, experiment_id: str) -> list[dict[str, object]]:
        rows = self._conn.execute(
            "SELECT * FROM leases WHERE experiment_id = ? ORDER BY lease_id",
            (experiment_id,),
        ).fetchall()
        return [dict(r) for r in rows]

    # ---------------------------------------------------------------- trials
    def complete_trial(
        self,
        experiment_id: str,
        key: str,
        worker_id: str | None,
        elapsed_s: float,
        from_cache: bool = False,
    ) -> None:
        """Mark one trial done (idempotent: a terminal trial is left alone).

        A success *may* overwrite ``quarantined`` -- the record is already
        in the store, so a late legitimate completion wins over the
        quarantine verdict -- but never ``done``/``failed`` (first report
        wins).
        """
        with self._txn():
            self._conn.execute(
                "UPDATE trials SET status = 'done', worker_id = ?, "
                "elapsed_s = ?, from_cache = ?, error = NULL, updated_s = ? "
                "WHERE experiment_id = ? AND key = ? "
                "AND status NOT IN ('done', 'failed')",
                (
                    worker_id,
                    elapsed_s,
                    int(from_cache),
                    time.time(),
                    experiment_id,
                    key,
                ),
            )
        obs_registry().counter("fabric.trials.completed").inc()

    def fail_trial(
        self, experiment_id: str, key: str, worker_id: str | None, error: str
    ) -> str:
        """Report one failed attempt; the error is recorded either way.

        Returns the trial's resulting status: ``pending`` while the
        experiment's ``max_attempts`` budget has room (the trial is
        requeued and another worker -- suspect isolation prefers a fresh
        one -- retries it), ``quarantined`` when the budget is spent
        across >= :data:`QUARANTINE_MIN_WORKERS` distinct workers (the
        *last* error string rides along as the recorded traceback), or
        ``failed`` when it is spent on a single worker.  A trial already
        terminal is left alone (first report wins).
        """
        now = time.time()
        with self._txn():
            row = self._conn.execute(
                "SELECT status, attempts, attempt_workers FROM trials "
                "WHERE experiment_id = ? AND key = ?",
                (experiment_id, key),
            ).fetchone()
            if row is None or row["status"] in TERMINAL:
                return row["status"] if row is not None else "missing"
            tried = json.loads(row["attempt_workers"] or "[]")
            if row["attempts"] < self._max_attempts_locked(experiment_id):
                status = "pending"
            elif len(tried) >= QUARANTINE_MIN_WORKERS:
                status = "quarantined"
            else:
                status = "failed"
            self._conn.execute(
                "UPDATE trials SET status = ?, worker_id = ?, lease_id = NULL, "
                "error = ?, updated_s = ? "
                "WHERE experiment_id = ? AND key = ?",
                (status, worker_id, error, now, experiment_id, key),
            )
        reg = obs_registry()
        if status == "pending":
            reg.counter("fabric.trials.requeued").inc()
        elif status == "quarantined":
            reg.counter("fabric.trials.quarantined").inc()
        else:
            reg.counter("fabric.trials.failed").inc()
        return status

    # ------------------------------------------------------------ quarantine
    def quarantined(self, experiment_id: str) -> list[dict[str, object]]:
        """Quarantined trials, ``seq`` order (key, error, attempt history)."""
        return self.trials(experiment_id, status="quarantined")

    def retry_quarantined(
        self, experiment_id: str, keys: list[str] | None = None
    ) -> int:
        """Return quarantined trials to ``pending`` with a fresh budget.

        ``keys=None`` retries every quarantined trial.  The attempt
        counter and worker history reset (the quarantine evidence was
        consumed); the recorded error stays until the retry overwrites
        it.  A drained experiment is re-opened (``running``) so workers
        can attach again.  Returns the number of trials requeued.
        """
        now = time.time()
        with self._txn():
            if keys is None:
                cur = self._conn.execute(
                    "UPDATE trials SET status = 'pending', attempts = 0, "
                    "attempt_workers = '[]', worker_id = NULL, "
                    "lease_id = NULL, updated_s = ? "
                    "WHERE experiment_id = ? AND status = 'quarantined'",
                    (now, experiment_id),
                )
                requeued = cur.rowcount
            else:
                requeued = 0
                for key in keys:
                    cur = self._conn.execute(
                        "UPDATE trials SET status = 'pending', attempts = 0, "
                        "attempt_workers = '[]', worker_id = NULL, "
                        "lease_id = NULL, updated_s = ? "
                        "WHERE experiment_id = ? AND key = ? "
                        "AND status = 'quarantined'",
                        (now, experiment_id, key),
                    )
                    requeued += cur.rowcount
            if requeued:
                self._conn.execute(
                    "UPDATE experiments SET status = 'running', "
                    "finished_s = NULL WHERE experiment_id = ?",
                    (experiment_id,),
                )
        if requeued:
            obs_registry().counter(
                "fabric.trials.quarantine_retried"
            ).inc(requeued)
        return requeued

    def counts(self, experiment_id: str) -> dict[str, int]:
        """Trial-status histogram (absent statuses included as 0)."""
        out = {"pending": 0, "leased": 0, "done": 0, "failed": 0, "quarantined": 0}
        for row in self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM trials "
            "WHERE experiment_id = ? GROUP BY status",
            (experiment_id,),
        ).fetchall():
            out[row["status"]] = row["n"]
        return out

    def trials(
        self, experiment_id: str, status: str | None = None
    ) -> list[dict[str, object]]:
        if status is not None:
            rows = self._conn.execute(
                "SELECT * FROM trials WHERE experiment_id = ? AND status = ? "
                "ORDER BY seq",
                (experiment_id, status),
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM trials WHERE experiment_id = ? ORDER BY seq",
                (experiment_id,),
            ).fetchall()
        return [dict(r) for r in rows]

    def stats(self, experiment_id: str) -> dict[str, object]:
        """Dispatch accounting for the manifest's ``fabric`` block."""
        counts = self.counts(experiment_id)
        lease_rows = self.leases(experiment_id)
        attempts = self._conn.execute(
            "SELECT COALESCE(SUM(attempts), 0) AS total, "
            "COALESCE(MAX(attempts), 0) AS max_ "
            "FROM trials WHERE experiment_id = ?",
            (experiment_id,),
        ).fetchone()
        redispatched = self._conn.execute(
            "SELECT COUNT(*) AS n FROM trials "
            "WHERE experiment_id = ? AND attempts > 1",
            (experiment_id,),
        ).fetchone()["n"]
        # worker-side timeouts surface as failed trials whose error carries
        # the executor's stable prefix -- classify them so fabric manifests
        # count timeouts like single-host manifests do
        timeouts = self._conn.execute(
            "SELECT COUNT(*) AS n FROM trials WHERE experiment_id = ? "
            "AND status IN ('failed', 'quarantined') AND error LIKE ?",
            (experiment_id, TIMEOUT_ERROR_PREFIX + "%"),
        ).fetchone()["n"]
        return {
            "experiment_id": experiment_id,
            "trials": counts,
            "leases_granted": len(lease_rows),
            "leases_expired": sum(1 for l in lease_rows if l["status"] == "expired"),
            "leases_active": sum(1 for l in lease_rows if l["status"] == "active"),
            "dispatch_attempts": attempts["total"],
            "max_attempts": attempts["max_"],
            "redispatched_trials": redispatched,
            "timeouts": timeouts,
            "workers": len(self.workers(experiment_id)),
        }

    # ------------------------------------------------------------- internals
    def _txn(self) -> "_Txn":
        return _Txn(self._conn)


class _Txn:
    """``BEGIN IMMEDIATE`` transaction scope (writer lock up front)."""

    def __init__(self, conn: sqlite3.Connection):
        self._conn = conn

    def __enter__(self) -> sqlite3.Connection:
        self._conn.execute("BEGIN IMMEDIATE")
        return self._conn

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if exc_type is None:
            self._conn.execute("COMMIT")
        else:
            self._conn.execute("ROLLBACK")
