"""The fabric scheduler: shard a sweep into leases, supervise, finalize.

:class:`FabricScheduler` is the single control process of one fabric
directory.  :meth:`~FabricScheduler.run` is the managed entry point::

    schedule   register the experiment (dedup + content signature), probe
               the shared store so already-solved points never dispatch
    dispatch   spawn N local workers (``repro-mms worker`` subprocesses),
               reap expired leases, respawn dead local workers while work
               remains -- external workers on other hosts may join at any
               time by pointing at the same directory
    finalize   mark the experiment terminal, reopen the store exclusively
               (dedup + index rebuild over every worker's appends), and
               assemble the familiar :class:`~repro.runner.RunReport`

The three stages land in ``manifest.stages`` and as ``fabric.*`` trace
spans; dispatch accounting (leases granted/expired, re-dispatched trials,
attempts) lands in ``manifest.fabric`` and the ``fabric.*`` counters.

Restartability: the experiment id derives from the sweep's content
signature, so a SIGKILLed scheduler re-run with the same JobSpecs attaches
to the same experiment, re-dispatches only non-terminal trials, and the
final records are bitwise-identical to an uninterrupted single-host run
(see ``docs/DISTRIBUTED.md`` for the failure-semantics table).

Exactly one scheduler per fabric directory at a time.  The exclusive
store phases (probe, finalize) compact ``results.jsonl`` to a new inode,
which would orphan the append fds of any still-running worker -- so the
"no concurrent appender" assumption is *enforced*, not assumed: shared
store handles hold a ``flock`` the compaction must win.  The probe is a
cache fast-path and is skipped when live workers hold the store (their
re-solves dedup at finalize); finalize itself raises
:class:`~repro.fabric.db.FabricError` rather than proceed under live
appenders.
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Sequence

from ..obs import diff_snapshots, trace_span
from ..obs import registry as obs_registry
from ..queueing.kernels import resolve_kernel, validate_kernel_name
from ..resilience.journal import sweep_signature
from ..runner.executor import BACKENDS, RunReport
from ..scenarios import payload_scenario
from ..runner.manifest import RunManifest, latency_stats
from ..runner.spec import SOLVER_VERSION, JobSpec, RunResult
from ..runner.store import ResultStore, StoreLockError
from .db import DEFAULT_MAX_ATTEMPTS, ExperimentDB, FabricError
from .rollup import fleet_rollup, worker_trace_path

__all__ = ["FabricScheduler"]

#: callback invoked while dispatching: ``(done, total, counts_dict)``
DispatchProgress = Callable[[int, int, dict], None]


class FabricScheduler:
    """Orchestrate one sweep across fabric workers.

    Parameters
    ----------
    fabric_dir:
        Shared coordination directory; created if missing.  Holds
        ``fabric.db`` and the shared result store under ``store/``.
    lease_ttl:
        Seconds a worker lease survives without a heartbeat.
    lease_points:
        Trials per lease (the worker-side batching grain).
    poll_s:
        Dispatch-loop cadence (reaping, respawn checks).
    backend / kernel / retries / timeout:
        Execution knobs forwarded to every spawned worker's inner runner
        (``kernel`` selects the solver kernel; ``None`` leaves each worker
        on its own :func:`repro.configure` / ``REPRO_SOLVE_KERNEL``
        default).
    lock_timeout_s:
        How long the exclusive store phases (probe, finalize) wait for
        live workers to release the shared store lock before giving up.
    trace_workers:
        When True, every spawned local worker traces into its own
        ``obs/trace-w<i>.jsonl`` under the fabric directory (merged with
        :func:`repro.fabric.rollup.merge_traces`); enabled by
        ``repro-mms sweep --fabric DIR --trace ...``.
    max_attempts:
        Per-trial dispatch budget registered with the experiment: a trial
        failing past it goes terminal (``quarantined`` when >= 2 distinct
        workers tried it, else ``failed``) instead of burning the fleet's
        time forever.  See the quarantine notes in
        :mod:`repro.fabric.db`.
    """

    def __init__(
        self,
        fabric_dir,
        lease_ttl: float = 15.0,
        lease_points: int = 32,
        poll_s: float = 0.1,
        backend: str = "auto",
        retries: int = 1,
        timeout: float | None = None,
        lock_timeout_s: float = 10.0,
        kernel: str | None = None,
        trace_workers: bool = False,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ):
        if backend not in BACKENDS:
            raise FabricError(
                f"unknown backend {backend!r}; pick from {'/'.join(BACKENDS)}"
            )
        if kernel is not None:
            try:
                validate_kernel_name(kernel)
            except ValueError as exc:
                raise FabricError(str(exc)) from None
        if lease_points < 1:
            raise FabricError(f"lease_points must be >= 1, got {lease_points}")
        if max_attempts < 1:
            raise FabricError(f"max_attempts must be >= 1, got {max_attempts}")
        self.fabric_dir = Path(fabric_dir)
        self.store_dir = self.fabric_dir / "store"
        self.lease_ttl = lease_ttl
        self.lease_points = lease_points
        self.poll_s = poll_s
        self.backend = backend
        self.kernel = kernel
        self.retries = retries
        self.timeout = timeout
        self.lock_timeout_s = lock_timeout_s
        self.trace_workers = trace_workers
        self.max_attempts = max_attempts
        self.db = ExperimentDB(self.fabric_dir)
        #: local worker subprocesses this scheduler spawned (index -> Popen)
        self._procs: dict[int, subprocess.Popen] = {}
        self._next_worker = 0
        self._store: ResultStore | None = None

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.terminate()
        if self._store is not None:
            self._store.close()
            self._store = None
        self.db.close()

    def __enter__(self) -> "FabricScheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ----------------------------------------------------------------- steps
    def submit(
        self, specs: Sequence[JobSpec], meta: dict | None = None
    ) -> tuple[str, dict[str, dict[str, object]]]:
        """Register the sweep; returns ``(experiment_id, unique payloads)``.

        Payloads are deduplicated by content-addressed key in first-seen
        order (duplicate request entries share one trial, exactly as
        :class:`~repro.runner.SweepRunner` dedups).  Before any worker
        starts, the shared store is probed **exclusively** and every
        already-persisted point is marked ``done`` with ``from_cache`` --
        cache hits never cross the fabric.

        The probe is a fast-path only: if live workers still hold the
        shared store lock (external workers may join at any time), probing
        would mean compacting under their append fds, so it is skipped
        instead -- unmarked points get re-solved and the duplicate appends
        collapse at finalize's first-write-wins reopen.
        """
        payloads = [spec.payload() for spec in specs]
        unique: dict[str, dict[str, object]] = {}
        for payload in payloads:
            unique.setdefault(str(payload["key"]), payload)
        signature = sweep_signature(unique, SOLVER_VERSION)
        experiment_id, created = self.db.create_or_resume(
            signature,
            SOLVER_VERSION,
            list(unique.values()),
            meta={"backend": self.backend, **(meta or {})},
            max_attempts=self.max_attempts,
        )
        # store probe: done/failed trials stay as they are, but anything
        # else -- including quarantined, which a prior run's store record
        # can rescue -- is worth a cache lookup
        open_trials = [
            t
            for t in self.db.trials(experiment_id)
            if t["status"] not in ("done", "failed")
        ]
        if open_trials and (self.store_dir / "results.jsonl").exists():
            store = None
            try:
                store = ResultStore(
                    self.store_dir, lock_timeout_s=self.lock_timeout_s
                )
                for trial in open_trials:
                    rec = store.get(str(trial["key"]))
                    if rec is not None:
                        self.db.complete_trial(
                            experiment_id,
                            str(trial["key"]),
                            None,
                            float(rec.get("elapsed", 0.0)),
                            from_cache=True,
                        )
            except StoreLockError:
                # live workers hold the store; re-solving is safe, eating
                # their appends via compaction is not -- skip the fast-path
                obs_registry().counter("fabric.store_probe_skipped").inc()
            finally:
                if store is not None:
                    store.close()
        return experiment_id, unique

    def spawn_worker(self, experiment_id: str) -> subprocess.Popen:
        """Start one local ``repro-mms worker`` subprocess on this fabric."""
        args = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--fabric",
            str(self.fabric_dir),
            "--experiment",
            experiment_id,
            "--lease-points",
            str(self.lease_points),
            "--lease-ttl",
            str(self.lease_ttl),
            "--backend",
            self.backend,
            "--retries",
            str(self.retries),
        ]
        if self.timeout is not None:
            args += ["--timeout", str(self.timeout)]
        if self.kernel is not None:
            args += ["--kernel", self.kernel]
        if self.trace_workers:
            trace = worker_trace_path(self.fabric_dir, self._next_worker)
            trace.parent.mkdir(parents=True, exist_ok=True)
            args += ["--trace", str(trace)]
        proc = subprocess.Popen(args, stdout=subprocess.DEVNULL)
        self._procs[self._next_worker] = proc
        self._next_worker += 1
        obs_registry().counter("fabric.workers.spawned").inc()
        return proc

    def worker_pids(self) -> list[int]:
        """PIDs of the live local workers (test/chaos seam)."""
        return [p.pid for p in self._procs.values() if p.poll() is None]

    def wait(
        self,
        experiment_id: str,
        progress: DispatchProgress | None = None,
        timeout: float | None = None,
        respawn: bool = True,
    ) -> dict[str, int]:
        """Dispatch loop: reap, supervise, block until every trial is terminal.

        ``respawn=True`` keeps the local worker fleet at its spawned size
        while undone work remains -- a SIGKILLed worker is both reaped (its
        lease expires) and replaced.  External workers are invisible here;
        they coordinate purely through the database.  Raises
        :class:`FabricError` if *timeout* elapses first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        total = int(self.db.experiment(experiment_id)["total_trials"])
        last_done = -1
        while True:
            self.db.reap_expired(experiment_id)
            counts = self.db.counts(experiment_id)
            done = counts["done"] + counts["failed"] + counts["quarantined"]
            if progress is not None and done != last_done:
                progress(done, total, counts)
                last_done = done
            if counts["pending"] == 0 and counts["leased"] == 0:
                return counts
            if respawn and self._procs:
                for index, proc in list(self._procs.items()):
                    if proc.poll() is not None:
                        del self._procs[index]
                        self.spawn_worker(experiment_id)
                        obs_registry().counter("fabric.workers.respawned").inc()
            if deadline is not None and time.monotonic() > deadline:
                raise FabricError(
                    f"experiment {experiment_id} still has "
                    f"{counts['pending']} pending / {counts['leased']} leased "
                    f"trials after {timeout:.0f}s"
                )
            time.sleep(self.poll_s)

    def finalize(
        self,
        experiment_id: str,
        specs: Sequence[JobSpec],
        progress=None,
    ) -> RunReport:
        """Exclusive store reopen + report assembly for a drained experiment.

        The reopen runs the store's recovery scan over every worker's
        appends: duplicate keys from at-least-once re-dispatch collapse
        (first write wins), the index is rebuilt, and the surviving records
        are exactly what an uninterrupted single-host run would have
        persisted.  Compaction under a live appender would eat its writes,
        so the reopen waits for every shared store lock to release and
        raises :class:`FabricError` if workers still hold the store after
        ``lock_timeout_s``.  Results come back in request order;
        ``progress`` (the runner's ``(done, total, result)`` shape) fires
        once per unique point, after the sweep has fully drained --
        duplicates never fire (see :meth:`run`).
        """
        for proc in self._procs.values():
            if proc.poll() is None:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    # a hung worker can't hold a lease past its ttl; don't
                    # let it hold up finalize either (killing it drops its
                    # shared store lock along with the process)
                    proc.kill()
                    proc.wait()
        counts = self.db.counts(experiment_id)
        if counts["pending"] or counts["leased"]:
            raise FabricError(
                f"cannot finalize {experiment_id}: "
                f"{counts['pending']} pending / {counts['leased']} leased"
            )
        try:
            store = ResultStore(self.store_dir, lock_timeout_s=self.lock_timeout_s)
        except StoreLockError as exc:
            raise FabricError(
                f"cannot finalize {experiment_id}: workers still hold the "
                f"shared store ({exc}); wait for them to exit or stop them"
            ) from exc
        self.db.finish(
            experiment_id,
            "done"
            if counts["failed"] == 0 and counts["quarantined"] == 0
            else "failed",
        )
        trials = {str(t["key"]): t for t in self.db.trials(experiment_id)}
        resolved: dict[str, RunResult] = {}
        results: list[RunResult] = []
        done = 0
        for spec in specs:
            payload = spec.payload()
            key = str(payload["key"])
            base = resolved.get(key)
            if base is not None:
                results.append(base.as_duplicate())
                continue
            trial = trials.get(key)
            rec = store.get(key) if trial is not None else None
            if trial is None or (trial["status"] == "done" and rec is None):
                # a done trial must have a store record; its absence means
                # the store was tampered with between runs -- surface it
                result = self._failure(payload, "no store record for done trial")
            elif rec is not None and trial["status"] == "done":
                scenario = payload_scenario(payload)
                result = RunResult(
                    key=key,
                    params=scenario.params_from_dict(payload["params"]),
                    method=str(payload["method"]),
                    perf=scenario.perf_from_dict(rec["perf"]),
                    elapsed=float(rec.get("elapsed", 0.0)),
                    attempts=int(trial["attempts"]) or 1,
                    from_cache=bool(trial["from_cache"]),
                    amortized=bool(rec.get("amortized", False)),
                )
            else:
                error = str(trial["error"] or "trial failed")
                if trial["status"] == "quarantined":
                    error = (
                        f"quarantined after {trial['attempts']} attempts: "
                        f"{error}"
                    )
                result = self._failure(payload, error)
            resolved[key] = result
            results.append(result)
            done += 1
            if progress is not None:
                progress(done, len(trials), result)
        self._store = store  # kept open for stats; closed by close()/caller
        return RunReport(results=results, manifest=None)  # manifest set by run()

    @staticmethod
    def _failure(payload: dict[str, object], error: str) -> RunResult:
        return RunResult(
            key=str(payload["key"]),
            params=payload_scenario(payload).params_from_dict(payload["params"]),
            method=str(payload["method"]),
            perf=None,
            error=error,
        )

    # ------------------------------------------------------------ public API
    def run(
        self,
        specs: Sequence[JobSpec],
        workers: int = 2,
        progress=None,
        timeout: float | None = None,
        meta: dict | None = None,
    ) -> RunReport:
        """Managed fabric sweep: submit, dispatch across *workers*, finalize.

        ``workers=0`` spawns nothing and relies on external workers already
        pointed at the fabric directory.  Returns the same
        :class:`RunReport` a :class:`~repro.runner.SweepRunner` produces,
        with ``manifest.mode == "fabric"`` and dispatch accounting under
        ``manifest.fabric``.

        ``progress`` diverges from the single-host runner's: solves happen
        in worker processes, so the callback fires during **finalize** --
        a burst after the sweep has drained, not live -- once per *unique*
        point with ``total`` the unique count (duplicate request entries
        never fire).  For live dispatch-loop counts, poll the experiment
        DB (``repro-mms exp show``) or use :meth:`wait`'s progress hook.
        """
        t_start = time.perf_counter()
        created_at = time.time()
        metrics_before = obs_registry().snapshot()
        stages: dict[str, float] = {}
        with trace_span(
            "fabric.run", total_points=len(specs), workers=workers
        ) as root:
            t0 = time.perf_counter()
            with trace_span("fabric.schedule", points=len(specs)) as span:
                experiment_id, unique = self.submit(specs, meta=meta)
                counts = self.db.counts(experiment_id)
                # anything terminal before dispatch -- store probe hits and
                # prior runs' completions -- is a cache hit of this run
                pre_done = counts["done"]
                span.set(experiment=experiment_id, cached=pre_done)
            stages["schedule"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            with trace_span("fabric.dispatch", workers=workers) as span:
                if counts["pending"] or counts["leased"]:
                    for _ in range(workers):
                        self.spawn_worker(experiment_id)
                    counts = self.wait(experiment_id, timeout=timeout)
                span.set(
                    **{k: counts[k] for k in ("done", "failed", "quarantined")}
                )
            stages["dispatch"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            with trace_span("fabric.finalize"):
                report = self.finalize(experiment_id, specs, progress=progress)
            stages["finalize"] = time.perf_counter() - t0
            root.set(experiment=experiment_id)

        store = self._store
        by_key: dict[str, RunResult] = {}
        for r in report.results:  # keep the first (solved) result per key;
            by_key.setdefault(r.key, r)  # duplicates are as_duplicate() copies
        uniques = list(by_key.values())
        latencies = [r.elapsed for r in uniques if r.ok and not r.from_cache]
        amortized = sum(
            1 for r in uniques if r.ok and not r.from_cache and r.amortized
        )
        fabric_stats = self.db.stats(experiment_id)
        final = fabric_stats["trials"]
        cache_hits = pre_done
        solved = final["done"] - pre_done
        failures = final["failed"] + final["quarantined"]
        fabric_stats["fabric_dir"] = str(self.fabric_dir)
        fabric_stats["local_workers"] = workers
        # fleet view: per-worker throughput, lease latency, heartbeat gaps,
        # and whatever telemetry the workers shipped into obs/
        fabric_stats["fleet"] = fleet_rollup(
            self.db, experiment_id, fabric_dir=self.fabric_dir
        )
        manifest = RunManifest(
            solver_version=SOLVER_VERSION,
            jobs=workers if workers else 1,
            mode="fabric",
            backend=self.backend,
            # the kernel every spawned worker was asked to run (each worker
            # resolves "auto" locally; this is the scheduler's view)
            kernel=resolve_kernel(self.kernel),
            total_points=len(specs),
            unique_points=len(unique),
            cache_hits=cache_hits,
            solved=solved,
            failures=failures,
            # worker-side timeouts are failed trials tagged by the
            # executor's stable error prefix; the DB classifies them
            timeouts=int(fabric_stats["timeouts"]),
            retries=max(0, int(fabric_stats["dispatch_attempts"]) - len(unique)),
            worker_crashes=int(fabric_stats["leases_expired"]),
            wall_clock_s=time.perf_counter() - t_start,
            cache_hit_rate=(cache_hits / len(unique)) if unique else 0.0,
            point_latency=latency_stats(latencies, amortized=amortized),
            store=store.stats(),
            stages=stages,
            metrics=diff_snapshots(metrics_before, obs_registry().snapshot()),
            fabric=fabric_stats,
            created_at=created_at,
        )
        store.close()
        self._store = None
        report.manifest = manifest
        return report
