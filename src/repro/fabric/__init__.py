"""Distributed sweep fabric: scheduler, workers, experiment database.

The fabric turns one sweep into leased work units coordinated through a
sqlite (WAL) experiment database in a shared directory -- multiple worker
processes, on one host or several sharing the directory, pull leases,
solve points through the ordinary backend stack, and append results to a
shared content-addressed :class:`~repro.runner.store.ResultStore`.  The
scheduler supervises dispatch and finalizes the sweep into the same
:class:`~repro.runner.RunReport` a single-host run produces, bitwise
identical record for record.

See ``docs/DISTRIBUTED.md`` for the architecture, the experiment database
schema, the worker lifecycle, and the failure-semantics table.
"""

from .db import DB_SCHEMA_VERSION, ExperimentDB, FabricError, worker_identity
from .rollup import fleet_rollup, merge_traces, sweep_timeline
from .scheduler import FabricScheduler
from .worker import FabricWorker, WorkerStats

__all__ = [
    "DB_SCHEMA_VERSION",
    "ExperimentDB",
    "FabricError",
    "FabricScheduler",
    "FabricWorker",
    "WorkerStats",
    "worker_identity",
    "fleet_rollup",
    "merge_traces",
    "sweep_timeline",
]
