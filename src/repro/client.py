"""Retrying HTTP client for the solve service: ``repro.client``.

:class:`SolveClient` is the well-behaved counterpart to the serve tier's
overload protection (``docs/SERVING.md``).  The service sheds load with
429/503/504 + ``Retry-After`` when it cannot meet demand; this client
turns those rejections into *bounded, polite* retries instead of a retry
storm:

* **Capped exponential backoff with full jitter** -- attempt *n* sleeps
  ``uniform(0, min(cap, base * 2**n))``, so a thousand rejected clients
  decorrelate instead of re-arriving in lockstep.
* **Retry-After is honoured** -- when the server names a delay, the
  client never comes back sooner (jitter only ever adds on top).
* **A retry budget, not just a retry count** -- ``retry_budget_s`` bounds
  the total time spent waiting + retrying per call; an overloaded server
  degrades the caller gracefully instead of hanging it forever.
* **Idempotent by key** -- a solve is content-addressed by its parameter
  key and the service deduplicates via cache/single-flight/store, so
  resending after an ambiguous failure (connection reset, 503 after the
  request may have been enqueued) is always safe.  This is what makes
  blind retries correct here.

Only 429/503/504 and transport errors are retried; 4xx request errors
and 500 solver failures are not (retrying cannot fix them).  Everything
is stdlib (:mod:`urllib`); the transport, clock, sleep, and RNG are all
injectable so the retry policy is unit-testable without sockets.
"""

from __future__ import annotations

import json
import math
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Callable, Mapping

from .params import MMSParams

__all__ = [
    "ClientError",
    "RequestError",
    "RetryBudgetExceededError",
    "ServerError",
    "SolveClient",
    "SolveReply",
]

#: statuses the service uses for transient overload -- safe to retry
RETRYABLE_STATUSES = (429, 503, 504)


class ClientError(Exception):
    """Base class for everything :class:`SolveClient` raises."""


class RequestError(ClientError):
    """The server rejected the request as malformed (4xx, not overload).

    Retrying an identical request cannot succeed, so it fails fast.
    """

    def __init__(self, status: int, error: str, detail: str):
        super().__init__(f"{status} {error}: {detail}")
        self.status = status
        self.error = error
        self.detail = detail


class ServerError(ClientError):
    """The server failed the request terminally (500 solver failure)."""

    def __init__(self, status: int, error: str, detail: str):
        super().__init__(f"{status} {error}: {detail}")
        self.status = status
        self.error = error
        self.detail = detail


class RetryBudgetExceededError(ClientError):
    """Retries were exhausted (attempt count or time budget) while the
    service kept answering with transient overload statuses."""

    def __init__(self, message: str, attempts: int, last_status: int | None):
        super().__init__(message)
        self.attempts = attempts
        self.last_status = last_status


@dataclass(frozen=True)
class SolveReply:
    """One successful solve, plus the client-side retry accounting."""

    key: str
    perf: dict
    source: str
    batch_width: int
    latency_s: float
    #: requests actually sent (1 = first try succeeded)
    attempts: int
    #: total client-side backoff slept before the success
    backoff_s: float
    raw: dict = field(repr=False)


class SolveClient:
    """Blocking JSON client for ``POST /solve`` with bounded retries.

    Parameters
    ----------
    base_url:
        Service root, e.g. ``http://127.0.0.1:8787``.
    client_id:
        Sent as ``X-Client-Id`` so the service's per-client token bucket
        meters this caller (falls back to the peer address server-side).
    timeout_s:
        Per-request socket timeout.
    max_attempts:
        Total requests per call (first try + retries).
    retry_budget_s:
        Ceiling on cumulative backoff sleep per call; when the next
        scheduled sleep would cross it, the call raises
        :class:`RetryBudgetExceededError` instead of waiting.
    backoff_base_s / backoff_cap_s:
        Full-jitter exponential backoff: attempt *n* draws from
        ``uniform(0, min(cap, base * 2**n))``, floored by any server
        ``Retry-After``.
    transport / sleep / rng:
        Injection seams for tests: *transport* takes an already-built
        :class:`urllib.request.Request` plus a timeout and returns
        ``(status, headers, body_bytes)``; *sleep* and *rng* default to
        :func:`time.sleep` / a private :class:`random.Random`.
    """

    def __init__(
        self,
        base_url: str,
        *,
        client_id: str = "",
        timeout_s: float = 30.0,
        max_attempts: int = 6,
        retry_budget_s: float = 30.0,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 5.0,
        transport: Callable | None = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if retry_budget_s < 0:
            raise ValueError(
                f"retry_budget_s must be >= 0, got {retry_budget_s}"
            )
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        self.retry_budget_s = retry_budget_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._transport = transport or _urllib_transport
        self._sleep = sleep
        self._rng = rng or random.Random()
        #: lifetime accounting, surfaced by :meth:`stats`
        self._sent = 0
        self._retries = 0
        self._gave_up = 0
        self._backoff_s = 0.0

    # ------------------------------------------------------------- public API
    def solve(
        self,
        params: MMSParams | Mapping | None = None,
        *,
        point: Mapping | None = None,
        method: str = "auto",
        deadline_s: float | None = None,
    ) -> SolveReply:
        """Solve one parameter point, retrying through transient overload.

        Pass either *params* (an :class:`~repro.params.MMSParams` or its
        nested dict form) or *point* (``paper_defaults`` overrides) --
        the same contract as ``POST /solve``.
        """
        if (params is None) == (point is None):
            raise ValueError("pass exactly one of params= or point=")
        body: dict = {"method": method}
        if params is not None:
            body["params"] = (
                params.to_dict()
                if isinstance(params, MMSParams)
                else dict(params)
            )
        else:
            body["point"] = dict(point or {})
        if deadline_s is not None:
            body["deadline_s"] = float(deadline_s)
        status, payload, attempts, slept = self._request(
            "POST", "/solve", body
        )
        return SolveReply(
            key=str(payload["key"]),
            perf=dict(payload["perf"]),
            source=str(payload["source"]),
            batch_width=int(payload["batch_width"]),
            latency_s=float(payload["latency_s"]),
            attempts=attempts,
            backoff_s=slept,
            raw=payload,
        )

    def healthz(self) -> dict:
        """The service's structured health body (no retries: health is a
        point-in-time question, and 503 *is* an answer)."""
        request = urllib.request.Request(
            self.base_url + "/healthz", method="GET"
        )
        status, _, raw = self._transport(request, self.timeout_s)
        return json.loads(raw)

    def stats(self) -> dict:
        """Lifetime client-side accounting across calls."""
        return {
            "sent": self._sent,
            "retries": self._retries,
            "gave_up": self._gave_up,
            "backoff_s": self._backoff_s,
        }

    # ------------------------------------------------------------ retry loop
    def _request(
        self, http_method: str, path: str, body: dict
    ) -> tuple[int, dict, int, float]:
        data = json.dumps(body).encode("utf-8")
        slept = 0.0
        last_status: int | None = None
        last_detail = ""
        for attempt in range(self.max_attempts):
            request = urllib.request.Request(
                self.base_url + path,
                data=data,
                method=http_method,
                headers={"Content-Type": "application/json"},
            )
            if self.client_id:
                request.add_header("X-Client-Id", self.client_id)
            self._sent += 1
            retry_after: float | None = None
            try:
                status, headers, raw = self._transport(request, self.timeout_s)
                payload = json.loads(raw) if raw else {}
            except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
                # transport failure: ambiguous, but solves are idempotent
                # by key, so resending is safe
                status, payload = -1, {}
                last_detail = f"{type(exc).__name__}: {exc}"
            else:
                if status == 200:
                    return status, payload, attempt + 1, slept
                last_detail = str(payload.get("detail", ""))
                retry_after = payload.get("retry_after_s")
                if retry_after is None:
                    header = headers.get("Retry-After") if headers else None
                    retry_after = float(header) if header else None
                if status not in RETRYABLE_STATUSES:
                    name = str(payload.get("error", "HTTPError"))
                    if 400 <= status < 500:
                        raise RequestError(status, name, last_detail)
                    raise ServerError(status, name, last_detail)
            last_status = status if status > 0 else last_status
            if attempt + 1 >= self.max_attempts:
                break
            delay = self._backoff(attempt, retry_after)
            if slept + delay > self.retry_budget_s:
                break
            self._retries += 1
            self._sleep(delay)
            slept += delay
            self._backoff_s += delay
        self._gave_up += 1
        what = (
            f"status {last_status}"
            if last_status is not None
            else "transport errors"
        )
        raise RetryBudgetExceededError(
            f"retries exhausted after {what} "
            f"({slept:.2f}s backoff): {last_detail}",
            attempts=self._sent,
            last_status=last_status,
        )

    def _backoff(self, attempt: int, retry_after: float | None) -> float:
        ceiling = min(self.backoff_cap_s, self.backoff_base_s * (2**attempt))
        jittered = self._rng.uniform(0.0, ceiling)
        if retry_after is not None and math.isfinite(retry_after):
            # never return earlier than the server asked; jitter stacks on
            # top so simultaneous rejections still decorrelate
            return max(0.0, float(retry_after)) + jittered
        return jittered


def _urllib_transport(
    request: urllib.request.Request, timeout_s: float
) -> tuple[int, Mapping, bytes]:
    """Default transport: one urllib round trip, errors unified to tuples."""
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as resp:
            return resp.status, resp.headers, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers, exc.read()
