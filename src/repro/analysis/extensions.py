"""Extension experiments: the paper's implications and footnotes, implemented.

The paper *names* several architectural directions without evaluating them;
each generator here turns one into a measured experiment:

* :func:`ext_memory_ports` -- Section 7: "A very fast IN may increase the
  contention at local memory ... multiporting/pipelining the memory can be
  of help."
* :func:`ext_local_priority` -- Section 7: "prioritizing the local memory
  requests can improve the performance of a system with a very fast IN, and
  has been adopted in the design of EM-4."
* :func:`ext_finite_buffers` -- footnote 3: "If the switches on the IN have
  limited buffering, then S_obs will saturate with n_t."  Realized with
  deadlock-free end-to-end injection credits.
* :func:`ext_pipelined_switches` -- Section 2's modeling assumption: "near
  the network saturation, the performance of pipelined networks is similar
  to that of non-pipelined networks."
* :func:`ext_hotspot` -- Section 2's remark that the model applies to other
  distributions "by changing em_{i,j}": a hotspot module, solved with the
  full multi-class AMVA, plus the multiporting fix.
* :func:`ext_context_switch` -- the ``C`` parameter the paper carries in its
  symbol table but never varies.
"""

from __future__ import annotations

import numpy as np

from ..core import MMSModel, network_tolerance
from ..params import paper_defaults
from ..simulation import MMSSimulation
from .experiments import ExperimentResult
from .tables import format_table

__all__ = [
    "ext_memory_ports",
    "ext_local_priority",
    "ext_finite_buffers",
    "ext_pipelined_switches",
    "ext_hotspot",
    "ext_context_switch",
]


def ext_memory_ports(
    ks: tuple[int, ...] = (4, 8),
    ports: tuple[int, ...] = (1, 2, 4),
) -> ExperimentResult:
    """Multiported memory under a real and an ideal network (analytical)."""
    rows = []
    raw: dict[str, float] = {}
    for k in ks:
        for s in (10.0, 0.0):
            for m in ports:
                params = paper_defaults(k=k, switch_delay=s, memory_ports=m)
                perf = MMSModel(params).solve()
                rows.append(
                    [
                        k,
                        s,
                        m,
                        perf.processor_utilization,
                        perf.l_obs,
                        perf.memory.utilization,
                    ]
                )
                raw[f"k{k}_S{s:g}_m{m}"] = perf.processor_utilization
    table = format_table(
        ["k", "S", "ports", "U_p", "L_obs", "U_mem"],
        rows,
        title="multiported memory vs network speed (n_t=8, R=10, p_remote=0.2)",
    )
    return ExperimentResult(
        ident="Extension: memory ports",
        title="Section 7's multiporting suggestion, quantified",
        blocks=[table],
        data={"U_p": raw, "rows": rows},
    )


def ext_local_priority(
    duration: float = 20_000.0, seed: int = 41
) -> ExperimentResult:
    """EM-4-style local-request priority at the memory (simulation).

    Finding (recorded in EXPERIMENTS.md): the policy always shortens the
    local memory latency sharply, but whether *processor utilization*
    improves depends on the concurrency -- it pays at ``n_t = 1`` (the
    processor waits on each individual response, 80% of them local) and
    mildly costs at ``n_t = 8`` (threads hide the local latency anyway, and
    the delayed remote responses stall the thread pool).  The paper's
    suggestion is thus right for latency-bound codes, not for well-threaded
    ones.
    """
    rows = []
    raw = {}
    for nt in (1, 2, 8):
        for prio in (False, True):
            params = paper_defaults(
                switch_delay=1.0, p_remote=0.2, num_threads=nt
            )
            sim = MMSSimulation(params, seed=seed, local_priority=prio).run(
                duration
            )
            rows.append(
                [
                    nt,
                    "local-first" if prio else "FCFS",
                    sim.processor_utilization,
                    sim.l_obs_local,
                    sim.l_obs_remote,
                    sim.access_rate,
                ]
            )
            raw[f"nt{nt}_{'prio' if prio else 'fcfs'}"] = sim
    table = format_table(
        ["n_t", "memory policy", "U_p", "L_local", "L_remote", "lam_i"],
        rows,
        title="local-priority memory under a fast IN (S=1, R=10, p_remote=0.2)",
    )
    return ExperimentResult(
        ident="Extension: local priority",
        title="Section 7's EM-4 policy, simulated",
        blocks=[table],
        data={"sims": raw, "rows": rows},
    )


def ext_finite_buffers(
    thread_counts: tuple[int, ...] = (2, 4, 8, 16),
    credits: tuple[object, ...] = (2, 4, None),
    duration: float = 12_000.0,
    seed: int = 3,
) -> ExperimentResult:
    """Footnote 3: S_obs vs n_t under end-to-end injection credits."""
    rows = []
    series: dict[str, list[float]] = {}
    for cred in credits:
        label = f"credits={cred}" if cred else "unbounded"
        vals = []
        for nt in thread_counts:
            sim = MMSSimulation(
                paper_defaults(p_remote=0.4, num_threads=nt),
                seed=seed,
                max_outstanding_remote=cred,  # type: ignore[arg-type]
            ).run(duration)
            rows.append([label, nt, sim.s_obs, sim.processor_utilization])
            vals.append(sim.s_obs)
        series[label] = vals
    table = format_table(
        ["flow control", "n_t", "S_obs", "U_p"],
        rows,
        title="S_obs vs n_t under finite buffering (p_remote=0.4)",
    )
    return ExperimentResult(
        ident="Extension: finite buffers",
        title="footnote 3 -- S_obs saturates with n_t when buffering is finite",
        blocks=[table],
        data={"series": series, "thread_counts": thread_counts},
    )


def ext_pipelined_switches(
    depth: int = 4, duration: float = 15_000.0, seed: int = 8
) -> ExperimentResult:
    """Validate the paper's switch-modeling assumption (Section 2).

    The paper emulates faster/pipelined switches "by changing the service
    rate of the switches", conceding the method misses "the low latency of
    pipelined networks in the presence of light network traffic" while
    claiming that "near the network saturation the performance of pipelined
    networks is similar to that of non-pipelined networks" [9].

    We compare, at equal switch bandwidth:

    * **A (the paper's method)**: plain switches with service ``S / depth``;
    * **B (real pipelining)**: ``depth``-stage switches, latency ``S``,
      initiation interval ``S / depth``.
    """
    rows = []
    raw = {}
    s_over_d = 10.0 / depth
    for label, nt, pr, r in (
        ("light", 1, 0.1, 10.0),
        ("saturated", 8, 0.8, 2.5),
    ):
        params_a = paper_defaults(
            num_threads=nt, p_remote=pr, runlength=r, switch_delay=s_over_d
        )
        params_b = paper_defaults(num_threads=nt, p_remote=pr, runlength=r)
        a = MMSSimulation(params_a, seed=seed).run(duration)
        b = MMSSimulation(params_b, seed=seed, switch_pipeline_depth=depth).run(
            duration
        )
        for name, sim in (("rate-scaled (paper)", a), ("pipelined", b)):
            rows.append(
                [
                    label,
                    name,
                    sim.s_obs,
                    sim.processor_utilization,
                    sim.lambda_net,
                ]
            )
        raw[f"{label}_scaled"] = a
        raw[f"{label}_pipelined"] = b
    table = format_table(
        ["load", "switch model", "S_obs", "U_p", "lam_net"],
        rows,
        title="rate-scaling vs true pipelining at equal bandwidth: latency "
        "diverges\nat light load, performance converges near saturation",
    )
    return ExperimentResult(
        ident="Extension: pipelined switches",
        title="the paper's assumption-2 justification, simulated",
        blocks=[table],
        data={"sims": raw, "rows": rows},
    )


def ext_hotspot(
    fractions: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6),
    k: int = 4,
) -> ExperimentResult:
    """Hotspot severity sweep (full multi-class AMVA) + the multiport fix."""
    rows = []
    raw: dict[str, object] = {}
    for f in fractions:
        pattern = "hotspot" if f > 0 else "geometric"
        params = paper_defaults(
            k=k, p_remote=0.4, pattern=pattern, hot_fraction=f
        )
        perf = MMSModel(params).solve()
        spread = (
            float(np.ptp(perf.per_class_utilization))
            if perf.per_class_utilization is not None
            else 0.0
        )
        rows.append(
            [
                f,
                1,
                perf.processor_utilization,
                perf.memory.utilization,
                perf.inbound.utilization,
                perf.memory.queue_length,
                spread,
            ]
        )
        if f > 0:
            fixed = MMSModel(params.with_(memory_ports=4)).solve()
            rows.append(
                [
                    f,
                    4,
                    fixed.processor_utilization,
                    fixed.memory.utilization,
                    fixed.inbound.utilization,
                    fixed.memory.queue_length,
                    float(np.ptp(fixed.per_class_utilization)),
                ]
            )
            raw[f"f{f:g}_ports4"] = fixed
        raw[f"f{f:g}"] = perf
    table = format_table(
        [
            "hot_fraction",
            "ports",
            "U_p",
            "U_mem(max)",
            "U_in(max)",
            "Q_mem(max)",
            "U_p spread",
        ],
        rows,
        title="hotspot degradation: the hot module's memory is relieved by "
        "multiporting,\nbut the hot node's inbound switch takes over as the "
        "bottleneck (4x4, p_remote=0.4)",
    )
    return ExperimentResult(
        ident="Extension: hotspot",
        title="asymmetric access patterns via the full multi-class AMVA",
        blocks=[table],
        data={"perf": raw, "rows": rows},
    )


def ext_context_switch(
    overheads: tuple[float, ...] = (0.0, 1.0, 2.0, 5.0, 10.0),
) -> ExperimentResult:
    """Context-switch overhead ``C``: useful utilization and tolerance."""
    rows = []
    u_ps = []
    for c in overheads:
        params = paper_defaults(context_switch=c)
        res = network_tolerance(params)
        perf = res.actual
        rows.append(
            [
                c,
                perf.processor_utilization,
                perf.processor_busy,
                perf.s_obs,
                res.index,
            ]
        )
        u_ps.append(perf.processor_utilization)
    table = format_table(
        ["C", "U_p (useful)", "busy", "S_obs", "tol_net"],
        rows,
        title="context-switch overhead (n_t=8, R=10, p_remote=0.2)",
    )
    return ExperimentResult(
        ident="Extension: context switch",
        title="the cost of non-zero C on useful utilization",
        blocks=[table],
        data={"overheads": overheads, "U_p": u_ps, "rows": rows},
    )
