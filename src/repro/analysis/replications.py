"""Independent-replication statistics for the simulators.

The paper reports single long runs; independent replications give proper
confidence intervals and are what an adopter should use when the DES is the
source of truth (e.g., for the extension features the analytical model does
not cover).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..params import MMSParams
from ..simulation import MMSSimulation
from .tables import format_table

__all__ = ["ReplicatedMeasure", "ReplicationResult", "replicate"]

#: two-sided 95% normal quantile
Z95 = 1.959963984540054

MEASURES = ("U_p", "lambda_net", "S_obs", "L_obs", "access_rate")


@dataclass(frozen=True)
class ReplicatedMeasure:
    """Mean and 95% CI half-width of one measure across replications."""

    name: str
    mean: float
    halfwidth: float
    values: tuple[float, ...]

    @property
    def relative_halfwidth(self) -> float:
        """CI half-width as a fraction of the mean (inf for zero mean)."""
        return self.halfwidth / abs(self.mean) if self.mean else float("inf")

    def covers(self, value: float) -> bool:
        """Whether ``value`` lies inside the 95% CI."""
        return abs(value - self.mean) <= self.halfwidth


@dataclass(frozen=True)
class ReplicationResult:
    """All headline measures across ``n`` independent replications."""

    params: MMSParams
    replications: int
    measures: dict[str, ReplicatedMeasure]

    def __getitem__(self, name: str) -> ReplicatedMeasure:
        return self.measures[name]

    def render(self) -> str:
        rows = [
            [m.name, m.mean, m.halfwidth, 100 * m.relative_halfwidth]
            for m in self.measures.values()
        ]
        return format_table(
            ["measure", "mean", "95% hw", "rel hw %"],
            rows,
            precision=4,
            title=f"{self.replications} independent replications",
        )


def replicate(
    params: MMSParams,
    replications: int = 5,
    duration: float = 20_000.0,
    base_seed: int = 1000,
    **sim_kwargs: object,
) -> ReplicationResult:
    """Run ``replications`` independent simulations and pool the measures.

    Extra keyword arguments are forwarded to :class:`MMSSimulation`
    (``local_priority``, ``switch_capacity``, ``memory_dist``, ...).
    """
    if replications < 2:
        raise ValueError("need at least 2 replications for an interval")
    samples: dict[str, list[float]] = {m: [] for m in MEASURES}
    for i in range(replications):
        sim = MMSSimulation(params, seed=base_seed + i, **sim_kwargs)  # type: ignore[arg-type]
        res = sim.run(duration)
        for name, value in res.summary().items():
            samples[name].append(value)
    measures = {}
    for name, vals in samples.items():
        arr = np.asarray(vals)
        hw = Z95 * float(arr.std(ddof=1)) / np.sqrt(replications)
        measures[name] = ReplicatedMeasure(
            name=name,
            mean=float(arr.mean()),
            halfwidth=hw,
            values=tuple(float(v) for v in vals),
        )
    return ReplicationResult(
        params=params, replications=replications, measures=measures
    )
