"""Model-vs-simulation validation (the paper's Section 8 / Figure 11).

The paper reports the analytical predictions within 2% of simulated
``lambda_net`` and 5% of ``S_obs``, plus robustness of ``S_obs`` (within 10%)
to swapping the memory service distribution from exponential to
deterministic.  These routines reproduce that comparison with the
discrete-event simulator (and optionally the Petri-net simulator).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import MMSModel
from ..params import MMSParams, paper_defaults
from ..simulation import simulate
from .tables import format_table

__all__ = ["ValidationRow", "validate_point", "fig11_validation"]


@dataclass(frozen=True)
class ValidationRow:
    """Model vs simulation at one parameter point."""

    params: MMSParams
    measure: str
    model: float
    simulated: float

    @property
    def rel_error(self) -> float:
        """``|sim - model| / model`` (inf when the model predicts zero)."""
        if self.model == 0:
            return float("inf") if self.simulated else 0.0
        return abs(self.simulated - self.model) / abs(self.model)


def validate_point(
    params: MMSParams,
    duration: float = 30_000.0,
    seed: int = 0,
    memory_dist: str = "exponential",
    simulator: str = "des",
    with_stats: bool = False,
):
    """Compare the four headline measures at one point.

    ``simulator="des"`` uses the fast discrete-event simulator;
    ``"spn"`` uses the stochastic timed Petri net -- the paper's actual
    Section-8 vehicle (slower; supports exponential service and C = 0 only).

    With ``with_stats=True`` returns ``(rows, stats)`` where ``stats``
    carries the simulator's execution telemetry -- wall clock, event count,
    and (DES only) per-station occupancy -- so benchmark manifests can
    record what the comparison cost, not just what it concluded.
    """
    import time

    perf = MMSModel(params).solve()
    t0 = time.perf_counter()
    if simulator == "des":
        sim = simulate(
            params, duration=duration, seed=seed, memory_dist=memory_dist
        )
    elif simulator == "spn":
        if memory_dist != "exponential":
            raise ValueError("the SPN validation path is exponential-only")
        from ..spn import simulate_spn

        sim = simulate_spn(params, duration=duration, seed=seed)
    else:
        raise ValueError(f"unknown simulator {simulator!r}")
    wall = time.perf_counter() - t0
    pairs = [
        ("U_p", perf.processor_utilization, sim.processor_utilization),
        ("lambda_net", perf.lambda_net, sim.lambda_net),
        ("S_obs", perf.s_obs, sim.s_obs),
        ("L_obs", perf.l_obs, sim.l_obs),
    ]
    rows = [
        ValidationRow(params=params, measure=m, model=a, simulated=b)
        for m, a, b in pairs
    ]
    if not with_stats:
        return rows
    stats: dict[str, object] = {"simulator": simulator, "wall_clock_s": wall}
    if simulator == "des" and sim.engine_stats is not None:
        stats["events"] = sim.engine_stats["events_processed"]
        stats["max_event_queue"] = sim.engine_stats["max_event_queue"]
        stats["stations"] = sim.engine_stats["stations"]
    elif simulator == "spn":
        stats["events"] = sim.events
    return rows, stats


def fig11_validation(
    thread_counts: tuple[int, ...] = (1, 2, 4, 6, 8, 10),
    switch_delays: tuple[float, ...] = (10.0, 20.0),
    p_remote: float = 0.5,
    duration: float = 30_000.0,
    seed: int = 0,
):
    """Figure 11: lambda_net and S_obs vs n_t, model against simulation.

    Returns ``(rows, text)`` where rows are :class:`ValidationRow` and text
    is the rendered comparison table.
    """
    rows: list[ValidationRow] = []
    table_rows = []
    for s in switch_delays:
        for nt in thread_counts:
            params = paper_defaults(
                num_threads=nt, p_remote=p_remote, switch_delay=s
            )
            point_rows = validate_point(params, duration=duration, seed=seed)
            rows.extend(point_rows)
            by = {r.measure: r for r in point_rows}
            table_rows.append(
                [
                    s,
                    nt,
                    by["lambda_net"].model,
                    by["lambda_net"].simulated,
                    100 * by["lambda_net"].rel_error,
                    by["S_obs"].model,
                    by["S_obs"].simulated,
                    100 * by["S_obs"].rel_error,
                ]
            )
    text = format_table(
        [
            "S",
            "n_t",
            "lam_net(mva)",
            "lam_net(sim)",
            "err%",
            "S_obs(mva)",
            "S_obs(sim)",
            "err%",
        ],
        table_rows,
        precision=4,
        title=f"Figure 11: model vs simulation, p_remote = {p_remote}",
    )
    return rows, text
