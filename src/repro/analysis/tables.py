"""Plain-text rendering of experiment output (tables and ASCII surfaces).

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["format_table", "format_surface", "format_series"]


def _fmt(x: object, precision: int) -> str:
    if isinstance(x, float) or isinstance(x, np.floating):
        if x != x:  # NaN
            return "nan"
        return f"{x:.{precision}f}"
    return str(x)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
    title: str = "",
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    str_rows = [[_fmt(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_surface(
    x_label: str,
    y_label: str,
    x_values: Sequence[object],
    y_values: Sequence[object],
    values: np.ndarray,
    precision: int = 3,
    title: str = "",
) -> str:
    """Render a 2-D surface as a matrix: rows = x values, columns = y values."""
    headers = [f"{x_label}\\{y_label}"] + [_fmt(y, precision) for y in y_values]
    rows = []
    for i, xv in enumerate(x_values):
        rows.append([_fmt(xv, precision)] + [values[i, j] for j in range(len(y_values))])
    return format_table(headers, rows, precision=precision, title=title)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    precision: int = 4,
    title: str = "",
) -> str:
    """Render named 1-D series sharing an x axis (one figure line each)."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, xv in enumerate(x_values):
        rows.append([xv] + [vals[i] for vals in series.values()])
    return format_table(headers, rows, precision=precision, title=title)
