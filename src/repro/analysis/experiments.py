"""Experiment generators: one function per table/figure of the paper.

Every function returns an :class:`ExperimentResult` whose ``render()``
produces the rows/series the paper reports.  The benchmark harness under
``benchmarks/`` wraps these, and EXPERIMENTS.md records paper-vs-measured
values.

Default grids follow the paper's reconstructed Table 1 settings (DESIGN.md
Section 2); the analytical sweeps use the symmetric AMVA fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import (
    MMSModel,
    analyze,
    memory_tolerance,
    network_tolerance,
)
from ..core.tolerance import _ratio
from ..params import MMSParams, paper_defaults
from ..workload import IsoWorkPartitioning
from .sweep import sweep
from .tables import format_series, format_surface, format_table

__all__ = [
    "ExperimentResult",
    "fig4_5_workload_surfaces",
    "table2_network_tolerance",
    "table3_partitioning_network",
    "table4_partitioning_memory",
    "fig6_tolerance_surface",
    "fig7_iso_work_lines",
    "fig8_memory_surface",
    "fig9_scaling_tolerance",
    "fig10_throughput_scaling",
    "headline_claims",
    "DEFAULT_THREADS",
    "DEFAULT_P_REMOTE",
]

#: thread-count axis used by the workload-surface figures
DEFAULT_THREADS = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20)
#: remote-fraction axis used by the workload-surface figures
DEFAULT_P_REMOTE = tuple(round(0.05 * i, 2) for i in range(1, 17))  # 0.05..0.80


@dataclass
class ExperimentResult:
    """Rendered text plus raw arrays for one reproduced table/figure."""

    ident: str
    title: str
    blocks: list[str] = field(default_factory=list)
    data: dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        header = f"== {self.ident}: {self.title} =="
        return "\n\n".join([header, *self.blocks])


def _tol_net(params: MMSParams) -> float:
    return network_tolerance(params).index


# --------------------------------------------------------------------- Fig 4/5
def fig4_5_workload_surfaces(
    runlength: float = 10.0,
    threads: tuple[int, ...] = DEFAULT_THREADS,
    p_remotes: tuple[float, ...] = DEFAULT_P_REMOTE,
) -> ExperimentResult:
    """Figures 4 (R=10) and 5 (R=20): U_p, S_obs, lambda_net and tol_network
    over the (n_t, p_remote) grid on the 4x4 machine."""
    base = paper_defaults(runlength=runlength)
    shape = (len(threads), len(p_remotes))
    u_p = np.empty(shape)
    s_obs = np.empty(shape)
    lam = np.empty(shape)
    tol = np.empty(shape)
    # Both the actual and the zero-delay ideal lattices go through the
    # managed sweep runner, so regenerating this figure reuses any points a
    # previous run (or a sibling experiment) already solved and parallelizes
    # under a configured runner.
    axes = {"num_threads": list(threads), "p_remote": list(p_remotes)}
    actual_recs = sweep(base, axes)
    ideal_recs = sweep(base.with_(switch_delay=0.0), axes)
    for idx, (actual_rec, ideal_rec) in enumerate(zip(actual_recs, ideal_recs)):
        i, j = divmod(idx, len(p_remotes))
        perf = actual_rec["perf"]
        u_p[i, j] = perf.processor_utilization
        s_obs[i, j] = perf.s_obs
        lam[i, j] = perf.lambda_net
        tol[i, j] = _ratio(perf, ideal_rec["perf"])

    fig = "4" if runlength == 10.0 else "5"
    ba = analyze(base)
    blocks = [
        f"R = {runlength}; network saturation rate (Eq. 4) = "
        f"{ba.lambda_net_saturation:.4f}, critical p_remote (Eq. 5) = "
        f"{ba.critical_p_remote:.3f}",
        format_surface("n_t", "p_rem", threads, p_remotes, u_p, title="(a) U_p"),
        format_surface(
            "n_t", "p_rem", threads, p_remotes, s_obs, precision=1, title="(b) S_obs"
        ),
        format_surface(
            "n_t", "p_rem", threads, p_remotes, lam, precision=4,
            title="(c) lambda_net",
        ),
        format_surface(
            "n_t", "p_rem", threads, p_remotes, tol, title="(d) tol_network"
        ),
    ]
    return ExperimentResult(
        ident=f"Figure {fig}",
        title=f"effect of workload parameters at R = {runlength:g}",
        blocks=blocks,
        data={
            "threads": np.array(threads),
            "p_remotes": np.array(p_remotes),
            "U_p": u_p,
            "S_obs": s_obs,
            "lambda_net": lam,
            "tol_network": tol,
        },
    )


# --------------------------------------------------------------------- Table 2
def _p_remote_for_sobs(
    base: MMSParams, target: float, lo: float = 0.01, hi: float = 0.9
) -> float:
    """Bisect ``p_remote`` until the model's ``S_obs`` hits ``target``."""
    def sobs(p: float) -> float:
        return MMSModel(base.with_(p_remote=p)).solve().s_obs

    f_lo, f_hi = sobs(lo), sobs(hi)
    if not f_lo <= target <= f_hi:
        return hi if target > f_hi else lo
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if sobs(mid) < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def table2_network_tolerance(
    targets: dict[float, float] | None = None,
    thread_counts: tuple[int, ...] = (3, 4, 6, 8),
) -> ExperimentResult:
    """Table 2: points with *similar S_obs* but different tolerance zones.

    The paper's argument: at R=10, n_t=8 tolerates an S_obs of ~53 time units
    while n_t=3 does not; at R=20, n_t=6 tolerates ~56 while n_t=3, 4 only
    partially do.  For each (R, n_t) we bisect p_remote to the target S_obs
    and report the zone.
    """
    targets = targets or {10.0: 53.0, 20.0: 56.0}
    rows = []
    raw = []
    for r, s_target in targets.items():
        for nt in thread_counts:
            base = paper_defaults(runlength=r, num_threads=nt)
            pr = _p_remote_for_sobs(base, s_target)
            point = base.with_(p_remote=pr)
            res = network_tolerance(point)
            perf = res.actual
            rows.append(
                [
                    r,
                    nt,
                    round(pr, 3),
                    perf.l_obs,
                    perf.s_obs,
                    perf.lambda_net,
                    perf.processor_utilization,
                    res.index,
                    res.zone.value,
                ]
            )
            raw.append({"R": r, "n_t": nt, "p_remote": pr, "tol": res.index})
    table = format_table(
        ["R", "n_t", "p_rem", "L_obs", "S_obs", "lam_net", "U_p", "tol_net", "zone"],
        rows,
    )
    return ExperimentResult(
        ident="Table 2",
        title="network latency tolerance -- same S_obs, different zones",
        blocks=[table],
        data={"rows": raw},
    )


# --------------------------------------------------------------------- Table 3
def table3_partitioning_network(
    work: float = 40.0,
    p_remotes: tuple[float, ...] = (0.2, 0.4),
    thread_counts: tuple[int, ...] = (1, 2, 4, 5, 8, 10, 20, 40),
) -> ExperimentResult:
    """Table 3: iso-work thread partitioning (n_t * R = const) vs
    tol_network."""
    rows = []
    raw = []
    for pr in p_remotes:
        part = IsoWorkPartitioning(
            work, paper_defaults(p_remote=pr).workload
        )
        for nt in thread_counts:
            wl = part.workload(nt)
            point = paper_defaults().with_(
                num_threads=wl.num_threads, runlength=wl.runlength, p_remote=pr
            )
            res = network_tolerance(point)
            perf = res.actual
            rows.append(
                [
                    pr,
                    nt,
                    wl.runlength,
                    perf.l_obs,
                    perf.s_obs,
                    perf.lambda_net,
                    perf.processor_utilization,
                    res.index,
                    res.zone.value,
                ]
            )
            raw.append({"p_remote": pr, "n_t": nt, "R": wl.runlength, "tol": res.index})
    table = format_table(
        ["p_rem", "n_t", "R", "L_obs", "S_obs", "lam_net", "U_p", "tol_net", "zone"],
        rows,
        title=f"n_t x R = {work:g}",
    )
    return ExperimentResult(
        ident="Table 3",
        title="thread partitioning strategy vs network latency tolerance",
        blocks=[table],
        data={"rows": raw, "work": work},
    )


# --------------------------------------------------------------------- Table 4
def table4_partitioning_memory(
    work: float = 40.0,
    memory_latencies: tuple[float, ...] = (10.0, 20.0),
    p_remote: float = 0.2,
    thread_counts: tuple[int, ...] = (1, 2, 4, 5, 8, 10, 20, 40),
) -> ExperimentResult:
    """Table 4: iso-work partitioning vs tol_memory at L = 10 and 20."""
    rows = []
    raw = []
    for l_mem in memory_latencies:
        part = IsoWorkPartitioning(work, paper_defaults(p_remote=p_remote).workload)
        for nt in thread_counts:
            wl = part.workload(nt)
            point = paper_defaults().with_(
                num_threads=wl.num_threads,
                runlength=wl.runlength,
                p_remote=p_remote,
                memory_latency=l_mem,
            )
            res = memory_tolerance(point)
            perf = res.actual
            rows.append(
                [
                    l_mem,
                    nt,
                    wl.runlength,
                    perf.l_obs,
                    perf.s_obs,
                    perf.processor_utilization,
                    res.index,
                    res.zone.value,
                ]
            )
            raw.append({"L": l_mem, "n_t": nt, "R": wl.runlength, "tol": res.index})
    table = format_table(
        ["L", "n_t", "R", "L_obs", "S_obs", "U_p", "tol_mem", "zone"],
        rows,
        title=f"n_t x R = {work:g}, p_remote = {p_remote}",
    )
    return ExperimentResult(
        ident="Table 4",
        title="thread partitioning strategy vs memory latency tolerance",
        blocks=[table],
        data={"rows": raw, "work": work},
    )


# --------------------------------------------------------------------- Fig 6
def fig6_tolerance_surface(
    p_remotes: tuple[float, ...] = (0.2, 0.4),
    threads: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 8, 10, 14, 20),
    runlengths: tuple[float, ...] = (1, 2, 5, 10, 20, 40, 80),
) -> ExperimentResult:
    """Figure 6: tol_network over the (n_t, R) plane for two p_remote."""
    blocks = []
    data: dict[str, object] = {"threads": threads, "runlengths": runlengths}
    for pr in p_remotes:
        surf = np.empty((len(threads), len(runlengths)))
        for i, nt in enumerate(threads):
            for j, r in enumerate(runlengths):
                surf[i, j] = _tol_net(
                    paper_defaults(num_threads=nt, runlength=float(r), p_remote=pr)
                )
        blocks.append(
            format_surface(
                "n_t", "R", threads, runlengths, surf,
                title=f"tol_network at p_remote = {pr}",
            )
        )
        data[f"tol_p{pr}"] = surf
    return ExperimentResult(
        ident="Figure 6",
        title="tol_network vs (n_t, R)",
        blocks=blocks,
        data=data,
    )


# --------------------------------------------------------------------- Fig 7
def fig7_iso_work_lines(
    p_remotes: tuple[float, ...] = (0.2, 0.4),
    works: tuple[float, ...] = (20.0, 40.0, 80.0, 160.0),
    thread_counts: tuple[int, ...] = (1, 2, 4, 5, 8, 10, 16, 20, 40, 80),
) -> ExperimentResult:
    """Figure 7: tol_network along iso-work lines, plotted against R."""
    blocks = []
    data: dict[str, object] = {}
    for pr in p_remotes:
        series: dict[str, list[float]] = {}
        r_axis: list[float] = []
        for w in works:
            part = IsoWorkPartitioning(w)
            pts = []
            for nt in thread_counts:
                if w / nt < 0.25:  # absurdly fine grain; skip
                    continue
                wl = part.workload(nt)
                tol = _tol_net(
                    paper_defaults(
                        num_threads=wl.num_threads,
                        runlength=wl.runlength,
                        p_remote=pr,
                    )
                )
                pts.append((wl.runlength, tol))
            pts.sort()
            series[f"ntxR={w:g}"] = [t for _, t in pts]
            r_axis = [r for r, _ in pts]
            data[f"p{pr}_w{w:g}"] = pts
        # series lengths can differ; render each line separately
        for name, vals in series.items():
            rs = [r for r, _ in data[f"p{pr}_w{float(name.split('=')[1]):g}"]]
            blocks.append(
                format_series(
                    "R", rs, {name: vals},
                    title=f"p_remote = {pr}",
                )
            )
        del r_axis
    return ExperimentResult(
        ident="Figure 7",
        title="network latency tolerance along n_t x R = const lines",
        blocks=blocks,
        data=data,
    )


# --------------------------------------------------------------------- Fig 8
def fig8_memory_surface(
    memory_latencies: tuple[float, ...] = (10.0, 20.0),
    p_remote: float = 0.2,
    threads: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 8, 10, 14, 20),
    runlengths: tuple[float, ...] = (1, 2, 5, 10, 20, 40, 80),
) -> ExperimentResult:
    """Figure 8: tol_memory over the (n_t, R) plane for L = 10 and 20."""
    blocks = []
    data: dict[str, object] = {"threads": threads, "runlengths": runlengths}
    for l_mem in memory_latencies:
        surf = np.empty((len(threads), len(runlengths)))
        for i, nt in enumerate(threads):
            for j, r in enumerate(runlengths):
                point = paper_defaults(
                    num_threads=nt,
                    runlength=float(r),
                    p_remote=p_remote,
                    memory_latency=l_mem,
                )
                surf[i, j] = memory_tolerance(point).index
        blocks.append(
            format_surface(
                "n_t", "R", threads, runlengths, surf,
                title=f"tol_memory at L = {l_mem:g}, p_remote = {p_remote}",
            )
        )
        data[f"tol_L{l_mem:g}"] = surf
    return ExperimentResult(
        ident="Figure 8",
        title="tol_memory vs (n_t, R)",
        blocks=blocks,
        data=data,
    )


# --------------------------------------------------------------------- Fig 9
def fig9_scaling_tolerance(
    runlengths: tuple[float, ...] = (10.0, 20.0),
    ks: tuple[int, ...] = (2, 4, 6, 8, 10),
    threads: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 8, 10),
    p_remote: float = 0.2,
) -> ExperimentResult:
    """Figure 9: tol_network vs n_t for machine sizes k = 2..10 under
    geometric and uniform remote-access patterns."""
    blocks = []
    data: dict[str, object] = {"threads": threads, "ks": ks}
    for r in runlengths:
        series: dict[str, list[float]] = {}
        for k in ks:
            for pattern in ("uniform", "geometric"):
                vals = [
                    _tol_net(
                        paper_defaults(
                            k=k,
                            num_threads=nt,
                            runlength=r,
                            p_remote=p_remote,
                            pattern=pattern,
                        )
                    )
                    for nt in threads
                ]
                series[f"k={k},{pattern[:4]}"] = vals
                data[f"R{r:g}_k{k}_{pattern}"] = np.array(vals)
        blocks.append(
            format_series("n_t", list(threads), series, title=f"R = {r:g}")
        )
        from .plotting import ascii_chart

        chart_series = {
            name: vals
            for name, vals in series.items()
            if name.startswith(("k=2,", f"k={ks[-1]},"))
        }
        blocks.append(
            ascii_chart(
                list(threads),
                chart_series,
                title=f"R = {r:g}: smallest vs largest machine",
                y_label="tol_network",
            )
        )
    return ExperimentResult(
        ident="Figure 9",
        title="tolerance index vs system size (geometric vs uniform)",
        blocks=blocks,
        data=data,
    )


# --------------------------------------------------------------------- Fig 10
def fig10_throughput_scaling(
    ks: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8, 9, 10),
    num_threads: int = 8,
    runlength: float = 10.0,
    p_remote: float = 0.2,
) -> ExperimentResult:
    """Figure 10: system throughput P*U_p and the S_obs/L_obs latencies vs P
    for uniform / geometric / ideal-network configurations."""
    ps = []
    thr: dict[str, list[float]] = {
        "linear": [],
        "ideal_net": [],
        "geometric": [],
        "uniform": [],
    }
    lat: dict[str, list[float]] = {
        "ideal(mem)": [],
        "geo(net)": [],
        "geo(mem)": [],
        "uni(net)": [],
        "uni(mem)": [],
    }
    base = paper_defaults(
        num_threads=num_threads, runlength=runlength, p_remote=p_remote
    )
    # "linear" reference: perfect scaling of the communication-free PE.
    u_local = MMSModel(base.with_(p_remote=0.0, k=2)).solve().processor_utilization
    for k in ks:
        p_count = k * k
        ps.append(p_count)
        thr["linear"].append(p_count * u_local)
        ideal = MMSModel(base.with_(k=k, switch_delay=0.0)).solve()
        thr["ideal_net"].append(ideal.system_throughput)
        lat["ideal(mem)"].append(ideal.l_obs)
        geo = MMSModel(base.with_(k=k, pattern="geometric")).solve()
        thr["geometric"].append(geo.system_throughput)
        lat["geo(net)"].append(geo.s_obs)
        lat["geo(mem)"].append(geo.l_obs)
        uni = MMSModel(base.with_(k=k, pattern="uniform")).solve()
        thr["uniform"].append(uni.system_throughput)
        lat["uni(net)"].append(uni.s_obs)
        lat["uni(mem)"].append(uni.l_obs)
    from .plotting import ascii_chart

    blocks = [
        format_series("P", ps, thr, precision=2, title="(a) system throughput P*U_p"),
        ascii_chart(ps, thr, title="(a) as a chart", y_label="P*U_p"),
        format_series("P", ps, lat, precision=2, title="(b) S_obs and L_obs"),
        ascii_chart(ps, lat, title="(b) as a chart", y_label="latency"),
    ]
    return ExperimentResult(
        ident="Figure 10",
        title="throughput and latency scaling, uniform vs geometric vs ideal",
        blocks=blocks,
        data={"P": np.array(ps), "throughput": thr, "latency": lat},
    )


# ----------------------------------------------------------- headline claims
def headline_claims() -> ExperimentResult:
    """The paper's quotable numbers, computed from the model:

    1. geometric d_avg = 1.733 on the 4x4 torus at p_sw = 0.5;
    2. lambda_net saturates at 1/(2 d_avg S) ~= 0.029 (Eq. 4);
    3. critical p_remote = 0.18 (R=10) and 0.37 (R=20) (Eq. 5);
    4. most performance gains arrive by n_t = 4..8;
    5. larger machines: geometric locality sustains tolerance, uniform
       collapses.
    """
    rows = []
    base = paper_defaults()
    ba = analyze(base)
    rows.append(["d_avg (4x4, p_sw=0.5)", 1.733, ba.d_avg])
    rows.append(["lambda_net,sat (Eq. 4)", 0.029, ba.lambda_net_saturation])
    rows.append(
        ["critical p_remote, R=10", 0.18, ba.critical_p_remote]
    )
    ba20 = analyze(base.with_(runlength=20.0))
    rows.append(["critical p_remote, R=20", 0.37, ba20.critical_p_remote])
    rows.append(
        [
            "IN-saturating p_remote, R=10",
            0.3,
            ba.network_saturation_p_remote,
        ]
    )
    rows.append(
        [
            "IN-saturating p_remote, R=20",
            0.6,
            ba20.network_saturation_p_remote,
        ]
    )

    # claim 4: U_p(n_t)/U_p(20) at the default point
    u20 = MMSModel(base.with_(num_threads=20)).solve().processor_utilization
    u8 = MMSModel(base.with_(num_threads=8)).solve().processor_utilization
    u4 = MMSModel(base.with_(num_threads=4)).solve().processor_utilization
    rows.append(["U_p(4)/U_p(20)", ">=0.7", u4 / u20])
    rows.append(["U_p(8)/U_p(20)", ">=0.9", u8 / u20])

    # claim 5: scaling contrast at k=10
    geo = _tol_net(paper_defaults(k=10, num_threads=8))
    uni = _tol_net(paper_defaults(k=10, num_threads=8, pattern="uniform"))
    rows.append(["tol_net k=10 geometric", "~1", geo])
    rows.append(["tol_net k=10 uniform", "<0.5", uni])

    table = format_table(["claim", "paper", "measured"], rows, precision=4)
    return ExperimentResult(
        ident="Headline claims",
        title="closed-form laws and scaling contrasts",
        blocks=[table],
        data={"rows": rows},
    )
