"""Experiment harness: sweeps, figure/table generators, validation."""

from .experiments import (
    ExperimentResult,
    fig4_5_workload_surfaces,
    fig6_tolerance_surface,
    fig7_iso_work_lines,
    fig8_memory_surface,
    fig9_scaling_tolerance,
    fig10_throughput_scaling,
    headline_claims,
    table2_network_tolerance,
    table3_partitioning_network,
    table4_partitioning_memory,
)
from .extensions import (
    ext_context_switch,
    ext_finite_buffers,
    ext_hotspot,
    ext_local_priority,
    ext_memory_ports,
    ext_pipelined_switches,
)
from .plotting import ascii_chart
from .replications import ReplicatedMeasure, ReplicationResult, replicate
from .sensitivity import Sensitivity, SensitivityReport, sensitivities
from .sweep import GridResult, grid, sweep
from .tables import format_series, format_surface, format_table
from .validation import ValidationRow, fig11_validation, validate_point

__all__ = [
    "ExperimentResult",
    "fig4_5_workload_surfaces",
    "table2_network_tolerance",
    "table3_partitioning_network",
    "table4_partitioning_memory",
    "fig6_tolerance_surface",
    "fig7_iso_work_lines",
    "fig8_memory_surface",
    "fig9_scaling_tolerance",
    "fig10_throughput_scaling",
    "headline_claims",
    "sweep",
    "grid",
    "GridResult",
    "format_table",
    "format_surface",
    "format_series",
    "ValidationRow",
    "validate_point",
    "fig11_validation",
    "ext_memory_ports",
    "ext_local_priority",
    "ext_finite_buffers",
    "ext_pipelined_switches",
    "ext_hotspot",
    "ext_context_switch",
    "replicate",
    "ReplicationResult",
    "ReplicatedMeasure",
    "sensitivities",
    "Sensitivity",
    "SensitivityReport",
    "ascii_chart",
]
