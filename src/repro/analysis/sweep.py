"""Generic parameter sweeps over the analytical model.

Experiments in the paper are 1-D curves or 2-D surfaces over workload /
architecture parameters.  :func:`sweep` produces flat records;
:func:`grid` evaluates a measure on a 2-D lattice and returns plottable
arrays.  Any keyword understood by :meth:`repro.params.MMSParams.with_` can be
an axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..core import MMSModel, MMSPerformance
from ..params import MMSParams

__all__ = ["sweep", "grid", "GridResult"]

Measure = Callable[[MMSParams, MMSPerformance], float]


def sweep(
    base: MMSParams,
    axes: Mapping[str, Sequence[object]],
    method: str = "auto",
) -> list[dict[str, object]]:
    """Cartesian-product sweep; returns one record per point.

    Each record holds the axis values plus the solved
    :class:`MMSPerformance` under the key ``"perf"``.

    >>> recs = sweep(paper_defaults(), {"num_threads": [2, 4]})  # doctest: +SKIP
    """
    names = list(axes)
    records: list[dict[str, object]] = []
    for combo in product(*(axes[n] for n in names)):
        point = base.with_(**dict(zip(names, combo)))
        perf = MMSModel(point).solve(method=method)
        rec: dict[str, object] = dict(zip(names, combo))
        rec["perf"] = perf
        records.append(rec)
    return records


@dataclass(frozen=True)
class GridResult:
    """A measure evaluated on a 2-D parameter lattice."""

    x_name: str
    y_name: str
    x_values: np.ndarray
    y_values: np.ndarray
    #: ``values[i, j]`` at ``x_values[i]``, ``y_values[j]``
    values: np.ndarray

    def at(self, x: object, y: object) -> float:
        """Value at an exact lattice point."""
        xi = int(np.nonzero(self.x_values == x)[0][0])
        yi = int(np.nonzero(self.y_values == y)[0][0])
        return float(self.values[xi, yi])

    def argmax(self) -> tuple[object, object, float]:
        """Lattice point with the largest value, ``(x, y, value)``."""
        i, j = np.unravel_index(int(np.argmax(self.values)), self.values.shape)
        return self.x_values[i], self.y_values[j], float(self.values[i, j])


def grid(
    base: MMSParams,
    x_axis: tuple[str, Iterable[object]],
    y_axis: tuple[str, Iterable[object]],
    measure: Measure,
    method: str = "auto",
) -> GridResult:
    """Evaluate ``measure(params, perf)`` on the ``x × y`` lattice."""
    x_name, x_vals = x_axis[0], list(x_axis[1])
    y_name, y_vals = y_axis[0], list(y_axis[1])
    values = np.empty((len(x_vals), len(y_vals)))
    for i, xv in enumerate(x_vals):
        for j, yv in enumerate(y_vals):
            point = base.with_(**{x_name: xv, y_name: yv})
            perf = MMSModel(point).solve(method=method)
            values[i, j] = measure(point, perf)
    return GridResult(
        x_name=x_name,
        y_name=y_name,
        x_values=np.asarray(x_vals),
        y_values=np.asarray(y_vals),
        values=values,
    )
