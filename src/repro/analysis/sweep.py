"""Generic parameter sweeps over the analytical model.

Experiments in the paper are 1-D curves or 2-D surfaces over workload /
architecture parameters.  :func:`sweep` produces flat records;
:func:`grid` evaluates a measure on a 2-D lattice and returns plottable
arrays.  Any keyword understood by :meth:`repro.params.MMSParams.with_` can be
an axis.

Sweeps execute through the :mod:`repro.runner` subsystem: points are
deduplicated by content-addressed key, optionally served from a persistent
result cache, and solved in parallel when a runner with ``jobs > 1`` is
passed (or configured globally via :func:`repro.runner.configure` /
``REPRO_SWEEP_JOBS`` / ``REPRO_CACHE_DIR``).  The default remains serial,
in-process execution, which is the right call for the tiny sweeps unit
tests and interactive exploration produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..core import MMSPerformance
from ..params import MMSParams
from ..queueing.kernels import validate_kernel_name
from ..runner import JobSpec, SweepRunner, default_runner
from ..runner.executor import BACKENDS, Progress

__all__ = ["sweep", "grid", "GridResult"]

Measure = Callable[[MMSParams, MMSPerformance], float]


def _apply_measure(
    measure: Measure | str, params: MMSParams, perf: MMSPerformance
) -> tuple[str, float]:
    """Evaluate a measure spec; returns the record key and scalar value.

    A string names either a :meth:`~repro.core.MMSPerformance.summary` key
    (``"U_p"``, ``"S_obs"``, ...) or an :class:`~repro.core.MMSPerformance`
    attribute/property; a callable receives ``(params, perf)`` and its value
    lands under ``"value"``.
    """
    if callable(measure):
        return "value", float(measure(params, perf))
    summary = perf.summary()
    if measure in summary:
        return measure, float(summary[measure])
    value = getattr(perf, measure, None)
    if value is None:
        raise KeyError(
            f"unknown measure {measure!r}; summary keys: {sorted(summary)}"
        )
    return measure, float(value)


def sweep(
    base: MMSParams | None,
    axes: Mapping[str, Sequence[object]],
    method: str = "auto",
    *,
    measure: Measure | str | None = None,
    progress: Progress | None = None,
    runner: SweepRunner | None = None,
    backend: str | None = None,
    kernel: str | None = None,
    fabric: str | None = None,
    workers: int = 2,
    scenario: str | None = None,
) -> list[dict[str, object]]:
    """Cartesian-product sweep; returns one record per point.

    Without ``measure``, each record holds the axis values plus the solved
    :class:`MMSPerformance` under the key ``"perf"``.  With ``measure`` (a
    summary key, attribute name, or ``(params, perf) -> float`` callable),
    records carry only the requested scalar -- no performance object is
    retained, which keeps big sweeps cheap when only one number per point
    matters.

    ``progress`` is invoked as ``(done, total_unique, run_result)`` while
    points resolve (cache hits included).  ``runner`` overrides the
    globally-configured :class:`~repro.runner.SweepRunner`; ``backend``
    overrides the runner's execution backend for this sweep
    (``"auto"``/``"batch"``/``"process"``/``"serial"``) -- same-shape
    lattices route through the batched AMVA kernel under ``"auto"`` and
    ``"batch"``.  ``kernel`` overrides the solver kernel for this sweep
    (``"auto"``/``"numpy"``/``"numba"``; kernels are bitwise-
    interchangeable, see :mod:`repro.queueing.kernels`); ``None`` honours
    :func:`repro.configure` and ``REPRO_SOLVE_KERNEL``.

    ``fabric`` (a shared coordination directory) distributes the sweep
    across ``workers`` local worker processes -- plus any externally
    started ones pointed at the same directory -- through the sweep
    fabric (see ``docs/DISTRIBUTED.md``); it composes with ``backend``
    and ``progress`` but not ``runner``.

    ``scenario`` names the workload/topology family (``"torus"``,
    ``"worksteal"``, ``"hier"``; see ``docs/SCENARIOS.md``).  ``None``
    infers it from ``base``'s type, else falls back to the configured /
    ``REPRO_SCENARIO`` / torus default.  Axis names must be fields of the
    active scenario's parameter schema.

    >>> recs = sweep(paper_defaults(), {"num_threads": [2, 4]})  # doctest: +SKIP
    """
    from ..scenarios import resolve_scenario, scenario_for_params

    if scenario is not None:
        scen = resolve_scenario(scenario)
    elif base is not None:
        scen = scenario_for_params(base)
    else:
        scen = resolve_scenario(None)
    if base is None:
        base = scen.default_params()
    elif type(base) is not scen.params_type:
        from ..params import ParamError

        raise ParamError(
            f"base params of type {type(base).__name__} do not belong to "
            f"scenario {scen.name!r} (expects {scen.params_type.__name__})"
        )
    names = list(axes)
    combos = list(product(*(axes[n] for n in names)))
    if not combos:
        return []
    if kernel is not None:
        validate_kernel_name(kernel)
    points = [
        scen.with_overrides(base, **dict(zip(names, combo))) for combo in combos
    ]
    specs = [
        JobSpec(params=point, method=method, scenario=scen.name) for point in points
    ]
    if fabric is not None:
        if runner is not None:
            raise ValueError("pass either runner= or fabric=, not both")
        from ..fabric import FabricScheduler

        with FabricScheduler(
            fabric, backend=backend or "auto", kernel=kernel
        ) as scheduler:
            report = scheduler.run(specs, workers=workers, progress=progress)
    else:
        if runner is None:
            runner = default_runner()
        if backend is not None:
            if backend not in BACKENDS:
                raise ValueError(
                    f"unknown backend {backend!r}; pick from {'/'.join(BACKENDS)}"
                )
            runner.backend = backend
        if kernel is not None:
            runner.kernel = kernel
        report = runner.run(specs, progress=progress)
    records: list[dict[str, object]] = []
    for combo, point, result in zip(combos, points, report.results):
        if not result.ok:
            raise RuntimeError(
                f"sweep point {dict(zip(names, combo))} failed: {result.error}"
            )
        rec: dict[str, object] = dict(zip(names, combo))
        if measure is None:
            rec["perf"] = result.perf
        else:
            key, value = _apply_measure(measure, point, result.perf)
            rec[key] = value
        records.append(rec)
    return records


@dataclass(frozen=True)
class GridResult:
    """A measure evaluated on a 2-D parameter lattice."""

    x_name: str
    y_name: str
    x_values: np.ndarray
    y_values: np.ndarray
    #: ``values[i, j]`` at ``x_values[i]``, ``y_values[j]``
    values: np.ndarray

    def at(self, x: object, y: object) -> float:
        """Value at an exact lattice point."""
        xi = int(np.nonzero(self.x_values == x)[0][0])
        yi = int(np.nonzero(self.y_values == y)[0][0])
        return float(self.values[xi, yi])

    def argmax(self) -> tuple[object, object, float]:
        """Lattice point with the largest value, ``(x, y, value)``."""
        i, j = np.unravel_index(int(np.argmax(self.values)), self.values.shape)
        return self.x_values[i], self.y_values[j], float(self.values[i, j])


def grid(
    base: MMSParams,
    x_axis: tuple[str, Iterable[object]],
    y_axis: tuple[str, Iterable[object]],
    measure: Measure,
    method: str = "auto",
    *,
    runner: SweepRunner | None = None,
    backend: str | None = None,
) -> GridResult:
    """Evaluate ``measure(params, perf)`` on the ``x × y`` lattice."""
    x_name, x_vals = x_axis[0], list(x_axis[1])
    y_name, y_vals = y_axis[0], list(y_axis[1])
    records = sweep(
        base,
        {x_name: x_vals, y_name: y_vals},
        method,
        measure=measure,
        runner=runner,
        backend=backend,
    )
    # sweep() iterates product(x, y): row-major over the lattice
    values = np.array([rec["value"] for rec in records]).reshape(
        len(x_vals), len(y_vals)
    )
    return GridResult(
        x_name=x_name,
        y_name=y_name,
        x_values=np.asarray(x_vals),
        y_values=np.asarray(y_vals),
        values=values,
    )
