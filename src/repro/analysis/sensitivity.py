"""Parameter sensitivity of the solved performance measures.

The paper motivates the tolerance index as a tuning guide: "with information
on tolerating particular latencies ... a user can narrow the focus to tune
the parameters which have a large effect on the system performance".  This
module quantifies that directly: normalized elasticities

    E_theta = (dU / d theta) * (theta / U)

via central finite differences on the analytical model -- a +1% change in
``theta`` moves the measure by ``E_theta`` percent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import MMSModel
from ..params import MMSParams
from .tables import format_table

__all__ = ["Sensitivity", "SensitivityReport", "sensitivities"]

#: continuous parameters the elasticity sweep covers by default
DEFAULT_PARAMS = (
    "runlength",
    "p_remote",
    "memory_latency",
    "switch_delay",
    "p_sw",
)


@dataclass(frozen=True)
class Sensitivity:
    """Elasticity of one measure with respect to one parameter."""

    parameter: str
    measure: str
    elasticity: float
    base_value: float

    @property
    def direction(self) -> str:
        if abs(self.elasticity) < 1e-6:
            return "none"
        return "up" if self.elasticity > 0 else "down"


@dataclass(frozen=True)
class SensitivityReport:
    """Elasticities of one measure for several parameters, ranked."""

    params: MMSParams
    measure: str
    entries: tuple[Sensitivity, ...]

    def ranked(self) -> list[Sensitivity]:
        """Largest absolute elasticity first -- the tuning priority list."""
        return sorted(self.entries, key=lambda s: -abs(s.elasticity))

    def __getitem__(self, parameter: str) -> Sensitivity:
        for s in self.entries:
            if s.parameter == parameter:
                return s
        raise KeyError(parameter)

    def render(self) -> str:
        rows = [
            [s.parameter, s.base_value, s.elasticity, s.direction]
            for s in self.ranked()
        ]
        return format_table(
            ["parameter", "value", f"elasticity of {self.measure}", "moves"],
            rows,
            precision=4,
            title="parameter sensitivities (a +1% change moves the measure "
            "by 'elasticity' %)",
        )


def _measure(params: MMSParams, measure: str) -> float:
    perf = MMSModel(params).solve()
    value = perf.summary().get(measure)
    if value is None:
        raise ValueError(
            f"unknown measure {measure!r}; pick from {sorted(perf.summary())}"
        )
    return float(value)


def sensitivities(
    params: MMSParams,
    measure: str = "U_p",
    parameters: tuple[str, ...] = DEFAULT_PARAMS,
    rel_step: float = 0.01,
) -> SensitivityReport:
    """Central-difference elasticities of ``measure`` at ``params``.

    Parameters whose base value is 0 (nothing to perturb relatively) and
    parameters invalid for the configuration are skipped.
    """
    base = _measure(params, measure)
    entries = []
    wl, arch = params.workload, params.arch
    current = {
        "runlength": wl.runlength,
        "p_remote": wl.p_remote,
        "p_sw": wl.p_sw,
        "memory_latency": arch.memory_latency,
        "switch_delay": arch.switch_delay,
        "context_switch": arch.context_switch,
    }
    for name in parameters:
        theta = current.get(name)
        if theta is None:
            raise ValueError(f"unknown parameter {name!r}")
        if theta == 0.0 or base == 0.0:
            continue
        h = rel_step * theta
        try:
            up = _measure(params.with_(**{name: theta + h}), measure)
            down = _measure(params.with_(**{name: theta - h}), measure)
        except ValueError:
            continue  # perturbation left the valid domain
        elasticity = (up - down) / (2 * h) * (theta / base)
        entries.append(
            Sensitivity(
                parameter=name,
                measure=measure,
                elasticity=elasticity,
                base_value=theta,
            )
        )
    return SensitivityReport(
        params=params, measure=measure, entries=tuple(entries)
    )
