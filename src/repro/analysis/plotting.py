"""ASCII line charts for figure-like benchmark output.

The paper's evaluation is all figures; the benchmark harness archives the
underlying series as tables (exact, diffable) and renders these quick ASCII
charts so the *shape* -- knees, crossovers, saturation plateaus -- is
visible at a glance in a terminal or a CI log.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_chart"]

#: glyphs assigned to series in order
MARKERS = "ox+*#@%&"


def ascii_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render named series on a shared (linear) axis grid.

    Points are plotted at their nearest cell; later series overwrite earlier
    ones where they collide.  Returns a multi-line string.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError("chart too small to be legible")
    xs = list(x_values)
    if len(xs) < 2:
        raise ValueError("need at least two x values")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(xs)} x values"
            )

    all_y = [y for ys in series.values() for y in ys if y == y]  # drop NaNs
    if not all_y:
        raise ValueError("series contain no finite values")
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        raise ValueError("x values are all identical")

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        mark = MARKERS[si % len(MARKERS)]
        for x, y in zip(xs, ys):
            if y != y:  # NaN
                continue
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.4g}"
    bottom_label = f"{y_lo:.4g}"
    pad = max(len(top_label), len(bottom_label)) + 1
    for r, row in enumerate(grid):
        if r == 0:
            label = top_label
        elif r == height - 1:
            label = bottom_label
        else:
            label = ""
        lines.append(f"{label:>{pad}} |{''.join(row)}|")
    axis = f"{'':>{pad}} +{'-' * width}+"
    lines.append(axis)
    lines.append(f"{'':>{pad}}  {x_lo:<.4g}{'':^{width - 12}}{x_hi:>.4g}")
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{'':>{pad}}  {legend}")
    if y_label:
        lines.append(f"{'':>{pad}}  y: {y_label}")
    return "\n".join(lines)
