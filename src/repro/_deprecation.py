"""Warn-once plumbing for deprecated entry points.

The facade (:mod:`repro.api`) replaced the per-package ``configure``
surfaces; the old names stay importable as thin shims that call
:func:`warn_once` before forwarding.  One warning per name per process --
a sweep touching a deprecated shim in a loop should nag once, not 176
times.  Tests reset :data:`_WARNED` to assert the warn-exactly-once
contract.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_once"]

#: deprecated names that have already warned this process
_WARNED: set[str] = set()


def warn_once(old: str, new: str) -> None:
    """Emit one :class:`DeprecationWarning` steering *old* callers to *new*.

    ``stacklevel=3`` points the warning at the shim's *caller* (user code),
    skipping both this helper and the shim frame.
    """
    if old in _WARNED:
        return
    _WARNED.add(old)
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )
