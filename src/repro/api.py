"""The blessed public surface of ``repro`` -- one stable front door.

Four PRs grew solver entry points, three ``configure()`` surfaces, and
``REPRO_*`` environment reads across four modules.  This module is the
consolidation: every supported way in, with consistent keywords, lazy
imports of the heavy layers, and one :func:`configure` that composes the
runner, observability, and resilience knobs.  ``import repro`` re-exports
everything here; stability tiers and the full env-var table live in
``docs/API.md``.

Quick start::

    import repro

    perf = repro.solve(num_threads=8, p_remote=0.2)
    tol = repro.tolerance_index(num_threads=8, p_remote=0.2)

    prev = repro.configure(cache_dir="~/.cache/mms", jobs=4)
    records = repro.sweep({"num_threads": [1, 2, 4, 8, 16]})
    repro.configure(**prev)

    with repro.SolveService() as svc:
        result = svc.solve(repro.paper_defaults(p_remote=0.1))

Precedence everywhere: environment variable < :func:`configure` <
explicit argument at the call site.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from .core.metrics import MMSPerformance
from .core.tolerance import ToleranceResult
from .params import MMSParams, paper_defaults
from .serve import ServiceConfig, SolveService

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulation.engine import SimResult

__all__ = [
    "configure",
    "scenarios",
    "simulate",
    "solve",
    "solve_points",
    "sweep",
    "tolerance_index",
    "ServiceConfig",
    "SolveService",
]


def _resolve_scenario(scenario: str | None, params: object):
    """One scenario convention for the whole facade.

    Precedence: an explicit ``scenario=`` name wins; otherwise prebuilt
    ``params`` identify their family by type (so old torus call sites are
    immune to any configured or ``REPRO_SCENARIO`` default); otherwise
    the configured default, then the environment, then ``"torus"``.
    """
    from .scenarios import resolve_scenario, scenario_for_params

    if scenario is not None:
        return resolve_scenario(scenario)
    if params is not None:
        return scenario_for_params(params)
    return resolve_scenario(None)


def _resolve_params(
    params: MMSParams | None, overrides: Mapping[str, object], scen=None
) -> MMSParams:
    """One params convention for the whole facade.

    ``params`` (a prebuilt params object) and field ``**overrides``
    (applied over the scenario's defaults -- :func:`paper_defaults` for
    the torus) are the two supported spellings; mixing them is ambiguous
    and refused.
    """
    if params is not None:
        if overrides:
            raise TypeError(
                "pass either params= or field overrides "
                f"({sorted(map(str, overrides))}), not both"
            )
        return params
    if scen is None:
        return paper_defaults(**overrides)
    return scen.with_overrides(scen.default_params(), **overrides)


def scenarios() -> tuple[str, ...]:
    """Names of every registered workload/topology scenario.

    >>> import repro
    >>> "torus" in repro.scenarios()
    True
    """
    from .scenarios import scenario_names

    return scenario_names()


def solve(
    params: MMSParams | None = None,
    *,
    method: str = "auto",
    scenario: str | None = None,
    **overrides: object,
) -> MMSPerformance:
    """Solve one parameter point; returns its performance.

    Parameters
    ----------
    params:
        A prebuilt params object (:class:`MMSParams` for the torus).
        Omit it to solve the scenario's default machine with
        ``**overrides`` applied.
    method:
        Solver selection.  For the torus: ``"auto"`` (default; picks the
        symmetric MVA when the workload allows, AMVA otherwise),
        ``"symmetric"``, ``"amva"``, ``"linearizer"``, or ``"exact"``.
        Other scenarios document their methods in ``docs/SCENARIOS.md``.
    scenario:
        Workload/topology family (see :func:`scenarios`); default infers
        it from ``params``'s type, else honours :func:`configure` and
        ``REPRO_SCENARIO``, else ``"torus"``.
    **overrides:
        Scenario parameter overrides (``num_threads=8``,
        ``p_remote=0.2``, ...); only valid when ``params`` is omitted.

    >>> import repro
    >>> perf = repro.solve(num_threads=8, p_remote=0.2)
    >>> 0.0 < perf.processor_utilization <= 1.0
    True
    """
    scen = _resolve_scenario(scenario, params)
    return scen.solve(_resolve_params(params, overrides, scen), method=method)


def solve_points(
    points: Sequence[MMSParams],
    *,
    method: str = "auto",
    tol: float = 1e-12,
    kernel: str | None = None,
    scenario: str | None = None,
) -> list[MMSPerformance]:
    """Solve a homogeneous lattice of points with one batched fixed point.

    Parameters
    ----------
    points:
        The :class:`MMSParams` to solve.  All must resolve to the same
        solver method and machine size (that is what lets them stack into
        one batched AMVA); symmetric batches are bitwise-identical to
        per-point :func:`solve`.
    method:
        Solver selection, as in :func:`solve`; must be homogeneous across
        the batch.
    tol:
        Fixed-point convergence tolerance.
    kernel:
        Solver kernel: ``"auto"``, ``"numpy"`` or ``"numba"`` (kernels are
        bitwise-interchangeable); default honours :func:`configure` and
        ``REPRO_SOLVE_KERNEL``.
    scenario:
        Workload/topology family (see :func:`scenarios`); default infers
        it from the first point's type, else honours :func:`configure`
        and ``REPRO_SCENARIO``, else ``"torus"``.

    Returns the performances in ``points`` order.  (The batched solver's
    internal telemetry is available through :mod:`repro.core.model` for
    callers who need it.)
    """
    scen = _resolve_scenario(scenario, points[0] if points else None)
    perfs, _telemetry = scen.solve_points(points, method=method, tol=tol, kernel=kernel)
    return perfs


def sweep(
    axes: Mapping[str, Sequence[object]],
    *,
    base: MMSParams | None = None,
    method: str = "auto",
    measure: Callable | str | None = None,
    backend: str | None = None,
    kernel: str | None = None,
    runner: object | None = None,
    progress: Callable | None = None,
    fabric: str | None = None,
    workers: int = 2,
    scenario: str | None = None,
) -> list[dict[str, object]]:
    """Cartesian-product sweep; returns one record dict per point.

    Parameters
    ----------
    axes:
        Ordered mapping of parameter name to the values it sweeps, e.g.
        ``{"num_threads": [1, 2, 4], "p_remote": [0.1, 0.2]}``.  Names
        must be fields of the active scenario's parameter schema.
    base:
        The point the axes vary around; defaults to the scenario's
        default params (:func:`paper_defaults` for the torus).
    method:
        Solver selection, as in :func:`solve`.
    measure:
        Optional reduction per point -- a summary key or performance
        attribute (``"U_p"``, ``"lambda_net"``, ``"throughput"``, ...) or a
        callable ``(params, perf) -> value``; without it each record
        carries the solved performance object under ``"perf"``.
    backend:
        Execution backend override: ``"auto"``, ``"batch"``, ``"process"``,
        or ``"serial"``; default honours :func:`configure` and
        ``REPRO_SWEEP_BACKEND``.
    kernel:
        Solver-kernel override: ``"auto"``, ``"numpy"`` or ``"numba"``
        (kernels are bitwise-interchangeable, so cached records never
        depend on this); default honours :func:`configure` and
        ``REPRO_SOLVE_KERNEL``.
    runner:
        A prebuilt :class:`repro.runner.SweepRunner` for full control of
        jobs/caching/journaling; default builds one from the global
        configuration.
    progress:
        Optional callback ``(done, total, result)`` invoked per completed
        point.  With ``fabric`` the semantics diverge: solves happen in
        worker processes, so the callback fires during finalize (after
        the sweep has drained, not live), once per *unique* point with
        ``total`` the unique count -- duplicate points never fire.  For
        live counts poll the experiment DB (``repro-mms exp show``).
    fabric:
        Optional shared coordination directory: the sweep is distributed
        across fabric worker processes (an experiment database plus a
        shared result store live under it), is restartable, and may span
        hosts sharing the directory.  Mutually exclusive with ``runner``.
        See ``docs/DISTRIBUTED.md``.
    workers:
        Local fabric worker processes to spawn when ``fabric`` is given
        (default 2; 0 relies on externally started workers).
    scenario:
        Workload/topology family (see :func:`scenarios`); default infers
        it from ``base``'s type, else honours :func:`configure` and
        ``REPRO_SCENARIO``, else ``"torus"``.
    """
    from .analysis.sweep import sweep as _sweep

    return _sweep(
        base,
        axes,
        method,
        measure=measure,
        progress=progress,
        runner=runner,
        backend=backend,
        kernel=kernel,
        fabric=fabric,
        workers=workers,
        scenario=scenario,
    )


def simulate(
    params: MMSParams | None = None,
    *,
    duration: float = 100_000.0,
    seed: int = 0,
    warmup: float | None = None,
    scenario: str | None = None,
    **overrides: object,
) -> "SimResult":
    """Discrete-event simulation of one point (the validation substrate).

    Parameters
    ----------
    params:
        A prebuilt params object (:class:`MMSParams` for the torus); omit
        it to simulate the scenario's default machine with ``**overrides``
        applied.
    duration:
        Simulated time units to run.
    seed:
        RNG seed; the same seed reproduces the run event for event.
    warmup:
        Simulated time discarded before statistics start; default lets the
        simulator choose.
    scenario:
        Workload/topology family (see :func:`scenarios`); default infers
        it from ``params``'s type, else honours :func:`configure` and
        ``REPRO_SCENARIO``, else ``"torus"``.  Scenarios without a
        simulator raise
        :class:`~repro.scenarios.ScenarioCapabilityError`.
    **overrides:
        Scenario parameter overrides, as in :func:`solve`.  For the torus,
        simulator-specific keywords (``memory_dist=``, ``switch_dist=``,
        ``runlength_dist=``, ``local_priority=``, ``switch_capacity=``,
        ``switch_pipeline_depth=``, ``max_outstanding_remote=``) pass
        through to :class:`repro.simulation.MMSSimulation` unchanged.
    """
    scen = _resolve_scenario(scenario, params)
    sim_kwargs = {}
    if scen.name == "torus":
        sim_kwargs = {
            k: overrides.pop(k)
            for k in (
                "memory_dist",
                "switch_dist",
                "runlength_dist",
                "local_priority",
                "switch_capacity",
                "switch_pipeline_depth",
                "max_outstanding_remote",
            )
            if k in overrides
        }
    return scen.simulate(
        _resolve_params(params, overrides, scen),
        duration=duration,
        seed=seed,
        warmup=warmup,
        **sim_kwargs,
    )


def tolerance_index(
    params: MMSParams | None = None,
    *,
    subsystem: str | None = None,
    ideal: str | None = None,
    method: str = "auto",
    scenario: str | None = None,
    **overrides: object,
) -> ToleranceResult:
    """The paper's latency-tolerance metric for one subsystem.

    Parameters
    ----------
    params:
        A prebuilt params object (:class:`MMSParams` for the torus); omit
        it to use the scenario's default machine with ``**overrides``
        applied.
    subsystem:
        Which latency source the index measures tolerance of.  Torus:
        ``"network"`` (default) or ``"memory"``; work stealing:
        ``"steal"``; mesh-of-clusters: ``"network"`` (default),
        ``"interlink"``, or ``"memory"`` (see ``docs/SCENARIOS.md``).
        ``None`` picks the scenario's first subsystem.
    ideal:
        Ideal-system construction for the torus network index:
        ``"zero_delay"`` (the paper's definition, the default) or
        ``"local_only"``; ignored elsewhere.
    method:
        Solver selection, as in :func:`solve`.
    scenario:
        Workload/topology family (see :func:`scenarios`); default infers
        it from ``params``'s type, else honours :func:`configure` and
        ``REPRO_SCENARIO``, else ``"torus"``.
    **overrides:
        Scenario parameter overrides, as in :func:`solve`.

    Returns a :class:`ToleranceResult`; ``float()`` of it is the index.
    """
    scen = _resolve_scenario(scenario, params)
    resolved = _resolve_params(params, overrides, scen)
    return scen.tolerance(resolved, subsystem=subsystem, ideal=ideal, method=method)


#: distinguishes "not passed" from "explicitly set to None/False"
_UNSET = object()


def configure(
    *,
    jobs: object = _UNSET,
    cache_dir: object = _UNSET,
    timeout: object = _UNSET,
    retries: object = _UNSET,
    backend: object = _UNSET,
    kernel: object = _UNSET,
    scenario: object = _UNSET,
    trace: object = _UNSET,
    tracer: object = _UNSET,
    fault_plan: object = _UNSET,
) -> dict[str, object]:
    """One config front door: runner, observability, and resilience knobs.

    Composes the per-subsystem configuration that used to live behind
    ``repro.runner.configure``, ``repro.obs.configure``, and
    ``repro.resilience.configure`` (all now deprecated shims).  Only the
    keywords actually passed change; everything else is untouched.
    Precedence per setting: environment variable < ``configure`` <
    explicit argument at a call site.

    Parameters
    ----------
    jobs:
        Default sweep worker count (env: ``REPRO_SWEEP_JOBS``).
    cache_dir:
        Default persistent result-store directory; ``None`` disables
        caching (env: ``REPRO_CACHE_DIR``).
    timeout:
        Default per-point solve timeout in seconds; ``None`` disables.
    retries:
        Default per-point retry budget.
    backend:
        Default sweep execution backend -- ``"auto"``, ``"batch"``,
        ``"process"``, or ``"serial"`` (env: ``REPRO_SWEEP_BACKEND``).
    kernel:
        Default solver kernel -- ``"auto"``, ``"numpy"`` or ``"numba"``;
        ``None`` clears the default (env: ``REPRO_SOLVE_KERNEL``).
        Kernels are bitwise-interchangeable.
    scenario:
        Default workload/topology scenario -- any name in
        :func:`scenarios` (``"torus"``, ``"worksteal"``, ``"hier"``);
        ``None`` clears the default (env: ``REPRO_SCENARIO``).  Prebuilt
        params always identify their own family regardless.
    trace:
        Tracing destination: a JSONL path, ``True`` (in-memory), or
        ``False``/``None`` to disable (env: ``REPRO_TRACE``).
    tracer:
        A prebuilt :class:`repro.obs.Tracer` to install directly
        (overrides ``trace``).
    fault_plan:
        Fault-injection plan -- a dict, inline JSON, a JSON file path, or
        ``None`` to disable (env: ``REPRO_FAULT_PLAN``).

    Returns the previous values of every setting passed, so
    ``repro.configure(**prev)`` restores them:

    >>> import repro
    >>> prev = repro.configure(jobs=4)
    >>> _ = repro.configure(**prev)
    """
    from .obs import trace as _obs_trace
    from .resilience import faults as _faults
    from .runner.config import _configure as _runner_configure

    previous: dict[str, object] = {}
    runner_settings = {
        name: value
        for name, value in (
            ("jobs", jobs),
            ("cache_dir", cache_dir),
            ("timeout", timeout),
            ("retries", retries),
            ("backend", backend),
        )
        if value is not _UNSET
    }
    if runner_settings:
        previous.update(_runner_configure(**runner_settings))
    if kernel is not _UNSET:
        from .queueing.kernels import set_default_kernel

        previous["kernel"] = set_default_kernel(kernel)
    if scenario is not _UNSET:
        from .scenarios import set_default_scenario

        previous["scenario"] = set_default_scenario(scenario)
    if trace is not _UNSET or tracer is not _UNSET:
        prev = _obs_trace.configure(
            trace=None if trace is _UNSET else trace,
            tracer=None if tracer is _UNSET else tracer,
        )
        previous["tracer"] = prev["tracer"]
    if fault_plan is not _UNSET:
        previous.update(_faults.configure(fault_plan=fault_plan))
    return previous
