"""repro -- reproduction of Nemawarkar & Gao, "Latency Tolerance: A Metric for
Performance Analysis of Multithreaded Architectures" (IPPS 1997).

Quick start (the facade -- see ``docs/API.md``)::

    import repro

    perf = repro.solve(num_threads=8, p_remote=0.2)
    print(perf.processor_utilization, perf.s_obs)
    print(float(repro.tolerance_index(num_threads=8, p_remote=0.2)))

    repro.configure(cache_dir="~/.cache/mms", jobs=4)
    records = repro.sweep({"num_threads": [1, 2, 4, 8, 16]})

Packages
--------
``repro.topology``    2-D torus, routing, distance profiles
``repro.workload``    access patterns, visit ratios, thread partitioning
``repro.queueing``    closed queueing networks and MVA solvers
``repro.core``        the MMS model, tolerance index, bottleneck laws
``repro.simulation``  discrete-event simulator (validation substrate)
``repro.spn``         stochastic timed Petri nets (the paper's validation)
``repro.analysis``    experiment harness regenerating every figure/table
``repro.runner``      managed sweeps: parallel workers + content-addressed cache
``repro.serve``       coalescing solve service (``repro-mms serve``)
``repro.client``      retrying HTTP client for the solve service
"""

from .api import (
    ServiceConfig,
    SolveService,
    configure,
    scenarios,
    simulate,
    solve,
    solve_points,
    sweep,
    tolerance_index,
)
from .core import (
    MMSModel,
    MMSPerformance,
    ToleranceResult,
    ToleranceZone,
    analyze,
    classify,
    critical_p_remote,
    lambda_net_saturation,
    memory_tolerance,
    network_tolerance,
    threads_for_tolerance,
    tolerance_report,
    zone_boundary,
)
from .params import Architecture, MMSParams, Workload, paper_defaults

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # parameters
    "Architecture",
    "Workload",
    "MMSParams",
    "paper_defaults",
    # the facade (docs/API.md)
    "solve",
    "solve_points",
    "sweep",
    "simulate",
    "tolerance_index",
    "configure",
    "scenarios",
    "SolveService",
    "ServiceConfig",
    # model + measures
    "MMSModel",
    "MMSPerformance",
    # tolerance metric
    "ToleranceResult",
    "ToleranceZone",
    "classify",
    "network_tolerance",
    "memory_tolerance",
    "tolerance_report",
    # bottleneck laws
    "analyze",
    "lambda_net_saturation",
    "critical_p_remote",
    "zone_boundary",
    "threads_for_tolerance",
]
