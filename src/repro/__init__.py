"""repro -- reproduction of Nemawarkar & Gao, "Latency Tolerance: A Metric for
Performance Analysis of Multithreaded Architectures" (IPPS 1997).

Quick start::

    from repro import paper_defaults, solve, network_tolerance

    params = paper_defaults(num_threads=8, p_remote=0.2)
    perf = solve(params)
    print(perf.processor_utilization, perf.s_obs)
    print(float(network_tolerance(params)))

Packages
--------
``repro.topology``    2-D torus, routing, distance profiles
``repro.workload``    access patterns, visit ratios, thread partitioning
``repro.queueing``    closed queueing networks and MVA solvers
``repro.core``        the MMS model, tolerance index, bottleneck laws
``repro.simulation``  discrete-event simulator (validation substrate)
``repro.spn``         stochastic timed Petri nets (the paper's validation)
``repro.analysis``    experiment harness regenerating every figure/table
``repro.runner``      managed sweeps: parallel workers + content-addressed cache
"""

from .core import (
    MMSModel,
    MMSPerformance,
    ToleranceResult,
    ToleranceZone,
    analyze,
    classify,
    critical_p_remote,
    lambda_net_saturation,
    memory_tolerance,
    network_tolerance,
    solve,
    threads_for_tolerance,
    tolerance_report,
    zone_boundary,
)
from .params import Architecture, MMSParams, Workload, paper_defaults

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Architecture",
    "Workload",
    "MMSParams",
    "paper_defaults",
    "MMSModel",
    "MMSPerformance",
    "solve",
    "ToleranceResult",
    "ToleranceZone",
    "classify",
    "network_tolerance",
    "memory_tolerance",
    "tolerance_report",
    "analyze",
    "lambda_net_saturation",
    "critical_p_remote",
    "zone_boundary",
    "threads_for_tolerance",
]
