"""Seeded, deterministic fault injection for the experiment runner.

Every recoverable degradation path in the stack -- worker death, hung
solves, solver exceptions, NaN escapes, cache corruption, trace-sink I/O
errors -- has a **named fault site** where the code asks
:func:`fault_point` whether to misbehave.  With no plan configured (the
default) that call is one global read returning ``None``; with a plan, each
site fires on a per-site probability or a fire-on-Nth-call schedule, both
driven by a seeded RNG so a chaos run is exactly reproducible.

Activate a plan with the ``REPRO_FAULT_PLAN`` environment variable (inline
JSON or a path to a JSON file -- the env route is how process-pool workers
pick the plan up) or programmatically::

    from repro import resilience

    prev = resilience.configure(fault_plan={
        "seed": 7,
        "sites": {
            "worker.crash": {"on_nth": 2},
            "solve.raise": {"p": 0.25, "max_fires": 1},
            "worker.hang": {"on_nth": [1, 5], "sleep_s": 30},
        },
    })
    ...chaos run...
    resilience.configure(**prev)

Call counters and RNG streams are per process: a forked pool worker
inherits the parent's injector state at fork time and counts its own calls
from there.  The ``worker.*`` sites additionally only fire inside pool
workers (the executor marks pooled payloads), so a serial fallback in the
parent never SIGKILLs the parent process.

This module is stdlib-only at import time (the metrics registry is imported
lazily on the first fire) so any layer can hook a fault site without
creating an import cycle.
"""

from __future__ import annotations

import json
import os
import random
import warnings
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "FAULT_SITES",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "fault_point",
    "configure",
    "get_injector",
    "garble",
]

#: every named fault site the stack exposes, and where it is hooked
FAULT_SITES = (
    "worker.crash",  # runner/executor.py: pool worker SIGKILLs itself
    "worker.hang",  # runner/executor.py: pool worker sleeps past the timeout
    "solve.delay",  # runner/executor.py: slow a solve down (chaos pacing)
    "solve.raise",  # queueing/mva_batch.py: batched kernel raises
    "solve.nan",  # queueing/mva_batch.py: poison one point with NaN
    "store.corrupt_record",  # runner/store.py: garble the appended record
    "store.truncate",  # runner/store.py: write half a record (crash mid-append)
    "journal.corrupt_record",  # resilience/journal.py: garble a journal line
    "sink.io_error",  # obs/sink.py: the trace sink's write raises OSError
)


class InjectedFault(RuntimeError):
    """Raised by the ``solve.raise`` fault site (and nothing else)."""


def garble(text: str) -> str:
    """Corrupt a record line in place: same length, broken content.

    Overwrites a run of bytes in the middle with ``#`` so the line still
    terminates where it did (later records keep their byte offsets) but no
    longer parses/verifies.
    """
    mid = len(text) // 2
    width = min(8, max(1, len(text) - mid))
    return text[:mid] + "#" * width + text[mid + width:]


@dataclass(frozen=True)
class FaultSpec:
    """How one site misbehaves: a probability or an Nth-call schedule."""

    site: str
    #: per-call fire probability (seeded; mutually exclusive with on_nth)
    p: float = 0.0
    #: fire on exactly these 1-based call numbers
    on_nth: tuple[int, ...] = ()
    #: stop firing after this many fires (None = unbounded)
    max_fires: int | None = None
    #: site-specific knobs (``sleep_s`` for hang/delay, ``index`` for nan)
    args: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known sites: {FAULT_SITES}"
            )
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"{self.site}: p must be in [0, 1], got {self.p}")
        if self.p and self.on_nth:
            raise ValueError(
                f"{self.site}: give a probability or an on_nth schedule, not both"
            )
        if not self.p and not self.on_nth:
            raise ValueError(
                f"{self.site}: a spec needs p > 0 or an on_nth schedule"
            )
        if any((not isinstance(n, int)) or n < 1 for n in self.on_nth):
            raise ValueError(
                f"{self.site}: on_nth entries must be call numbers >= 1, "
                f"got {self.on_nth}"
            )
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError(
                f"{self.site}: max_fires must be >= 1, got {self.max_fires}"
            )

    @classmethod
    def from_dict(cls, site: str, data: Mapping[str, object]) -> "FaultSpec":
        """Build from a plan-JSON site entry; unknown keys become args."""
        body = dict(data)
        p = float(body.pop("p", 0.0))
        on_nth = body.pop("on_nth", ())
        if isinstance(on_nth, int):
            on_nth = (on_nth,)
        max_fires = body.pop("max_fires", None)
        return cls(
            site=site,
            p=p,
            on_nth=tuple(on_nth),
            max_fires=max_fires,
            args=body,
        )

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = dict(self.args)
        if self.p:
            out["p"] = self.p
        if self.on_nth:
            out["on_nth"] = list(self.on_nth)
        if self.max_fires is not None:
            out["max_fires"] = self.max_fires
        return out


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus one :class:`FaultSpec` per targeted site."""

    seed: int = 0
    sites: Mapping[str, FaultSpec] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        sites = {
            site: FaultSpec.from_dict(site, spec)
            for site, spec in dict(data.get("sites", {})).items()
        }
        return cls(seed=int(data.get("seed", 0)), sites=sites)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Inline JSON, or a path to a JSON file (the env-var forms)."""
        text = text.strip()
        if not text.lstrip().startswith("{"):
            with open(text, encoding="utf-8") as fh:
                text = fh.read()
        return cls.from_dict(json.loads(text))

    def to_dict(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "sites": {site: spec.to_dict() for site, spec in self.sites.items()},
        }


class FaultInjector:
    """Evaluates a plan: per-site call counters, fire counts, RNG streams."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.calls: dict[str, int] = {}
        self.fires: dict[str, int] = {}
        self._rngs = {
            site: random.Random(f"{plan.seed}:{site}") for site in plan.sites
        }

    def should_fire(self, site: str) -> FaultSpec | None:
        """The site's spec if this call fires, else ``None``.

        Only calls to *planned* sites advance that site's counter, so adding
        an unrelated site to a plan never shifts another site's schedule.
        """
        spec = self.plan.sites.get(site)
        if spec is None:
            return None
        n = self.calls.get(site, 0) + 1
        self.calls[site] = n
        if spec.max_fires is not None and self.fires.get(site, 0) >= spec.max_fires:
            return None
        if spec.on_nth:
            fire = n in spec.on_nth
        else:
            fire = self._rngs[site].random() < spec.p
        if not fire:
            return None
        self.fires[site] = self.fires.get(site, 0) + 1
        from ..obs.metrics import registry  # lazy: avoid import cycles

        registry().counter(f"fault.{site}.fired").inc()
        return spec


# ------------------------------------------------------------------ module API
#: the active injector; ``None`` is the no-op fast path
_injector: FaultInjector | None = None


def _coerce_plan(value: object) -> FaultPlan | None:
    if value is None or value is False:
        return None
    if isinstance(value, FaultPlan):
        return value
    if isinstance(value, FaultInjector):
        return value.plan
    if isinstance(value, Mapping):
        return FaultPlan.from_dict(value)
    if isinstance(value, (str, os.PathLike)):
        return FaultPlan.parse(str(value))
    raise TypeError(f"cannot build a FaultPlan from {type(value).__name__}")


def configure(fault_plan: object = None) -> dict[str, object]:
    """Install (or remove) the process-global fault plan; returns the
    previous setting for restore-style use.

    ``fault_plan`` may be a :class:`FaultPlan`, a plan dict, inline JSON, a
    JSON file path, or ``None``/``False`` to disable injection.
    """
    global _injector
    previous: dict[str, object] = {
        "fault_plan": _injector.plan if _injector is not None else None
    }
    plan = _coerce_plan(fault_plan)
    _injector = FaultInjector(plan) if plan is not None else None
    return previous


def get_injector() -> FaultInjector | None:
    """The active injector (``None`` when fault injection is off)."""
    return _injector


def fault_point(site: str) -> FaultSpec | None:
    """Ask whether the named site should misbehave on this call.

    The disabled fast path is one global read -- the same discipline as the
    tracing no-op, so hooks are free to live on per-point hot paths.
    """
    if _injector is None:
        return None
    return _injector.should_fire(site)


def _injector_from_env() -> FaultInjector | None:
    value = os.environ.get("REPRO_FAULT_PLAN", "").strip()
    if not value:
        return None
    try:
        return FaultInjector(FaultPlan.parse(value))
    except (OSError, ValueError, TypeError) as exc:
        warnings.warn(
            f"ignoring malformed REPRO_FAULT_PLAN ({exc}); "
            "fault injection disabled",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


# honour REPRO_FAULT_PLAN at import so `repro-mms` and pool workers pick it up
_injector = _injector_from_env()
