"""Durable sweep progress: an append-only, checksummed JSONL journal.

One journal is one sweep's completion log, written next to the manifest::

    {"kind": "journal", "schema": "repro-journal/1", "signature": ..., ...}
    {"kind": "point", "key": ..., "record": {...}, "sha256": ...}
    ...

Each ``point`` line carries the **full result record** (the same
``{"method", "params", "perf", "elapsed"}`` shape the result store
persists) plus a SHA-256 over its canonical encoding, and every append is
flushed as one complete line.  A sweep killed between flushes therefore
loses at most the in-flight point: on ``--resume`` the journal's verified
records are replayed as already-complete, corrupt or truncated lines are
dropped (and re-solved), and the resumed run's records come out bitwise
identical to an uninterrupted run, because journal replay round-trips
results through exactly the JSON form a cache hit does.

The header pins a **sweep signature** -- a digest of the sorted
content-addressed point keys plus the solver version -- so a journal can
never silently resume a *different* sweep: a mismatch raises
:class:`JournalError` instead of mixing results.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Mapping

from .faults import fault_point, garble
from .integrity import canonical_json, record_digest

__all__ = ["JOURNAL_SCHEMA", "JournalError", "SweepJournal", "sweep_signature"]

JOURNAL_SCHEMA = "repro-journal/1"


class JournalError(ValueError):
    """A journal file cannot serve the requested resume."""


def sweep_signature(keys: Iterable[str], solver_version: str) -> str:
    """Content signature of one sweep: its sorted unique keys + solver."""
    return record_digest(
        {"solver_version": solver_version, "keys": sorted(keys)}
    )


class SweepJournal:
    """Append-only completion log for one sweep (create or resume)."""

    def __init__(self, path: str | os.PathLike, signature: str):
        self.path = Path(path)
        self.signature = signature
        #: keys already durably journaled (replayed + appended this run)
        self._keys: set[str] = set()
        #: lines discarded during resume (corrupt, truncated, or unverifiable)
        self.dropped = 0
        self._fh = None

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def create(
        cls, path: str | os.PathLike, signature: str, total: int
    ) -> "SweepJournal":
        """Start a fresh journal, truncating any previous file at *path*."""
        journal = cls(path, signature)
        if journal.path.parent != Path("."):
            journal.path.parent.mkdir(parents=True, exist_ok=True)
        journal._fh = open(journal.path, "w", encoding="utf-8", buffering=1)
        header = {
            "kind": "journal",
            "schema": JOURNAL_SCHEMA,
            "signature": signature,
            "total": int(total),
        }
        journal._fh.write(canonical_json(header) + "\n")
        journal._fh.flush()
        return journal

    @classmethod
    def resume(
        cls, path: str | os.PathLike, signature: str, total: int
    ) -> tuple["SweepJournal", dict[str, dict[str, object]]]:
        """Open an existing journal and return its verified records.

        Returns ``(journal, replay)`` where ``replay`` maps completed keys
        to their result records.  A missing file degrades to
        :meth:`create` (nothing to replay); a header for a *different*
        sweep or schema raises :class:`JournalError`.
        """
        journal = cls(path, signature)
        if not journal.path.exists():
            return cls.create(path, signature, total), {}
        replay: dict[str, dict[str, object]] = {}
        with open(journal.path, "r", encoding="utf-8") as fh:
            header_line = fh.readline()
            try:
                header = json.loads(header_line)
            except ValueError:
                raise JournalError(
                    f"journal {journal.path} has a corrupt header; "
                    "delete it to start over"
                ) from None
            if header.get("schema") != JOURNAL_SCHEMA:
                raise JournalError(
                    f"journal {journal.path} has schema "
                    f"{header.get('schema')!r}, expected {JOURNAL_SCHEMA!r}"
                )
            if header.get("signature") != signature:
                raise JournalError(
                    f"journal {journal.path} belongs to a different sweep "
                    f"(signature {str(header.get('signature'))[:12]}... != "
                    f"{signature[:12]}...); same axes, point parameters and "
                    "solver version are required to resume"
                )
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    journal.dropped += 1  # truncated tail / garbled line
                    continue
                sha = entry.pop("sha256", None)
                if (
                    sha != record_digest(entry)
                    or entry.get("kind") != "point"
                    or not isinstance(entry.get("record"), dict)
                ):
                    journal.dropped += 1
                    continue
                replay[str(entry["key"])] = entry["record"]
        journal._keys = set(replay)
        # A run killed mid-append can leave a torn final line with no
        # trailing newline.  Terminate it before reopening for append --
        # otherwise the first record written after resume would be
        # concatenated onto the partial line, corrupting both and losing
        # more than the one in-flight point this journal guarantees.
        with open(journal.path, "r+b") as tail:
            tail.seek(0, os.SEEK_END)
            if tail.tell():
                tail.seek(-1, os.SEEK_END)
                if tail.read(1) != b"\n":
                    tail.write(b"\n")
        journal._fh = open(journal.path, "a", encoding="utf-8", buffering=1)
        return journal, replay

    # ------------------------------------------------------------------- ops
    def append(self, key: str, record: Mapping[str, object]) -> None:
        """Durably mark one point complete (idempotent per key)."""
        if self._fh is None or key in self._keys:
            return
        entry = {"kind": "point", "key": key, "record": dict(record)}
        line = canonical_json({**entry, "sha256": record_digest(entry)})
        if fault_point("journal.corrupt_record") is not None:
            line = garble(line)
        self._fh.write(line + "\n")
        self._fh.flush()
        self._keys.add(key)

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
