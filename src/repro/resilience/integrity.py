"""Record integrity primitives shared by the store, journal and executor.

Kept free of intra-package imports (stdlib only) so every layer -- the
queueing kernels, the observability sink, the runner -- can depend on this
module without import cycles.  The canonical encoding here matches
:func:`repro.runner.spec.canonical_json` byte for byte: sorted keys, no
whitespace, NaN/Inf rejected.  Checksums are computed over that encoding,
so a digest written by one process verifies in any other.
"""

from __future__ import annotations

import hashlib
import json
import math

__all__ = ["canonical_json", "record_digest", "finite_measures"]


def canonical_json(obj: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace, NaN/Inf rejected."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def record_digest(obj: object) -> str:
    """SHA-256 hex digest of an object's canonical JSON encoding.

    Used as the per-record checksum in the result store's JSONL and the
    sweep journal: the digest is computed over the record *without* its
    ``sha256`` field, then stored alongside it.
    """
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def finite_measures(obj: object) -> bool:
    """True when every number reachable in *obj* is finite.

    Guards the result pipeline against NaN/Inf escaping a solver (the
    canonical encodings reject non-finite floats, so an unguarded poisoned
    result would crash the store write instead of being retried).
    """
    if isinstance(obj, bool):
        return True
    if isinstance(obj, (int, float)):
        return math.isfinite(obj)
    if isinstance(obj, dict):
        return all(finite_measures(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return all(finite_measures(v) for v in obj)
    return True
