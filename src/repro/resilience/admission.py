"""Admission control: token buckets and deadline-aware load shedding.

The serving layer's overload story (see ``docs/SERVING.md``) follows the
open-arrival warning from Hill's M/M/1 note: past saturation an open
queue grows without bound, so arrivals beyond capacity must be *shed at
the door*, not queued to die.  Two mechanisms, both pure and
clock-injectable so they can be property-tested without sleeping:

* :class:`TokenBucket` -- the classic leaky-bucket dual.  A bucket with
  ``rate`` tokens/second and ``burst`` capacity admits at most
  ``burst + rate * W`` requests in *any* window of length ``W`` (the
  hypothesis suite pins exactly that invariant).  Refusals come back as
  a ``retry_after_s`` hint instead of a bare boolean.
* :class:`AdmissionController` -- per-client buckets plus CoDel-style
  deadline shedding, built from two complementary signals:

  - the **wait estimate** for an arrival behind ``depth`` queued
    requests is ``depth * service_ewma`` where the EWMA tracks observed
    per-point solve time.  It is a *model*: cheap, available at arrival
    time, but blind to dispatch and contention overhead.  An arrival
    whose deadline cannot survive the estimate is refused immediately
    (it would only expire in the queue and waste a slot).
  - the **drop latch** follows CoDel proper and keys on reality instead:
    completed requests' raw sojourns sustained above ``target_wait_s``
    for a full interval flip the controller into a latched ``drop``
    state -- also what ``/healthz`` reports as ``overloaded`` -- and the
    latch only releases after sojourns stay below target for a full
    interval.  Arrival-time estimates flicker with scheduler noise and
    completions keep flowing even while arrivals are shed, so the latch
    neither fails to engage under a uniformly late queue nor goes stale
    while shedding.

  While dropping, arrivals are shed with 503 + ``Retry-After`` when the
  estimate exceeds target (bulk shedding, capping the queue at roughly
  ``target / service_ewma`` deep) and *additionally* on CoDel's paced
  schedule (``interval / sqrt(drops)``) -- the paced floor keeps the
  controller live when the solve-time model underestimates real waits
  so badly that the estimate never crosses target.

This module deliberately has **no** dependencies on the obs registry or
the service; callers own the counters (``serve.rate_limited`` /
``serve.shed``) so the policy itself stays a pure function of its clock.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
    "HEALTH_STATES",
]

#: the three health states ``/healthz`` exposes for load balancers.
HEALTH_STATES = ("ok", "degraded", "overloaded")


class TokenBucket:
    """Thread-safe token bucket: ``rate`` tokens/s, ``burst`` capacity.

    Starts full.  :meth:`try_acquire` either admits (returns ``0.0``) or
    refuses with the number of seconds until a token will be available.
    The clock is injectable (monotonic seconds) so tests never sleep.
    """

    __slots__ = ("rate", "burst", "_tokens", "_t_last", "_clock", "_lock")

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock=time.monotonic,
    ) -> None:
        if rate <= 0.0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._t_last = float(clock())
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._t_last)
        self._t_last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0, now: float | None = None) -> float:
        """Admit (``0.0``) or refuse (seconds until enough tokens exist)."""
        with self._lock:
            t = float(self._clock() if now is None else now)
            self._refill(t)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self.rate

    def available(self, now: float | None = None) -> float:
        """Current token count (refilled to ``now``); for introspection."""
        with self._lock:
            self._refill(float(self._clock() if now is None else now))
            return self._tokens


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    #: ``ok`` | ``rate_limited`` | ``shed`` (deadline cannot survive queue)
    reason: str
    #: caller-facing backoff hint; ``0.0`` when admitted
    retry_after_s: float
    #: the queue-wait estimate the decision was based on
    estimated_wait_s: float

    OK = "ok"
    RATE_LIMITED = "rate_limited"
    SHED = "shed"


class AdmissionController:
    """Per-client rate limiting + deadline-aware shedding + health state.

    ``rate_limit``/``rate_burst`` of ``0`` disable the bucket layer;
    ``target_wait_s`` of ``0`` disables shedding (the controller then
    admits everything and always reports ``ok``).
    """

    def __init__(
        self,
        *,
        rate_limit: float = 0.0,
        rate_burst: float = 0.0,
        target_wait_s: float = 0.0,
        codel_interval_s: float = 0.5,
        ewma_alpha: float = 0.2,
        initial_service_s: float = 2e-3,
        max_clients: int = 1024,
        clock=time.monotonic,
    ) -> None:
        if rate_limit < 0.0 or rate_burst < 0.0:
            raise ValueError("rate_limit/rate_burst must be >= 0")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.rate_limit = float(rate_limit)
        self.rate_burst = float(rate_burst) if rate_burst else max(1.0, rate_limit)
        self.target_wait_s = float(target_wait_s)
        self.codel_interval_s = float(codel_interval_s)
        self.ewma_alpha = float(ewma_alpha)
        self.max_clients = int(max_clients)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._service_ewma_s = float(initial_service_s)
        #: when completed sojourns first exceeded target (None = below)
        self._above_since: float | None = None
        #: while dropping: when sojourns last fell back below target
        self._below_since: float | None = None
        self._dropping = False
        #: CoDel pacing while dropping: drops so far + next scheduled drop
        self._drop_count = 0
        self._drop_next = 0.0
        self._last_shed_t = float("-inf")
        self._sheds = 0
        self._rate_limited = 0

    # -- service-time feedback ------------------------------------------

    def observe_service_time(self, seconds: float) -> None:
        """Feed one observed per-point service time into the EWMA."""
        if seconds <= 0.0:
            return
        with self._lock:
            a = self.ewma_alpha
            self._service_ewma_s += a * (seconds - self._service_ewma_s)

    def observe_sojourn(self, seconds: float, now: float | None = None) -> None:
        """Feed one completed request's queue sojourn (enqueue -> answer).

        This is the CoDel drop-latch signal.  CoDel proper keys on the
        delay experienced by *departing* work, not on an arrival-time
        estimate: instantaneous queue depth flickers with scheduler
        noise, so an estimate-based latch resets its "sustained
        overload" clock on every dip and can fail to engage under a
        queue whose every completion is late.  Completions keep flowing
        even while arrivals are being shed, so the signal can never go
        stale and the latch releases itself once observed waits stay
        below target for a full interval.
        """
        if seconds < 0.0 or self.target_wait_s <= 0.0:
            return
        t = float(self._clock() if now is None else now)
        with self._lock:
            if seconds > self.target_wait_s:
                self._below_since = None
                if self._above_since is None:
                    self._above_since = t
                elif t - self._above_since >= self.codel_interval_s:
                    if not self._dropping:
                        self._dropping = True
                        self._drop_count = 0
                        self._drop_next = t
            else:
                self._above_since = None
                if self._dropping:
                    if self._below_since is None:
                        self._below_since = t
                    elif t - self._below_since >= self.codel_interval_s:
                        self._dropping = False
                        self._below_since = None

    def _estimate_locked(self, queue_depth: int) -> float:
        return max(0, queue_depth) * self._service_ewma_s

    def estimated_wait_s(self, queue_depth: int) -> float:
        """Expected queue sojourn for an arrival behind ``queue_depth``."""
        with self._lock:
            return self._estimate_locked(queue_depth)

    # -- the admission decision -----------------------------------------

    def _bucket_for(self, client_id: str) -> TokenBucket:
        bucket = self._buckets.get(client_id)
        if bucket is None:
            if len(self._buckets) >= self.max_clients:
                # drop the stalest entry; dict preserves insertion order
                self._buckets.pop(next(iter(self._buckets)))
            bucket = TokenBucket(
                self.rate_limit, self.rate_burst, clock=self._clock
            )
            self._buckets[client_id] = bucket
        return bucket

    def check(
        self,
        client_id: str = "",
        deadline_s: float | None = None,
        queue_depth: int = 0,
        now: float | None = None,
    ) -> AdmissionDecision:
        """Decide one arrival: rate limit first, then deadline shedding.

        ``deadline_s`` is the *remaining* budget the caller has (not an
        absolute timestamp).  Refusals carry a positive ``retry_after_s``.
        """
        t = float(self._clock() if now is None else now)
        with self._lock:
            est = self._estimate_locked(queue_depth)
            # drop-state transitions are driven by observe_sojourn (the
            # delay completing requests actually experienced, CoDel's
            # own signal); check() only *applies* the state to arrivals
            if self.rate_limit > 0.0:
                wait = self._bucket_for(client_id).try_acquire(now=t)
                if wait > 0.0:
                    self._rate_limited += 1
                    return AdmissionDecision(
                        False, AdmissionDecision.RATE_LIMITED, wait, est
                    )
            if self.target_wait_s > 0.0:
                budget = deadline_s if deadline_s is not None else None
                doomed = budget is not None and est > budget
                if not doomed and self._dropping:
                    # in drop state: bulk-shed while the estimate is past
                    # target (queueing more only grows the delay CoDel is
                    # capping), and shed on the paced CoDel schedule even
                    # when the model disagrees with the observed sojourns
                    # that latched the state
                    doomed = est > self.target_wait_s or t >= self._drop_next
                if doomed:
                    if self._dropping:
                        self._drop_count += 1
                        self._drop_next = t + self.codel_interval_s / math.sqrt(
                            self._drop_count
                        )
                    floor = budget if budget is not None else self.target_wait_s
                    retry = max(0.05, est - floor)
                    self._sheds += 1
                    self._last_shed_t = t
                    return AdmissionDecision(
                        False, AdmissionDecision.SHED, retry, est
                    )
            return AdmissionDecision(True, AdmissionDecision.OK, 0.0, est)

    # -- health ----------------------------------------------------------

    def health(self, queue_depth: int = 0, now: float | None = None) -> str:
        """``ok`` / ``degraded`` / ``overloaded`` for ``/healthz``."""
        t = float(self._clock() if now is None else now)
        with self._lock:
            if self.target_wait_s <= 0.0:
                return "ok"
            est = self._estimate_locked(queue_depth)
            recently_shed = t - self._last_shed_t < self.codel_interval_s
            if self._dropping or recently_shed:
                return "overloaded"
            if est > self.target_wait_s:
                return "degraded"
            return "ok"

    def snapshot(self) -> dict[str, object]:
        """JSON-safe internals for ``/healthz`` bodies and ``stats()``."""
        with self._lock:
            return {
                "service_ewma_s": self._service_ewma_s,
                "drop_count": self._drop_count,
                "dropping": self._dropping,
                "sheds": self._sheds,
                "rate_limited": self._rate_limited,
                "clients": len(self._buckets),
            }
