"""Explicit backend-degradation policy for the sweep runner.

The runner's fallback chain -- batched kernel, process pool, per-point
serial -- used to be a set of ad-hoc flags (``mode == "serial-fallback"``,
a silently-swallowed batch exception).  :class:`DegradationPolicy` makes
every step down the chain an explicit, validated event: the executor calls
:meth:`DegradationPolicy.degrade` with where it came from, where it landed,
why, and how many points were affected, and the policy

* records a structured :class:`Degradation` entry (surfaced as
  ``degradations[]`` in the :class:`~repro.runner.manifest.RunManifest`),
* increments a ``degrade.<from>_to_<to>`` metrics counter, and
* emits a ``sweep.degrade`` trace span when tracing is enabled,

so a run that limped home serial is distinguishable -- in the manifest, the
metrics delta, and the trace -- from one that ran its requested backend.
Degradations only ever move *down* the chain (a run never silently
re-escalates), which :meth:`degrade` validates.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["Degradation", "DegradationPolicy", "DEGRADATION_CHAIN"]

#: the only legal direction of travel: earlier entries degrade to later ones.
#: ``shm`` is the pooled shared-memory group handoff of the process backend;
#: a group whose worker dies falls back to the in-parent batched kernel.
DEGRADATION_CHAIN = ("shm", "batch", "process", "serial")


@dataclass(frozen=True)
class Degradation:
    """One recorded step down the execution chain."""

    from_mode: str
    to_mode: str
    #: human-readable cause (exception text, "broken process pool", ...)
    reason: str
    #: points re-executed on the degraded path
    points: int

    def to_dict(self) -> dict[str, object]:
        return asdict(self)


class DegradationPolicy:
    """Collects one run's degradations and emits their telemetry."""

    chain = DEGRADATION_CHAIN

    def __init__(self) -> None:
        self.entries: list[Degradation] = []

    def degrade(
        self, from_mode: str, to_mode: str, reason: str, points: int
    ) -> Degradation:
        """Record one fallback step; raises on an illegal transition."""
        if from_mode not in self.chain or to_mode not in self.chain:
            raise ValueError(
                f"unknown degradation {from_mode!r} -> {to_mode!r}; "
                f"chain is {'/'.join(self.chain)}"
            )
        if self.chain.index(to_mode) <= self.chain.index(from_mode):
            raise ValueError(
                f"degradations only move down the chain "
                f"{' -> '.join(self.chain)}; got {from_mode!r} -> {to_mode!r}"
            )
        entry = Degradation(
            from_mode=from_mode,
            to_mode=to_mode,
            reason=str(reason),
            points=int(points),
        )
        self.entries.append(entry)
        # lazy obs imports: this module must stay importable from any layer
        from ..obs.metrics import registry
        from ..obs.trace import trace_span

        registry().counter(f"degrade.{from_mode}_to_{to_mode}").inc()
        with trace_span(
            "sweep.degrade",
            from_mode=from_mode,
            to_mode=to_mode,
            reason=entry.reason,
            points=entry.points,
        ):
            pass
        return entry

    def to_list(self) -> list[dict[str, object]]:
        """Manifest-ready ``degradations[]`` entries."""
        return [entry.to_dict() for entry in self.entries]

    def __len__(self) -> int:
        return len(self.entries)
