"""Circuit breaker for the backend degradation chain.

PR 4's :class:`~repro.resilience.degrade.DegradationPolicy` makes every
fallback step explicit, but the callers that use it re-*discover* the
failure on every attempt: the serve micro-batcher, for instance, retried
the batched kernel on every flush and re-paid a full batch failure each
time before falling back to scalar solves.  :class:`CircuitBreaker` adds
the missing memory.  It is the textbook three-state machine:

* **closed** -- calls flow; ``failure_threshold`` *consecutive* failures
  trip it open.
* **open** -- calls are refused outright (the caller routes down the
  degradation chain without paying the failure) until ``cooldown_s`` has
  elapsed.
* **half-open** -- after the cooldown exactly one probe call is let
  through at a time; ``probe_successes`` consecutive probe successes
  close the breaker, any probe failure re-opens it and restarts the
  cooldown.

State transitions count ``breaker.<name>.opened`` / ``.closed`` /
``.probes``, and every refused call counts ``breaker.<name>.rejected``,
so a run that spent an hour routed around its batch kernel is visible in
the metrics delta (the PR-4 house rule: no silent failure handling).
The clock is injectable; nothing here sleeps.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CircuitBreaker"]

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing."""

    def __init__(
        self,
        name: str = "default",
        *,
        failure_threshold: int = 5,
        cooldown_s: float = 5.0,
        probe_successes: int = 1,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s <= 0.0:
            raise ValueError(f"cooldown_s must be > 0, got {cooldown_s}")
        if probe_successes < 1:
            raise ValueError(
                f"probe_successes must be >= 1, got {probe_successes}"
            )
        self.name = str(name)
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self.probe_successes = int(probe_successes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = _CLOSED
        self._failures = 0       # consecutive failures while closed
        self._successes = 0      # consecutive probe successes while half-open
        self._opened_t = 0.0
        self._probe_inflight = False
        self._opened_total = 0
        self._closed_total = 0
        self._rejected_total = 0
        self._probes_total = 0

    def _counter(self, event: str):
        # lazy obs import keeps this module importable from any layer
        from ..obs.metrics import registry

        return registry().counter(f"breaker.{self.name}.{event}")

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half_open`` (cooldown-aware)."""
        with self._lock:
            self._maybe_half_open(float(self._clock()))
            return self._state

    def _maybe_half_open(self, now: float) -> None:
        if self._state == _OPEN and now - self._opened_t >= self.cooldown_s:
            self._state = _HALF_OPEN
            self._successes = 0
            self._probe_inflight = False

    def allow(self, now: float | None = None) -> bool:
        """May this call proceed?  Refusals are counted, never raised."""
        t = float(self._clock() if now is None else now)
        with self._lock:
            self._maybe_half_open(t)
            if self._state == _CLOSED:
                return True
            if self._state == _HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                self._probes_total += 1
                probe = True
            else:
                probe = False
            if probe:
                self._counter("probes").inc()
                return True
            self._rejected_total += 1
        self._counter("rejected").inc()
        return False

    def record_success(self, now: float | None = None) -> None:
        with self._lock:
            if self._state == _HALF_OPEN:
                self._probe_inflight = False
                self._successes += 1
                if self._successes >= self.probe_successes:
                    self._state = _CLOSED
                    self._failures = 0
                    self._closed_total += 1
                    closed = True
                else:
                    closed = False
            else:
                self._failures = 0
                closed = False
        if closed:
            self._counter("closed").inc()

    def record_failure(self, now: float | None = None) -> None:
        t = float(self._clock() if now is None else now)
        opened = False
        with self._lock:
            if self._state == _HALF_OPEN:
                # a failed probe re-opens immediately
                self._state = _OPEN
                self._opened_t = t
                self._probe_inflight = False
                self._opened_total += 1
                opened = True
            elif self._state == _CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._state = _OPEN
                    self._opened_t = t
                    self._opened_total += 1
                    opened = True
        if opened:
            self._counter("opened").inc()

    def snapshot(self) -> dict[str, object]:
        """JSON-safe state for ``stats()`` / ``/healthz`` bodies."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "opened": self._opened_total,
                "closed": self._closed_total,
                "rejected": self._rejected_total,
                "probes": self._probes_total,
            }
