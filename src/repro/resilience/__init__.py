"""Resilience: deterministic fault injection and durable-sweep machinery.

Three pieces, all wired through the runner stack (see
``docs/RESILIENCE.md``):

* :mod:`~repro.resilience.faults` -- named fault sites with seeded
  per-site probability / fire-on-Nth-call schedules, activated via
  ``REPRO_FAULT_PLAN`` or :func:`configure`, with a one-global-read no-op
  fast path when disabled;
* :mod:`~repro.resilience.journal` -- the append-only, checksummed sweep
  progress journal behind ``repro-mms sweep --resume``;
* :mod:`~repro.resilience.degrade` -- the explicit
  batch -> process -> serial degradation policy whose structured entries
  land in ``RunManifest.degradations``;

plus :mod:`~repro.resilience.integrity`, the shared canonical-JSON /
SHA-256 / finiteness primitives the result store and journal both verify
records with, and the overload-protection layer:

* :mod:`~repro.resilience.admission` -- token-bucket rate limiting and
  CoDel-style deadline shedding for the solve service;
* :mod:`~repro.resilience.breaker` -- the circuit breaker that lets
  callers route around a persistently failing backend instead of
  re-paying the failure on every attempt.

Quick start::

    from repro import resilience

    prev = resilience.configure(
        fault_plan={"seed": 7, "sites": {"worker.crash": {"on_nth": 2}}}
    )
    ...run a sweep; it must still complete correctly...
    resilience.configure(**prev)
"""

from .admission import (
    HEALTH_STATES,
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from .breaker import CircuitBreaker
from .degrade import DEGRADATION_CHAIN, Degradation, DegradationPolicy
from .faults import (
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    fault_point,
    get_injector,
)
from .faults import configure as _faults_configure
from .integrity import canonical_json, finite_measures, record_digest
from .journal import JOURNAL_SCHEMA, JournalError, SweepJournal, sweep_signature


def configure(fault_plan: object = None) -> dict[str, object]:
    """Deprecated: use :func:`repro.configure(fault_plan=...)`.

    Forwards to :func:`repro.resilience.faults.configure` after a one-time
    ``DeprecationWarning``; same argument, same previous-values return.
    """
    from .._deprecation import warn_once

    warn_once("repro.resilience.configure", "repro.configure")
    return _faults_configure(fault_plan=fault_plan)

__all__ = [
    "FAULT_SITES",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "fault_point",
    "configure",
    "get_injector",
    "canonical_json",
    "record_digest",
    "finite_measures",
    "JOURNAL_SCHEMA",
    "JournalError",
    "SweepJournal",
    "sweep_signature",
    "DEGRADATION_CHAIN",
    "Degradation",
    "DegradationPolicy",
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
    "HEALTH_STATES",
    "CircuitBreaker",
]
