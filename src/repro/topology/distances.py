"""Distance-profile utilities for remote-access pattern analysis.

The paper's key derived quantity is the average remote distance

    d_avg = sum_h  P(h) * h        (h = 1 .. d_max)

for a given distance distribution ``P(h)``.  For the geometric pattern
``P(h) = p_sw^h / a`` with ``a = sum_h p_sw^h``, the paper quotes
``d_avg = 1.733`` for ``p_sw = 0.5`` on a 4x4 torus and the asymptote
``d_avg -> 1/(1 - p_sw)`` for large machines -- both reproduced here
exactly (see tests/topology/test_distances.py).
"""

from __future__ import annotations

import numpy as np

from .torus import Torus2D

__all__ = [
    "geometric_distance_pmf",
    "uniform_distance_pmf",
    "average_distance",
    "geometric_davg_asymptote",
]


def geometric_distance_pmf(torus: Torus2D, p_sw: float) -> np.ndarray:
    """Probability of a remote access targeting distance ``h``, geometric law.

    ``pmf[h] = p_sw**h / a`` for ``h = 1..d_max`` (``pmf[0] = 0``), where
    ``a`` normalizes over the distances that actually exist on the torus.
    A *low* ``p_sw`` means *higher* locality.
    """
    if not 0.0 < p_sw <= 1.0:
        raise ValueError(f"p_sw must be in (0, 1], got {p_sw}")
    dmax = torus.max_distance
    if dmax < 1:
        raise ValueError("torus has no remote nodes (single-node machine)")
    h = np.arange(dmax + 1, dtype=np.float64)
    pmf = p_sw**h
    pmf[0] = 0.0
    # Distances with no nodes (cannot happen on a torus with dmax>=1, but keep
    # the guard for degenerate rectangular shapes).
    pmf[torus.distance_counts == 0] = 0.0
    total = pmf.sum()
    if total <= 0.0:
        raise ValueError("geometric pmf degenerate: no reachable remote distance")
    return pmf / total


def uniform_distance_pmf(torus: Torus2D) -> np.ndarray:
    """Distance pmf induced by a uniform choice among the ``P - 1`` remote
    modules: ``pmf[h] = counts[h] / (P - 1)``.
    """
    counts = torus.distance_counts.astype(np.float64)
    counts[0] = 0.0
    remote = counts.sum()
    if remote <= 0:
        raise ValueError("torus has no remote nodes (single-node machine)")
    return counts / remote


def average_distance(pmf: np.ndarray) -> float:
    """``d_avg`` of a distance pmf (paper's Section 2)."""
    h = np.arange(len(pmf), dtype=np.float64)
    return float(np.dot(h, pmf))


def geometric_davg_asymptote(p_sw: float) -> float:
    """Large-machine limit of the geometric ``d_avg``: ``1 / (1 - p_sw)``.

    Derived from ``sum h p^h / sum p^h`` as ``d_max -> inf``; the paper quotes
    the value 2 for ``p_sw = 0.5`` (Section 7, observation 1).
    """
    if not 0.0 < p_sw < 1.0:
        raise ValueError(f"asymptote defined for 0 < p_sw < 1, got {p_sw}")
    return 1.0 / (1.0 - p_sw)
