"""Dimension-ordered (X-then-Y) minimal routing on the 2-D torus.

The paper's switches route messages hop by hop; a message from PE ``i`` to PE
``j`` enters the network through the *outbound* switch at ``i`` and then
traverses the *inbound* switch of every subsequent node on its path, including
the destination (Section 2, "IN Switch").  The concrete path matters because
the visit ratios ``ei[i, j]`` of the inbound switches are sums over routed
paths.

Dimension-ordered routing is deterministic and minimal, matching the
non-adaptive switches the paper assumes.  On even rings, distance-``k/2`` ties
break toward the positive direction (see :func:`repro.topology.torus.signed_hop`).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .torus import Torus2D, signed_hop

__all__ = ["route", "route_nodes", "path_length", "inbound_transit_counts"]


def route(topology, src: int, dst: int) -> tuple[int, ...]:
    """Full node sequence of the X-then-Y minimal route, endpoints included.

    ``route(t, a, a) == (a,)``; consecutive nodes are neighbors and the
    sequence length is ``distance(src, dst) + 1``.  Works for any topology
    that either exposes a ``route`` method (mesh) or is a :class:`Torus2D`.
    """
    if not isinstance(topology, Torus2D):
        return topology.route(src, dst)
    torus = topology
    torus._check_node(src)
    torus._check_node(dst)
    x, y = torus.coords(src)
    dx, dy = torus.coords(dst)
    path = [src]
    step = signed_hop(x, dx, torus.kx)
    while x != dx:
        x = (x + step) % torus.kx
        path.append(torus.node_at(x, y))
    step = signed_hop(y, dy, torus.ky)
    while y != dy:
        y = (y + step) % torus.ky
        path.append(torus.node_at(x, y))
    return tuple(path)


def route_nodes(topology, src: int, dst: int) -> tuple[int, ...]:
    """Nodes whose *inbound switch* the message traverses: the route minus
    the source (the message leaves ``src`` via its outbound switch instead).

    The destination's inbound switch *is* included -- the message exits the
    network through it (paper, Section 2).
    """
    return route(topology, src, dst)[1:]


def path_length(topology, src: int, dst: int) -> int:
    """Number of hops of the dimension-ordered route (== minimal distance)."""
    return len(route(topology, src, dst)) - 1


@lru_cache(maxsize=64)
def _inbound_counts_cached(kind: type, kx: int, ky: int) -> np.ndarray:
    topology = kind(kx, ky)
    p = topology.num_nodes
    counts = np.zeros((p, p, p), dtype=np.int64)
    for s in range(p):
        for d in range(p):
            if s == d:
                continue
            for n in route_nodes(topology, s, d):
                counts[s, d, n] += 1
    return counts


def inbound_transit_counts(topology) -> np.ndarray:
    """``(P, P, P)`` tensor ``c[s, d, n]``: how many times a message routed
    ``s -> d`` visits the inbound switch of node ``n`` (0 or 1 for minimal
    dimension-ordered routes).

    Cached per topology type and shape; this tensor is the kernel from which
    all inbound switch visit ratios are contracted.
    """
    return _inbound_counts_cached(type(topology), topology.kx, topology.ky)
