"""2-D mesh topology (no wrap-around links).

The paper's Figure-1 caption says "2-dimensional mesh" while the text
describes a torus with wrap-around; we implement both so the ambiguity can
be settled empirically (``bench_ablation_topology``).  A mesh is *not*
vertex transitive -- corner nodes see different distance profiles than
center nodes -- so an SPMD workload on a mesh is still an asymmetric model
and must use the full multi-class solvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

__all__ = ["Mesh2D"]


@dataclass(frozen=True)
class Mesh2D:
    """A ``kx x ky`` mesh: grid links only, no wrap-around."""

    kx: int
    ky: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.ky == -1:
            object.__setattr__(self, "ky", self.kx)
        if self.kx < 1 or self.ky < 1:
            raise ValueError(f"mesh dimensions must be >= 1, got {self.kx}x{self.ky}")

    # ------------------------------------------------------------------ basic
    @property
    def num_nodes(self) -> int:
        return self.kx * self.ky

    def coords(self, node: int) -> tuple[int, int]:
        self._check_node(node)
        return node % self.kx, node // self.kx

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.kx and 0 <= y < self.ky):
            raise ValueError(f"({x}, {y}) outside the {self.kx}x{self.ky} mesh")
        return y * self.kx + x

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")

    # -------------------------------------------------------------- distances
    def distance(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    @cached_property
    def distance_matrix(self) -> np.ndarray:
        x = np.arange(self.num_nodes) % self.kx
        y = np.arange(self.num_nodes) // self.kx
        dx = np.abs(x[:, None] - x[None, :])
        dy = np.abs(y[:, None] - y[None, :])
        return (dx + dy).astype(np.int64)

    @property
    def max_distance(self) -> int:
        """Mesh diameter: corner to opposite corner."""
        return (self.kx - 1) + (self.ky - 1)

    def distance_counts_from(self, src: int) -> np.ndarray:
        """Distance histogram seen by ``src`` (source dependent on a mesh)."""
        return np.bincount(
            self.distance_matrix[src], minlength=self.max_distance + 1
        )

    def nodes_at_distance(self, src: int, h: int) -> np.ndarray:
        self._check_node(src)
        return np.flatnonzero(self.distance_matrix[src] == h)

    # -------------------------------------------------------------- neighbors
    def neighbors(self, node: int) -> tuple[int, ...]:
        x, y = self.coords(node)
        out = []
        for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
            if 0 <= nx < self.kx and 0 <= ny < self.ky:
                out.append(self.node_at(nx, ny))
        return tuple(out)

    # ---------------------------------------------------------------- routing
    def route(self, src: int, dst: int) -> tuple[int, ...]:
        """Dimension-ordered (X then Y) route, endpoints included."""
        self._check_node(src)
        self._check_node(dst)
        x, y = self.coords(src)
        dx, dy = self.coords(dst)
        path = [src]
        step = 1 if dx > x else -1
        while x != dx:
            x += step
            path.append(self.node_at(x, y))
        step = 1 if dy > y else -1
        while y != dy:
            y += step
            path.append(self.node_at(x, y))
        return tuple(path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mesh2D({self.kx}x{self.ky}, P={self.num_nodes})"
