"""2-D torus topology for the multithreaded multiprocessor system (MMS).

The paper's machine is a ``k x k`` bidirectional 2-D torus (Figure 1): each
processing element (PE) sits on a switch with wrap-around links in both
dimensions.  The torus is *vertex transitive* -- every node sees the same
distance profile -- which is what makes the SPMD symmetry arguments in the
paper (and our symmetric AMVA fast path) exact.

Nodes are indexed row-major: node ``i`` has coordinates
``(x, y) = (i % kx, i // kx)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

__all__ = ["Torus2D", "signed_hop", "ring_distance"]


def ring_distance(a: int, b: int, k: int) -> int:
    """Minimal hop count between positions ``a`` and ``b`` on a ``k``-ring."""
    if k <= 0:
        raise ValueError(f"ring size must be positive, got {k}")
    d = abs(a - b) % k
    return min(d, k - d)


def signed_hop(a: int, b: int, k: int) -> int:
    """Signed per-hop step (+1/-1/0) for the minimal path from ``a`` to ``b``.

    Ties (distance exactly ``k/2`` on an even ring) are broken toward the
    positive direction, which keeps routing deterministic -- the convention
    used by dimension-ordered torus routers.
    """
    if a == b:
        return 0
    fwd = (b - a) % k
    bwd = (a - b) % k
    return 1 if fwd <= bwd else -1


@dataclass(frozen=True)
class Torus2D:
    """A ``kx x ky`` bidirectional torus.

    Parameters
    ----------
    kx, ky:
        Nodes per dimension.  The paper always uses a square torus
        (``kx == ky == k``); rectangular tori are supported for generality.
    """

    kx: int
    ky: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.ky == -1:  # square torus shortcut: Torus2D(4) == Torus2D(4, 4)
            object.__setattr__(self, "ky", self.kx)
        if self.kx < 1 or self.ky < 1:
            raise ValueError(f"torus dimensions must be >= 1, got {self.kx}x{self.ky}")

    # ------------------------------------------------------------------ basic
    @property
    def num_nodes(self) -> int:
        """Total number of PEs, ``P = kx * ky``."""
        return self.kx * self.ky

    def coords(self, node: int) -> tuple[int, int]:
        """Row-major ``(x, y)`` coordinates of ``node``."""
        self._check_node(node)
        return node % self.kx, node // self.kx

    def node_at(self, x: int, y: int) -> int:
        """Node index at coordinates ``(x, y)`` (taken modulo the torus)."""
        return (y % self.ky) * self.kx + (x % self.kx)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")

    # -------------------------------------------------------------- distances
    def distance(self, src: int, dst: int) -> int:
        """Minimal hop distance ``h`` between two PEs (the paper's ``h``)."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return ring_distance(sx, dx, self.kx) + ring_distance(sy, dy, self.ky)

    @cached_property
    def distance_matrix(self) -> np.ndarray:
        """``(P, P)`` integer matrix of pairwise hop distances."""
        x = np.arange(self.num_nodes) % self.kx
        y = np.arange(self.num_nodes) // self.kx
        dx = np.abs(x[:, None] - x[None, :]) % self.kx
        dy = np.abs(y[:, None] - y[None, :]) % self.ky
        dx = np.minimum(dx, self.kx - dx)
        dy = np.minimum(dy, self.ky - dy)
        return (dx + dy).astype(np.int64)

    @property
    def max_distance(self) -> int:
        """The paper's ``d_max``: the torus diameter ``floor(kx/2)+floor(ky/2)``."""
        return self.kx // 2 + self.ky // 2

    @cached_property
    def distance_counts(self) -> np.ndarray:
        """``counts[h]`` = number of nodes at distance ``h`` from any node.

        Valid for every node because the torus is vertex transitive;
        ``counts[0] == 1`` (the node itself) and ``counts.sum() == P``.
        """
        row = self.distance_matrix[0]
        return np.bincount(row, minlength=self.max_distance + 1)

    def nodes_at_distance(self, src: int, h: int) -> np.ndarray:
        """All node indices exactly ``h`` hops from ``src`` (sorted)."""
        self._check_node(src)
        return np.flatnonzero(self.distance_matrix[src] == h)

    # -------------------------------------------------------------- neighbors
    def neighbors(self, node: int) -> tuple[int, ...]:
        """The (up to four) distinct single-hop neighbors of ``node``."""
        x, y = self.coords(node)
        cand = (
            self.node_at(x + 1, y),
            self.node_at(x - 1, y),
            self.node_at(x, y + 1),
            self.node_at(x, y - 1),
        )
        out: list[int] = []
        for c in cand:  # degenerate rings (k<=2) can duplicate neighbors
            if c != node and c not in out:
                out.append(c)
        return tuple(out)

    # --------------------------------------------------------------- symmetry
    def translate(self, node: int, by: int) -> int:
        """Image of ``node`` under the torus translation carrying 0 to ``by``.

        Translations are graph automorphisms; they are how a class-0 solution
        is mapped onto every other class in the symmetric AMVA fast path.
        """
        nx, ny = self.coords(node)
        bx, by_ = self.coords(by)
        return self.node_at(nx + bx, ny + by_)

    def translation_table(self) -> np.ndarray:
        """``(P, P)`` table ``T[b, n] = translate(n, b)`` (rows are permutations)."""
        p = self.num_nodes
        table = np.empty((p, p), dtype=np.int64)
        for b in range(p):
            table[b] = [self.translate(n, b) for n in range(p)]
        return table

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Torus2D({self.kx}x{self.ky}, P={self.num_nodes})"
