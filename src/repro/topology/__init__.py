"""Interconnection-network topology substrate: 2-D torus, routing, distances."""

from .distances import (
    average_distance,
    geometric_davg_asymptote,
    geometric_distance_pmf,
    uniform_distance_pmf,
)
from .mesh import Mesh2D
from .routing import inbound_transit_counts, path_length, route, route_nodes
from .torus import Torus2D, ring_distance, signed_hop

__all__ = [
    "Torus2D",
    "Mesh2D",
    "ring_distance",
    "signed_hop",
    "route",
    "route_nodes",
    "path_length",
    "inbound_transit_counts",
    "geometric_distance_pmf",
    "uniform_distance_pmf",
    "average_distance",
    "geometric_davg_asymptote",
]
