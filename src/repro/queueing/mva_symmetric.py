"""Symmetric AMVA fast path for SPMD workloads on vertex-transitive machines.

The paper's workload is SPMD: "the application program exhibits similar
behavior at each PE, and the load is evenly distributed".  On a torus the
customer classes are then images of class 0 under the torus translations, so
the Bard-Schweitzer fixed point lives on a symmetric manifold where the *total*
queue length at a station depends only on the station's *type* (processor /
memory / inbound switch / outbound switch):

    T_{(t, v)} = sum_b Q_{b, (t, v)} = sum_b Q_{0, (t, v - b)} = sum_u Q_{0, (t, u)}

i.e. the total class-0 queue over all stations of type ``t``, independent of
the node ``v``.  This collapses the C x M fixed point to a 1 x M one -- an
O(P) speedup that makes the paper's 100-processor scaling sweeps instant --
while remaining *numerically identical* to the full multi-class
Bard-Schweitzer solution started from a symmetric initial point
(property-tested in tests/queueing/test_symmetric.py).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SymmetricSolution", "solve_symmetric"]


@dataclass(frozen=True)
class SymmetricSolution:
    """Class-0 view of a symmetric multi-class solution.

    ``throughput`` is the per-class throughput ``X``; ``waiting`` and
    ``queue_length`` are class-0's (M,) per-visit residence times and queue
    lengths.  ``total_queue[m]`` is the all-class total at station ``m``
    (uniform within each station type by symmetry).
    """

    throughput: float
    waiting: np.ndarray
    queue_length: np.ndarray
    total_queue: np.ndarray
    iterations: int
    converged: bool

    def residence(self, visits: np.ndarray) -> np.ndarray:
        """Per-cycle residence times ``v_m * W_m`` of class 0."""
        return visits * self.waiting


def solve_symmetric(
    visits: np.ndarray,
    service: np.ndarray,
    station_type: np.ndarray,
    population: int,
    tol: float = 1e-12,
    max_iter: int = 200_000,
    servers: np.ndarray | None = None,
) -> SymmetricSolution:
    """Bard-Schweitzer on the symmetric manifold.

    Parameters
    ----------
    visits:
        ``(M,)`` class-0 visit ratios.
    service:
        ``(M,)`` mean service times (class independent, zero allowed).
    station_type:
        ``(M,)`` integer labels; stations share a label iff the class
        permutation group acts transitively on them (for the MMS: one label
        per subsystem kind).  Total queue lengths are pooled per label.
    population:
        Customers per class (``n_t``).
    servers:
        Optional ``(M,)`` server counts (Seidmann multi-server
        approximation, matching :class:`ClosedNetwork`).
    """
    v = np.asarray(visits, dtype=np.float64)
    s = np.asarray(service, dtype=np.float64)
    types = np.asarray(station_type)
    if v.shape != s.shape or v.shape != types.shape:
        raise ValueError("visits, service and station_type must share a shape")
    if population < 0:
        raise ValueError(f"population must be >= 0, got {population}")
    m = v.shape[0]
    if servers is None:
        extra = np.zeros(m)
    else:
        srv = np.asarray(servers, dtype=np.float64)
        if srv.shape != v.shape:
            raise ValueError("servers must match visits shape")
        if np.any(srv < 1):
            raise ValueError("server counts must be >= 1")
        extra = s * (srv - 1.0) / srv
        s = s / srv
    if population == 0:
        zeros = np.zeros(m)
        return SymmetricSolution(0.0, zeros, zeros.copy(), zeros.copy(), 0, True)

    labels, inverse = np.unique(types, return_inverse=True)
    n_types = len(labels)

    visited = v > 0
    n_visited = max(int(visited.sum()), 1)
    q = np.where(visited, population / n_visited, 0.0)

    x = 0.0
    w = np.zeros(m)
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        # Pool class-0 queues per type: T_t = sum of q over type-t stations.
        pooled = np.bincount(inverse, weights=q, minlength=n_types)
        t_total = pooled[inverse]  # (M,) all-class total at each station
        seen = t_total - q / population  # arriving customer's view (BS)
        w = s * (1.0 + seen) + extra
        denom = float(np.dot(v, w))
        x = population / denom if denom > 0 else 0.0
        q_new = x * v * w
        delta = float(np.max(np.abs(q_new - q), initial=0.0))
        q = q_new
        if delta <= tol:
            converged = True
            break
    pooled = np.bincount(inverse, weights=q, minlength=n_types)
    return SymmetricSolution(
        throughput=x,
        waiting=w,
        queue_length=q,
        total_queue=pooled[inverse],
        iterations=it,
        converged=converged,
    )
