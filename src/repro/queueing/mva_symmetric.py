"""Symmetric AMVA fast path for SPMD workloads on vertex-transitive machines.

The paper's workload is SPMD: "the application program exhibits similar
behavior at each PE, and the load is evenly distributed".  On a torus the
customer classes are then images of class 0 under the torus translations, so
the Bard-Schweitzer fixed point lives on a symmetric manifold where the *total*
queue length at a station depends only on the station's *type* (processor /
memory / inbound switch / outbound switch):

    T_{(t, v)} = sum_b Q_{b, (t, v)} = sum_b Q_{0, (t, v - b)} = sum_u Q_{0, (t, u)}

i.e. the total class-0 queue over all stations of type ``t``, independent of
the node ``v``.  This collapses the C x M fixed point to a 1 x M one -- an
O(P) speedup that makes the paper's 100-processor scaling sweeps instant --
while remaining *numerically identical* to the full multi-class
Bard-Schweitzer solution started from a symmetric initial point
(property-tested in tests/queueing/test_symmetric.py).

The iteration itself lives in
:func:`repro.queueing.mva_batch.solve_symmetric_batch`; this scalar entry
point is the ``B = 1`` case of that kernel, which guarantees that a point
solved alone and the same point solved inside a sweep-sized batch produce
bitwise-identical results (the property the runner's backend-equality tests
pin down).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .solution import SolverTelemetry

__all__ = ["SymmetricSolution", "solve_symmetric"]


@dataclass(frozen=True)
class SymmetricSolution:
    """Class-0 view of a symmetric multi-class solution.

    ``throughput`` is the per-class throughput ``X``; ``waiting`` and
    ``queue_length`` are class-0's (M,) per-visit residence times and queue
    lengths.  ``total_queue[m]`` is the all-class total at station ``m``
    (uniform within each station type by symmetry).  ``residual`` is the
    final max-abs queue-length change; ``telemetry`` carries wall time and,
    for batched solves, the batch-level active-set trajectory.
    """

    throughput: float
    waiting: np.ndarray
    queue_length: np.ndarray
    total_queue: np.ndarray
    iterations: int
    converged: bool
    residual: float = 0.0
    telemetry: SolverTelemetry | None = field(default=None, repr=False, compare=False)

    def residence(self, visits: np.ndarray) -> np.ndarray:
        """Per-cycle residence times ``v_m * W_m`` of class 0."""
        return visits * self.waiting


def solve_symmetric(
    visits: np.ndarray,
    service: np.ndarray,
    station_type: np.ndarray,
    population: int,
    tol: float = 1e-12,
    max_iter: int = 200_000,
    servers: np.ndarray | None = None,
    strict: bool = False,
) -> SymmetricSolution:
    """Bard-Schweitzer on the symmetric manifold (one parameter point).

    Parameters
    ----------
    visits:
        ``(M,)`` class-0 visit ratios.
    service:
        ``(M,)`` mean service times (class independent, zero allowed).
    station_type:
        ``(M,)`` integer labels; stations share a label iff the class
        permutation group acts transitively on them (for the MMS: one label
        per subsystem kind).  Total queue lengths are pooled per label.
    population:
        Customers per class (``n_t``).
    servers:
        Optional ``(M,)`` server counts (Seidmann multi-server
        approximation, matching :class:`ClosedNetwork`).
    strict:
        Raise :class:`~repro.queueing.solution.ConvergenceError` instead of
        warning when ``max_iter`` is exhausted without convergence.
    """
    from .mva_batch import solve_symmetric_batch

    v = np.asarray(visits, dtype=np.float64)
    s = np.asarray(service, dtype=np.float64)
    types = np.asarray(station_type)
    if v.shape != s.shape or v.shape != types.shape:
        raise ValueError("visits, service and station_type must share a shape")
    if population < 0:
        raise ValueError(f"population must be >= 0, got {population}")
    return solve_symmetric_batch(
        v[None, :],
        s[None, :],
        types,
        np.array([population]),
        tol=tol,
        max_iter=max_iter,
        servers=None if servers is None else np.asarray(servers)[None, :],
        strict=strict,
    )[0]
