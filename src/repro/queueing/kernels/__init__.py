"""Solver-kernel registry and selection: ``auto`` / ``numpy`` / ``numba``.

The batched fixed points in :mod:`repro.queueing.mva_batch` run on a
pluggable kernel.  ``"numpy"`` is the masked vectorized reference
(:mod:`.reference`); ``"numba"`` is the compiled per-point loop
(:mod:`.compiled`), contractually **bitwise-equal** to the reference, so
swapping kernels never disturbs cached records, goldens, or the solver
version.  ``"auto"`` picks the compiled kernel when numba is importable
and working, the reference otherwise.

Selection precedence (lowest to highest): the ``REPRO_SOLVE_KERNEL``
environment variable, :func:`repro.configure(kernel=...) <repro.configure>`,
an explicit ``kernel=`` argument at the call site.
"""

from __future__ import annotations

import os

from .soa import (  # noqa: F401 - re-exported
    FixedPointResult,
    MulticlassSoA,
    SymmetricSoA,
    trajectory_from_iterations,
)

__all__ = [
    "KERNELS",
    "KernelUnavailableError",
    "available_kernels",
    "default_kernel",
    "kernel_impl",
    "resolve_kernel",
    "set_default_kernel",
    "validate_kernel_name",
    "FixedPointResult",
    "MulticlassSoA",
    "SymmetricSoA",
    "trajectory_from_iterations",
]

#: recognised kernel names (selection values; "auto" resolves to one of
#: the concrete two)
KERNELS = ("auto", "numpy", "numba")

#: environment override, lowest precedence
_ENV_VAR = "REPRO_SOLVE_KERNEL"

#: process-global default set by ``repro.configure(kernel=...)``;
#: ``None`` defers to the environment, then "auto"
_CONFIG: dict[str, object] = {"kernel": None}


class KernelUnavailableError(ValueError):
    """A concrete kernel was requested that cannot run here (no numba)."""


def validate_kernel_name(kernel: object) -> str:
    """Check a kernel name against the registry; returns it normalized."""
    name = str(kernel)
    if name not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; pick from {'/'.join(KERNELS)}"
        )
    return name


def set_default_kernel(kernel: object | None) -> object:
    """Set the process-global kernel default; returns the previous value.

    ``None`` clears the default (environment, then ``"auto"``, applies
    again).  Called by :func:`repro.configure`; not public API itself.
    """
    if kernel is not None:
        validate_kernel_name(kernel)
    previous = _CONFIG["kernel"]
    _CONFIG["kernel"] = None if kernel is None else str(kernel)
    return previous


def default_kernel() -> str:
    """The kernel name in effect with no explicit argument (may be "auto")."""
    name = _CONFIG["kernel"]
    if name is None:
        name = os.environ.get(_ENV_VAR) or "auto"
    return str(name)


def _compiled_ok() -> bool:
    from . import compiled

    return compiled.compiled_available()


def available_kernels() -> tuple[str, ...]:
    """The concrete kernels that can run in this process."""
    return ("numpy", "numba") if _compiled_ok() else ("numpy",)


def resolve_kernel(kernel: str | None = None) -> str:
    """Resolve a selection to a concrete kernel name (precedence applied).

    ``kernel=None`` falls back to :func:`repro.configure`'s default, then
    ``REPRO_SOLVE_KERNEL``, then ``"auto"``.  Raises ``ValueError`` for an
    unknown name and :class:`KernelUnavailableError` when ``"numba"`` is
    demanded but cannot run.
    """
    name = validate_kernel_name(kernel if kernel is not None else default_kernel())
    if name == "auto":
        return "numba" if _compiled_ok() else "numpy"
    if name == "numba" and not _compiled_ok():
        raise KernelUnavailableError(
            "kernel 'numba' requested but numba is not available here; "
            "install numba or use kernel='numpy' (or 'auto' to fall back)"
        )
    return name


def kernel_impl(name: str):
    """The kernel module for a concrete name ("numpy" or "numba")."""
    if name == "numpy":
        from . import reference

        return reference
    if name == "numba":
        from . import compiled

        return compiled
    raise ValueError(
        f"no kernel implementation named {name!r}; concrete kernels are "
        "numpy/numba"
    )
