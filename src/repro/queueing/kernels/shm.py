"""Zero-pickle array handoff between processes via shared memory.

The process backend historically pickled every payload to its pool
workers.  Point parameters are tiny, but a batched group's packed
structure-of-arrays state is not -- at fabric scale the serialization of
``(B, M)`` float64 stacks costs more than the solve.  This module moves
whole array sets through :mod:`multiprocessing.shared_memory` instead:
the sender copies each array into a named segment once, the receiver maps
the segment and copies the bits back out, and the only thing pickled is a
small name/shape/dtype descriptor.  The round trip is bit-exact (it is a
byte copy), which the property suite pins against a pickled handoff.

Lifecycle: the creating side owns the segments and must ``unlink()``;
the attaching side only ever reads and releases its mapping.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import resource_tracker, shared_memory
from typing import Mapping

import numpy as np

__all__ = ["SharedArrays", "attach_arrays", "write_arrays"]


class SharedArrays:
    """A named set of numpy arrays copied into shared-memory segments.

    The constructor copies each array into its own segment; ``meta`` is
    the picklable descriptor a receiver passes to :func:`attach_arrays`.
    The creator must call :meth:`unlink` (or use the instance as a context
    manager) once every receiver is done, or the segments outlive the
    process.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]):
        self._segments: list[shared_memory.SharedMemory] = []
        self.meta: dict[str, tuple[str, tuple[int, ...], str]] = {}
        try:
            for name, array in arrays.items():
                src = np.ascontiguousarray(array)
                seg = shared_memory.SharedMemory(
                    create=True, size=max(1, src.nbytes)
                )
                self._segments.append(seg)
                dst = np.ndarray(src.shape, dtype=src.dtype, buffer=seg.buf)
                dst[...] = src
                self.meta[name] = (seg.name, src.shape, src.dtype.str)
        except Exception:
            self.unlink()
            raise

    def unlink(self) -> None:
        """Release and remove every segment (idempotent)."""
        segments, self._segments = self._segments, []
        for seg in segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already removed
                pass

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlink()


def attach_arrays(
    meta: Mapping[str, tuple[str, tuple[int, ...], str]]
) -> dict[str, np.ndarray]:
    """Copy the arrays a :class:`SharedArrays` descriptor names back out.

    Returns ordinary process-private arrays (bitwise equal to what the
    sender shared) and releases the mapping immediately, so the caller
    never has to reason about segment lifetime.
    """
    out: dict[str, np.ndarray] = {}
    for name, (seg_name, shape, dtype) in meta.items():
        seg = _attach(seg_name)
        try:
            out[name] = np.ndarray(
                tuple(shape), dtype=np.dtype(dtype), buffer=seg.buf
            ).copy()
        finally:
            seg.close()
    return out


def write_arrays(
    meta: Mapping[str, tuple[str, tuple[int, ...], str]],
    arrays: Mapping[str, np.ndarray],
) -> None:
    """Copy *arrays* into the segments a descriptor names (receiver side).

    The counterpart of :func:`attach_arrays` for results flowing back: the
    sender pre-creates appropriately-shaped segments (it knows the result
    shapes at dispatch time, and creator-owns-lifecycle keeps the resource
    accounting one-sided), the receiver fills them here.
    """
    for name, (seg_name, shape, dtype) in meta.items():
        seg = _attach(seg_name)
        try:
            dst = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=seg.buf)
            dst[...] = arrays[name]
        finally:
            seg.close()


def _attach(seg_name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment without disturbing leak tracking.

    Attaching registers the segment with this process's resource tracker a
    second time.  Under ``spawn``, workers run their *own* tracker, and that
    stray registration makes worker shutdown "clean up" (unlink!) segments
    the parent still owns -- so drop it.  Under ``fork``, workers share the
    parent's tracker and its cache is a set: the duplicate registration is
    a no-op, and unregistering here would erase the creator's entry and
    break its unlink -- so leave it alone.
    """
    seg = shared_memory.SharedMemory(name=seg_name)
    if multiprocessing.get_start_method() != "fork":
        resource_tracker.unregister(seg._name, "shared_memory")
    return seg
