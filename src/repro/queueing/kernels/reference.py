"""The pure-numpy reference kernels: masked, vectorized fixed points.

These are the arbiter of the numeric contract.  Both loops are the
historical :mod:`repro.queueing.mva_batch` iterations moved verbatim
behind the kernel seam: per-point arithmetic uses only elementwise
operations and reductions along the class/station axes, whose evaluation
order does not depend on the batch size, so per-point results are bitwise
independent of the batch composition.  Any other kernel (see
:mod:`.compiled`) must reproduce these results bit for bit.

Convergence is **masked**: each iteration only the still-unconverged
points are updated, and a point whose queue-length change drops below
``tol`` leaves the active set.  Points never interact, so masking changes
which rows are touched but never any point's iterate sequence.
"""

from __future__ import annotations

import numpy as np

from .soa import FixedPointResult, MulticlassSoA, SymmetricSoA

__all__ = ["multiclass_fixed_point", "symmetric_fixed_point"]

#: selection-registry name of this kernel
NAME = "numpy"


def multiclass_fixed_point(
    soa: MulticlassSoA, tol: float, max_iter: int
) -> FixedPointResult:
    """Batched Bard-Schweitzer on a ``(B, C, M)`` multi-class stack."""
    b_total = soa.batch
    c, m = soa.shape
    v, s, extra = soa.visits, soa.service, soa.extra
    pops, queueing = soa.populations, soa.queueing

    q = soa.initial_queues()
    w = np.zeros((b_total, c, m))
    x = np.zeros((b_total, c))
    iterations = np.zeros(b_total, dtype=np.int64)
    residual = np.full(b_total, np.inf)
    converged = np.zeros(b_total, dtype=bool)
    active = np.arange(b_total)
    trajectory: list[int] = []

    for it in range(1, max_iter + 1):
        if active.size == 0:
            break
        trajectory.append(int(active.size))
        q_a = q[active]
        pops_a = pops[active]
        # step 2: arrival-theorem waiting times for the active points
        q_total = q_a.sum(axis=1, keepdims=True)  # (b, 1, M)
        with np.errstate(divide="ignore", invalid="ignore"):
            own = np.where(pops_a[:, :, None] > 0, q_a / pops_a[:, :, None], 0.0)
        seen = q_total - own
        w_a = np.where(
            queueing[active][:, None, :],
            s[active] * (1.0 + seen) + extra[active],
            s[active] + extra[active],
        )
        # steps 3-4: throughputs and new queue lengths
        denom = (v[active] * w_a).sum(axis=2)  # (b, C)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_a = np.where(denom > 0, pops_a / denom, 0.0)
        q_new = x_a[:, :, None] * v[active] * w_a
        delta = np.abs(q_new - q_a).reshape(active.size, -1).max(axis=1)

        q[active] = q_new
        w[active] = w_a
        x[active] = x_a
        iterations[active] = it
        residual[active] = delta
        # step 5, masked: converged points leave the active set
        done = delta <= tol
        if done.any():
            converged[active[done]] = True
            active = active[~done]

    return FixedPointResult(
        q=q,
        w=w,
        x=x,
        iterations=iterations,
        residual=residual,
        converged=converged,
        trajectory=tuple(trajectory),
    )


def symmetric_fixed_point(
    soa: SymmetricSoA, tol: float, max_iter: int
) -> FixedPointResult:
    """Batched Bard-Schweitzer on the ``(B, M)`` symmetric manifold."""
    b_total, m = soa.visits.shape
    v, s, extra, popf = soa.visits, soa.service, soa.extra, soa.popf

    q = soa.initial_queues()
    w = np.zeros((b_total, m))
    x = np.zeros(b_total)
    iterations = np.zeros(b_total, dtype=np.int64)
    residual = np.zeros(b_total)
    converged = soa.initial_converged()
    residual[~converged] = np.inf
    active = np.flatnonzero(~converged)
    trajectory: list[int] = []

    for it in range(1, max_iter + 1):
        if active.size == 0:
            break
        trajectory.append(int(active.size))
        q_a = q[active]
        pop_a = popf[active]
        t_total = soa.pooled_totals(q_a)
        seen = t_total - q_a / pop_a[:, None]  # arriving customer's view (BS)
        w_a = s[active] * (1.0 + seen) + extra[active]
        denom = (v[active] * w_a).sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_a = np.where(denom > 0, pop_a / denom, 0.0)
        q_new = x_a[:, None] * v[active] * w_a
        delta = np.abs(q_new - q_a).max(axis=1)

        q[active] = q_new
        w[active] = w_a
        x[active] = x_a
        iterations[active] = it
        residual[active] = delta
        done = delta <= tol
        if done.any():
            converged[active[done]] = True
            active = active[~done]

    return FixedPointResult(
        q=q,
        w=w,
        x=x,
        iterations=iterations,
        residual=residual,
        converged=converged,
        trajectory=tuple(trajectory),
    )
