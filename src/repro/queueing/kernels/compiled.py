"""The compiled kernel: per-point machine-code loops, bitwise-equal.

The numpy reference kernel pays ~20 small-array operations of interpreter
overhead per fixed-point iteration; at figure-lattice sizes that overhead
dominates the arithmetic.  This kernel runs the same iteration as plain
per-point loops compiled by numba's ``@njit`` -- no fastmath, so IEEE-754
semantics are untouched -- and is required to match the reference kernel
**bitwise**.  Two things make that possible:

* every elementwise expression keeps the reference's exact association
  (e.g. ``(x * v) * w``, ``s * (1 + seen) + extra``);
* every reduction replicates numpy's evaluation order --
  :func:`_pairwise_sum` is numpy's pairwise summation (sequential below 8
  terms, an 8-way unrolled block up to 128, then halved recursion with the
  split rounded down to a multiple of 8), and class-axis totals accumulate
  slice by slice exactly like a middle-axis ``ndarray.sum``.

Because points of a batched fixed point never interact, iterating each
point to its own convergence reproduces the masked vectorized kernel's
per-point iterate sequence exactly; the active-set trajectory is
reconstructed from the per-point iteration counts
(:func:`~.soa.trajectory_from_iterations`).

When numba is not importable the ``@njit`` decorator degrades to the
identity, leaving the same functions as (slow) pure-Python loops: the
selection layer then refuses ``kernel="numba"`` and ``"auto"`` falls back
to the reference kernel, but the loops stay importable so the conformance
suite can prove the algorithm bitwise-equal even where numba is absent.
"""

from __future__ import annotations

import numpy as np

from .soa import (
    FixedPointResult,
    MulticlassSoA,
    SymmetricSoA,
    trajectory_from_iterations,
)

__all__ = [
    "HAVE_NUMBA",
    "compiled_available",
    "multiclass_fixed_point",
    "symmetric_fixed_point",
]

#: selection-registry name of this kernel
NAME = "numba"

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except Exception:  # ImportError, or a broken numba install
    HAVE_NUMBA = False

    def njit(*args, **kwargs):  # noqa: ANN002, ANN003 - decorator shim
        """Identity decorator: keeps the loop kernels importable/testable."""
        if args and callable(args[0]):
            return args[0]

        def deco(fn):
            return fn

        return deco


@njit(cache=True)
def _pairwise_sum(a: np.ndarray, lo: int, n: int) -> float:
    """numpy's pairwise summation over ``a[lo : lo + n]`` (contiguous f64)."""
    if n < 8:
        res = 0.0
        for i in range(n):
            res += a[lo + i]
        return res
    if n <= 128:
        r0 = a[lo]
        r1 = a[lo + 1]
        r2 = a[lo + 2]
        r3 = a[lo + 3]
        r4 = a[lo + 4]
        r5 = a[lo + 5]
        r6 = a[lo + 6]
        r7 = a[lo + 7]
        i = 8
        while i + 8 <= n:
            r0 += a[lo + i]
            r1 += a[lo + i + 1]
            r2 += a[lo + i + 2]
            r3 += a[lo + i + 3]
            r4 += a[lo + i + 4]
            r5 += a[lo + i + 5]
            r6 += a[lo + i + 6]
            r7 += a[lo + i + 7]
            i += 8
        res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            res += a[lo + i]
            i += 1
        return res
    n2 = n // 2
    n2 -= n2 % 8
    return _pairwise_sum(a, lo, n2) + _pairwise_sum(a, lo + n2, n - n2)


@njit(cache=True)
def _symmetric_loop(
    v: np.ndarray,
    s: np.ndarray,
    extra: np.ndarray,
    popf: np.ndarray,
    type_masks: np.ndarray,
    q: np.ndarray,
    converged: np.ndarray,
    tol: float,
    max_iter: int,
):
    """Iterate every symmetric point to its own convergence (in place)."""
    b_total, m = v.shape
    n_types = type_masks.shape[0]
    w = np.zeros((b_total, m))
    x = np.zeros(b_total)
    iterations = np.zeros(b_total, np.int64)
    residual = np.zeros(b_total)
    tmp = np.empty(m)
    t_total = np.empty(m)
    w_b = np.empty(m)
    q_new = np.empty(m)
    for b in range(b_total):
        if converged[b]:
            continue
        residual[b] = np.inf
        pop = popf[b]
        x_b = 0.0
        for it in range(1, max_iter + 1):
            # type-pooled totals: mask-multiply, then numpy's row reduction
            for t in range(n_types):
                for j in range(m):
                    tmp[j] = q[b, j] * type_masks[t, j]
                tot = _pairwise_sum(tmp, 0, m)
                for j in range(m):
                    if type_masks[t, j] != 0.0:
                        t_total[j] = tot
            for j in range(m):
                seen = t_total[j] - q[b, j] / pop
                w_b[j] = s[b, j] * (1.0 + seen) + extra[b, j]
                tmp[j] = v[b, j] * w_b[j]
            denom = _pairwise_sum(tmp, 0, m)
            if denom > 0.0:
                x_b = pop / denom
            else:
                x_b = 0.0
            delta = 0.0
            for j in range(m):
                qn = (x_b * v[b, j]) * w_b[j]
                d = abs(qn - q[b, j])
                if d > delta:
                    delta = d
                q_new[j] = qn
            for j in range(m):
                q[b, j] = q_new[j]
                w[b, j] = w_b[j]
            x[b] = x_b
            iterations[b] = it
            residual[b] = delta
            if delta <= tol:
                converged[b] = True
                break
    return w, x, iterations, residual


@njit(cache=True)
def _multiclass_loop(
    v: np.ndarray,
    s: np.ndarray,
    extra: np.ndarray,
    pops: np.ndarray,
    queueing: np.ndarray,
    q: np.ndarray,
    tol: float,
    max_iter: int,
):
    """Iterate every multi-class point to its own convergence (in place)."""
    b_total, c_total, m = v.shape
    w = np.zeros((b_total, c_total, m))
    x = np.zeros((b_total, c_total))
    iterations = np.zeros(b_total, np.int64)
    residual = np.full(b_total, np.inf)
    converged = np.zeros(b_total, np.bool_)
    q_total = np.empty(m)
    tmp = np.empty(m)
    w_b = np.empty((c_total, m))
    x_b = np.empty(c_total)
    q_new = np.empty((c_total, m))
    for b in range(b_total):
        for it in range(1, max_iter + 1):
            # class-axis totals accumulate slice by slice (middle-axis sum)
            for j in range(m):
                acc = 0.0
                for c in range(c_total):
                    acc += q[b, c, j]
                q_total[j] = acc
            for c in range(c_total):
                pop = pops[b, c]
                for j in range(m):
                    if pop > 0.0:
                        own = q[b, c, j] / pop
                    else:
                        own = 0.0
                    seen = q_total[j] - own
                    if queueing[b, j]:
                        w_b[c, j] = s[b, c, j] * (1.0 + seen) + extra[b, c, j]
                    else:
                        w_b[c, j] = s[b, c, j] + extra[b, c, j]
                    tmp[j] = v[b, c, j] * w_b[c, j]
                denom = _pairwise_sum(tmp, 0, m)
                if denom > 0.0:
                    x_b[c] = pop / denom
                else:
                    x_b[c] = 0.0
            delta = 0.0
            for c in range(c_total):
                for j in range(m):
                    qn = (x_b[c] * v[b, c, j]) * w_b[c, j]
                    d = abs(qn - q[b, c, j])
                    if d > delta:
                        delta = d
                    q_new[c, j] = qn
            for c in range(c_total):
                for j in range(m):
                    q[b, c, j] = q_new[c, j]
                    w[b, c, j] = w_b[c, j]
                x[b, c] = x_b[c]
            iterations[b] = it
            residual[b] = delta
            if delta <= tol:
                converged[b] = True
                break
    return w, x, iterations, residual, converged


def symmetric_fixed_point(
    soa: SymmetricSoA, tol: float, max_iter: int
) -> FixedPointResult:
    """Batched Bard-Schweitzer on the symmetric manifold, compiled."""
    q = soa.initial_queues()
    converged = soa.initial_converged().copy()
    w, x, iterations, residual = _symmetric_loop(
        np.ascontiguousarray(soa.visits),
        np.ascontiguousarray(soa.service),
        np.ascontiguousarray(soa.extra),
        soa.popf,
        np.ascontiguousarray(soa.type_masks),
        q,
        converged,
        tol,
        max_iter,
    )
    return FixedPointResult(
        q=q,
        w=w,
        x=x,
        iterations=iterations,
        residual=residual,
        converged=converged,
        trajectory=trajectory_from_iterations(iterations),
    )


def multiclass_fixed_point(
    soa: MulticlassSoA, tol: float, max_iter: int
) -> FixedPointResult:
    """Batched Bard-Schweitzer on a multi-class stack, compiled."""
    q = soa.initial_queues()
    w, x, iterations, residual, converged = _multiclass_loop(
        np.ascontiguousarray(soa.visits),
        np.ascontiguousarray(soa.service),
        np.ascontiguousarray(soa.extra),
        np.ascontiguousarray(soa.populations),
        np.ascontiguousarray(soa.queueing),
        q,
        tol,
        max_iter,
    )
    return FixedPointResult(
        q=q,
        w=w,
        x=x,
        iterations=iterations,
        residual=residual,
        converged=converged,
        trajectory=trajectory_from_iterations(iterations),
    )


#: lazily-probed availability verdict (None = not probed yet)
_PROBE: bool | None = None


def compiled_available() -> bool:
    """Whether the numba kernel can actually run (import + tiny compile).

    The probe solves one miniature point per kernel so a numba that
    imports but cannot compile these loops (unsupported platform, broken
    cache dir) is discovered here, where ``auto`` can still fall back,
    rather than mid-sweep.  The verdict is cached for the process.
    """
    global _PROBE
    if _PROBE is None:
        _PROBE = HAVE_NUMBA and _probe()
    return _PROBE


def _probe() -> bool:  # pragma: no cover - requires numba
    try:
        sym = SymmetricSoA.pack(
            visits=np.ones((1, 9)),
            service=np.full((1, 9), 0.5),
            station_type=np.arange(9) % 3,
            populations=np.array([2]),
            servers=np.full((1, 9), 2),
        )
        symmetric_fixed_point(sym, 1e-6, 50)
        multi = MulticlassSoA(
            visits=np.ones((1, 2, 9)),
            service=np.full((1, 2, 9), 0.5),
            extra=np.zeros((1, 2, 9)),
            populations=np.full((1, 2), 2.0),
            queueing=np.ones((1, 9), dtype=bool),
        )
        multiclass_fixed_point(multi, 1e-6, 50)
        return True
    except Exception:
        return False
