"""Structure-of-arrays packing for the batched fixed-point kernels.

A solver kernel consumes *only* plain ``float64``/``int64``/``bool`` numpy
arrays -- no network objects, no Python callables -- so the same packed
state can feed the vectorized numpy reference kernel, the compiled numba
kernel, or travel to a pool worker through shared memory without pickling.
The two containers here hold that packed state:

* :class:`MulticlassSoA` -- a ``(B, C, M)`` stack of same-shape
  multi-class closed networks (the paper's Figure-3 AMVA inputs);
* :class:`SymmetricSoA` -- a ``(B, M)`` stack of symmetric-manifold
  points plus the shared station-type labelling.

Packing owns all input validation and the deterministic derived state
(Seidmann multi-server split, the spread-population initial queues), so
every kernel starts from bit-identical arrays; ``point()`` unpacks one
batch slot back out (the round trip is property-tested bitwise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "FixedPointResult",
    "MulticlassSoA",
    "SymmetricSoA",
    "trajectory_from_iterations",
]


@dataclass(frozen=True)
class FixedPointResult:
    """What one batched fixed-point kernel computed, as raw arrays.

    ``q``/``w`` are final queue lengths and waiting times (batch-leading
    shape), ``x`` the throughputs, and the per-point ``iterations`` /
    ``residual`` / ``converged`` vectors mirror the scalar solvers.
    ``trajectory`` is the active-set size at the start of each iteration.
    """

    q: np.ndarray
    w: np.ndarray
    x: np.ndarray
    iterations: np.ndarray
    residual: np.ndarray
    converged: np.ndarray
    trajectory: tuple[int, ...]


def trajectory_from_iterations(iterations: np.ndarray) -> tuple[int, ...]:
    """Reconstruct the active-set trajectory from per-point iteration counts.

    A point that finished at iteration ``k`` was active for iterations
    ``1..k`` (and a pre-converged point, ``k = 0``, never was), so the
    active-set size when iteration ``it`` started is exactly the number of
    points with ``iterations >= it``.  This lets kernels that iterate each
    point independently report the identical trajectory the masked
    vectorized kernel records in-loop.
    """
    if iterations.size == 0:
        return ()
    top = int(iterations.max())
    return tuple(int((iterations >= it).sum()) for it in range(1, top + 1))


@dataclass(frozen=True)
class MulticlassSoA:
    """A lattice of same-shape multi-class networks as ``(B, C, M)`` arrays.

    ``service``/``extra`` carry the Seidmann multi-server split (queueing
    part and delay part); ``queueing`` flags stations that queue at all.
    """

    visits: np.ndarray  #: (B, C, M) float64
    service: np.ndarray  #: (B, C, M) float64, Seidmann queueing part
    extra: np.ndarray  #: (B, C, M) float64, Seidmann delay part
    populations: np.ndarray  #: (B, C) float64
    queueing: np.ndarray  #: (B, M) bool

    @property
    def batch(self) -> int:
        return self.visits.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        """The shared per-point ``(C, M)`` layout."""
        return self.visits.shape[1], self.visits.shape[2]

    @classmethod
    def from_networks(cls, networks: Sequence) -> "MulticlassSoA":
        """Stack a sequence of same-shape :class:`ClosedNetwork` specs."""
        shape = (networks[0].num_classes, networks[0].num_stations)
        for net in networks:
            if (net.num_classes, net.num_stations) != shape:
                raise ValueError(
                    f"all networks in a batch must share one (C, M) shape; got "
                    f"{(net.num_classes, net.num_stations)} != {shape}"
                )
        seidmann = [net.seidmann_split() for net in networks]
        return cls(
            visits=np.stack([net.visits for net in networks]),
            service=np.stack([sq for sq, _ in seidmann]),
            extra=np.stack([d for _, d in seidmann]),
            populations=np.stack(
                [net.populations.astype(np.float64) for net in networks]
            ),
            queueing=np.stack([net.queueing_mask() for net in networks]),
        )

    def initial_queues(self) -> np.ndarray:
        """Figure 3, step 1 (per point): spread each class over its stations.

        Returns a fresh array each call; kernels may mutate it freely.
        """
        visited = self.visits > 0
        n_visited = np.maximum(visited.sum(axis=2, keepdims=True), 1)
        return np.where(
            visited, self.populations[:, :, None] / n_visited, 0.0
        )

    def point(self, i: int) -> dict[str, np.ndarray]:
        """Unpack batch slot ``i`` (bitwise views of the packed state)."""
        return {
            "visits": self.visits[i],
            "service": self.service[i],
            "extra": self.extra[i],
            "populations": self.populations[i],
            "queueing": self.queueing[i],
        }


@dataclass(frozen=True)
class SymmetricSoA:
    """A lattice of symmetric-manifold points as ``(B, M)`` arrays.

    ``station_type`` is the shared ``(M,)`` labelling; ``type_masks`` /
    ``type_bools`` are its precomputed ``(T, M)`` one-hot forms, one row
    per distinct label in :func:`numpy.unique` order, used for the pooled
    per-type queue totals.
    """

    visits: np.ndarray  #: (B, M) float64
    service: np.ndarray  #: (B, M) float64, Seidmann queueing part
    extra: np.ndarray  #: (B, M) float64, Seidmann delay part
    populations: np.ndarray  #: (B,) int64
    popf: np.ndarray  #: (B,) float64 view of the populations
    station_type: np.ndarray  #: (M,) shared labels
    type_masks: np.ndarray  #: (T, M) float64 one-hot per label
    type_bools: np.ndarray  #: (T, M) bool per label

    @property
    def batch(self) -> int:
        return self.visits.shape[0]

    @property
    def stations(self) -> int:
        return self.visits.shape[1]

    @classmethod
    def pack(
        cls,
        visits: np.ndarray,
        service: np.ndarray,
        station_type: np.ndarray,
        populations: np.ndarray,
        servers: np.ndarray | None = None,
    ) -> "SymmetricSoA":
        """Validate and stack raw per-point arrays into kernel-ready state.

        Applies the Seidmann multi-server split (``extra = s (n-1)/n``,
        ``s / n``) when ``servers`` is given; the error messages are the
        historical :func:`solve_symmetric_batch` ones.
        """
        v = np.atleast_2d(np.asarray(visits, dtype=np.float64))
        s = np.atleast_2d(np.asarray(service, dtype=np.float64))
        types = np.asarray(station_type)
        pops = np.atleast_1d(np.asarray(populations, dtype=np.int64))
        b_total, m = v.shape
        if s.shape != v.shape:
            raise ValueError("visits and service must share a (B, M) shape")
        if types.shape != (m,):
            raise ValueError(f"station_type shape {types.shape} != ({m},)")
        if pops.shape != (b_total,):
            raise ValueError(f"populations shape {pops.shape} != ({b_total},)")
        if np.any(pops < 0):
            raise ValueError("populations must be >= 0")
        if servers is None:
            extra = np.zeros((b_total, m))
        else:
            srv = np.atleast_2d(np.asarray(servers, dtype=np.float64))
            if srv.shape != v.shape:
                raise ValueError("servers must match the (B, M) visits shape")
            if np.any(srv < 1):
                raise ValueError("server counts must be >= 1")
            extra = s * (srv - 1.0) / srv
            s = s / srv
        labels = np.unique(types)
        type_bools = np.stack([types == label for label in labels])
        return cls(
            visits=v,
            service=s,
            extra=extra,
            populations=pops,
            popf=pops.astype(np.float64),
            station_type=types,
            type_masks=type_bools.astype(np.float64),
            type_bools=type_bools,
        )

    def pooled_totals(self, queues: np.ndarray) -> np.ndarray:
        """Per-station all-class totals: the type-pooled class-0 queues.

        Pooling multiplies by a full-width 0/1 mask and reduces the
        C-contiguous product along the station axis.  Boolean fancy
        indexing (``queues[:, mask]``) would yield a non-contiguous
        intermediate whose reduction order -- and hence rounding -- depends
        on the batch size; the contiguous form is bitwise independent of
        the batch composition, which the backend-equality tests rely on.
        """
        queues = np.ascontiguousarray(queues)
        t_total = np.empty_like(queues)
        for mask, sel in zip(self.type_masks, self.type_bools):
            t_total[:, sel] = (queues * mask).sum(axis=1)[:, None]
        return t_total

    def initial_queues(self) -> np.ndarray:
        """Spread each point's population over its visited stations.

        Returns a fresh array each call; kernels may mutate it freely.
        """
        visited = self.visits > 0
        n_visited = np.maximum(visited.sum(axis=1, keepdims=True), 1)
        q = np.where(visited, self.popf[:, None] / n_visited, 0.0)
        q[self.populations == 0] = 0.0
        return q

    def initial_converged(self) -> np.ndarray:
        """Empty points are trivially solved; fresh array each call."""
        return self.populations == 0

    def point(self, i: int) -> dict[str, np.ndarray]:
        """Unpack batch slot ``i`` (bitwise views of the packed state)."""
        return {
            "visits": self.visits[i],
            "service": self.service[i],
            "extra": self.extra[i],
            "population": self.populations[i],
            "station_type": self.station_type,
        }
