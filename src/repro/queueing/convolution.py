"""Buzen's convolution algorithm for single-class closed networks.

An independent exact solution path: normalization constants ``G(n)`` instead
of the MVA recursion.  Exact MVA and convolution must agree to machine
precision on product-form networks, which makes this module the strongest
internal consistency check of the queueing substrate (the solvers share no
code).

For a single-server FCFS/PS station with demand ``D``, the per-station factor
is ``D^n``; for an infinite-server (delay) station it is ``D^n / n!``.
"""

from __future__ import annotations

import math

import numpy as np

from .network import ClosedNetwork, StationKind
from .solution import QNSolution

__all__ = ["normalization_constants", "convolution_solve"]


def normalization_constants(
    demands: np.ndarray,
    population: int,
    kinds: tuple[StationKind, ...] | None = None,
) -> np.ndarray:
    """``G(0..N)`` by convolving the per-station factors.

    Parameters
    ----------
    demands:
        ``(M,)`` service demands ``D_m = v_m * s_m``.
    population:
        ``N``, the customer count.
    kinds:
        Station kinds (default all ``QUEUEING``).
    """
    demands = np.asarray(demands, dtype=np.float64)
    if population < 0:
        raise ValueError(f"population must be >= 0, got {population}")
    kinds = kinds or tuple([StationKind.QUEUEING] * len(demands))
    g = np.zeros(population + 1)
    g[0] = 1.0
    for d, kind in zip(demands, kinds):
        if kind is StationKind.QUEUEING:
            # g_new(n) = sum_k d^k g(n-k)  ==  g_new(n) = g(n) + d*g_new(n-1)
            for n in range(1, population + 1):
                g[n] = g[n] + d * g[n - 1]
        else:  # delay station: factor d^k / k!
            new = g.copy()
            for n in range(1, population + 1):
                acc = g[n]
                for k in range(1, n + 1):
                    acc += (d**k / math.factorial(k)) * g[n - k]
                new[n] = acc
            g = new
    return g


def convolution_solve(network: ClosedNetwork) -> QNSolution:
    """Exact single-class solution via normalization constants.

    Computes throughput ``X(N) = G(N-1)/G(N)``, utilizations
    ``U_m = D_m X`` and queue lengths
    ``Q_m = sum_{n=1..N} D_m^n G(N-n)/G(N)`` (queueing stations) or
    ``Q_m = D_m X`` (delay stations).  Multi-server stations are not
    supported here (no simple per-station factor) -- use MVA with the
    Seidmann split instead.
    """
    if network.num_classes != 1:
        raise ValueError("convolution solver is single-class")
    if any(s != 1 for s in network.servers):
        raise ValueError("convolution solver supports single-server stations only")
    n = int(network.populations[0])
    demands = network.demands[0]
    kinds = network.kinds
    g = normalization_constants(demands, n, kinds)
    if n == 0 or g[n] == 0:
        zeros = np.zeros((1, network.num_stations))
        return QNSolution(
            network=network,
            throughput=np.array([0.0]),
            waiting=zeros,
            queue_length=zeros.copy(),
        )
    x = g[n - 1] / g[n]

    q = np.zeros(network.num_stations)
    for m, (d, kind) in enumerate(zip(demands, kinds)):
        if kind is StationKind.QUEUEING:
            q[m] = sum(d**k * g[n - k] for k in range(1, n + 1)) / g[n]
        else:
            q[m] = d * x
    # waiting per visit from Little's law: Q_m = X * v_m * W_m
    v = network.visits[0]
    w = np.zeros_like(q)
    nz = v > 0
    w[nz] = q[nz] / (x * v[nz])
    return QNSolution(
        network=network,
        throughput=np.array([x]),
        waiting=w[None, :],
        queue_length=q[None, :],
    )
