"""Closed multi-class queueing network specification.

The paper's model (Figure 2) is a product-form closed network: every station
is a single-server FCFS queue with exponential service, one customer class per
processor, ``n_t`` customers per class, and class-dependent visit ratios.
This module holds the *specification* only; solvers live in
:mod:`repro.queueing.mva_exact`, :mod:`repro.queueing.mva_approx` and
:mod:`repro.queueing.mva_symmetric`.

Station kinds
-------------
``QUEUEING``
    Single-server FCFS queue (all of the paper's stations).
``DELAY``
    Infinite-server / pure delay station (no queueing).  Not used by the
    paper's model but supported so the solvers are reusable; also the natural
    representation of an "ideal" subsystem with *finite* delay but no
    contention, which the paper explicitly contrasts against its preferred
    zero-delay definition.

A zero service time at a ``QUEUEING`` station is legal and means the station
is a pass-through: this is exactly the paper's "ideal (zero delay) subsystem".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

__all__ = ["StationKind", "ClosedNetwork"]


class StationKind(Enum):
    """Service discipline of a station."""

    QUEUEING = "queueing"
    DELAY = "delay"


@dataclass(frozen=True)
class ClosedNetwork:
    """A closed multi-class queueing network.

    Parameters
    ----------
    visits:
        ``(C, M)`` visit ratios ``v[c, m]`` (relative visit counts per cycle).
    service:
        ``(M,)`` or ``(C, M)`` mean service times.  Per-class service times at
        FCFS stations break strict product form; the approximate solvers apply
        them anyway (a standard AMVA heuristic), while the exact solver
        requires class-independent FCFS service.
    populations:
        ``(C,)`` integer customer counts per class.
    kinds:
        Optional ``(M,)`` array/sequence of :class:`StationKind`
        (default: all ``QUEUEING``).
    names:
        Optional station names for reporting.
    servers:
        Optional ``(M,)`` server counts for ``QUEUEING`` stations (default
        all 1).  Multi-server stations model the paper's Section-7
        suggestion of multiported/pipelined memory.  Solvers apply the
        Seidmann approximation: an ``m``-server station behaves as a single
        queue with service ``s/m`` plus a fixed delay ``s (m-1)/m``.
    """

    visits: np.ndarray
    service: np.ndarray
    populations: np.ndarray
    kinds: tuple[StationKind, ...] = field(default=())
    names: tuple[str, ...] = field(default=())
    servers: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        visits = np.atleast_2d(np.asarray(self.visits, dtype=np.float64))
        object.__setattr__(self, "visits", visits)
        c, m = visits.shape

        service = np.asarray(self.service, dtype=np.float64)
        if service.ndim == 1:
            if service.shape != (m,):
                raise ValueError(f"service shape {service.shape} != ({m},)")
            service = np.broadcast_to(service, (c, m)).copy()
        elif service.shape != (c, m):
            raise ValueError(f"service shape {service.shape} != ({c}, {m})")
        object.__setattr__(self, "service", service)

        pops = np.atleast_1d(np.asarray(self.populations, dtype=np.int64))
        if pops.shape != (c,):
            raise ValueError(f"populations shape {pops.shape} != ({c},)")
        object.__setattr__(self, "populations", pops)

        kinds = tuple(self.kinds) or tuple([StationKind.QUEUEING] * m)
        if len(kinds) != m:
            raise ValueError(f"got {len(kinds)} station kinds for {m} stations")
        object.__setattr__(self, "kinds", kinds)

        names = tuple(self.names) or tuple(f"station{j}" for j in range(m))
        if len(names) != m:
            raise ValueError(f"got {len(names)} names for {m} stations")
        object.__setattr__(self, "names", names)

        servers = tuple(int(s) for s in self.servers) or tuple([1] * m)
        if len(servers) != m:
            raise ValueError(f"got {len(servers)} server counts for {m} stations")
        if any(s < 1 for s in servers):
            raise ValueError("server counts must be >= 1")
        object.__setattr__(self, "servers", servers)

        if np.any(visits < 0):
            raise ValueError("visit ratios must be non-negative")
        if np.any(self.service < 0):
            raise ValueError("service times must be non-negative")
        if np.any(pops < 0):
            raise ValueError("populations must be non-negative")

    # ------------------------------------------------------------------ views
    @property
    def num_classes(self) -> int:
        return self.visits.shape[0]

    @property
    def num_stations(self) -> int:
        return self.visits.shape[1]

    @property
    def demands(self) -> np.ndarray:
        """Service demands ``D[c, m] = v[c, m] * s[c, m]``."""
        return self.visits * self.service

    def queueing_mask(self) -> np.ndarray:
        """Boolean ``(M,)`` mask of stations that actually queue customers."""
        return np.array([k is StationKind.QUEUEING for k in self.kinds])

    def station_index(self, name: str) -> int:
        """Index of the station called ``name``."""
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(f"no station named {name!r}") from None

    def seidmann_split(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-class ``(queueing_service, fixed_delay)`` arrays applying the
        Seidmann multi-server approximation: at an ``m``-server station a
        customer queues for a server of speed ``m`` (service ``s/m``) and
        additionally waits the pipeline fill ``s (m-1)/m`` without queueing.

        Single-server stations return ``(s, 0)`` -- the approximation is
        exact there.
        """
        m_arr = np.asarray(self.servers, dtype=np.float64)[None, :]
        s_queue = self.service / m_arr
        delay = self.service * (m_arr - 1.0) / m_arr
        return s_queue, delay
