"""Closed queueing network substrate: specifications and MVA solvers."""

from .bounds import AsymptoticBounds, asymptotic_bounds, balanced_job_bounds
from .convolution import convolution_solve, normalization_constants
from .mva_approx import bard_schweitzer, linearizer
from .mva_exact import exact_mva, exact_mva_single_class, lattice_size
from .mva_symmetric import SymmetricSolution, solve_symmetric
from .network import ClosedNetwork, StationKind
from .solution import QNSolution

__all__ = [
    "ClosedNetwork",
    "StationKind",
    "QNSolution",
    "exact_mva",
    "exact_mva_single_class",
    "lattice_size",
    "bard_schweitzer",
    "linearizer",
    "SymmetricSolution",
    "solve_symmetric",
    "AsymptoticBounds",
    "asymptotic_bounds",
    "balanced_job_bounds",
    "convolution_solve",
    "normalization_constants",
]
