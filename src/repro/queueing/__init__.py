"""Closed queueing network substrate: specifications and MVA solvers."""

from .bounds import AsymptoticBounds, asymptotic_bounds, balanced_job_bounds
from .convolution import convolution_solve, normalization_constants
from .mva_approx import bard_schweitzer, linearizer
from .mva_batch import bard_schweitzer_batch, solve_batch, solve_symmetric_batch
from .mva_exact import exact_mva, exact_mva_single_class, lattice_size
from .mva_symmetric import SymmetricSolution, solve_symmetric
from .network import ClosedNetwork, StationKind
from .solution import (
    BatchTelemetry,
    ConvergenceError,
    ConvergenceWarning,
    QNSolution,
    SolverTelemetry,
)

__all__ = [
    "ClosedNetwork",
    "StationKind",
    "QNSolution",
    "SolverTelemetry",
    "BatchTelemetry",
    "ConvergenceWarning",
    "ConvergenceError",
    "exact_mva",
    "exact_mva_single_class",
    "lattice_size",
    "bard_schweitzer",
    "linearizer",
    "solve_batch",
    "bard_schweitzer_batch",
    "solve_symmetric_batch",
    "SymmetricSolution",
    "solve_symmetric",
    "AsymptoticBounds",
    "asymptotic_bounds",
    "balanced_job_bounds",
    "convolution_solve",
    "normalization_constants",
]
