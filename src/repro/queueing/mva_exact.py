"""Exact Mean Value Analysis for product-form closed networks.

Two solvers:

* :func:`exact_mva_single_class` -- the classic O(N * M) recursion.
* :func:`exact_mva` -- exact multi-class MVA by recursion over the population
  lattice.  Cost is ``prod_c (N_c + 1)`` lattice points, so this is only for
  small instances; its role here is to quantify the error of the approximate
  (Bard-Schweitzer) solver the paper uses -- the paper itself notes that state
  space techniques are "computationally intensive" and quotes the 63504-state
  two-processor example.

Exactness requires class-independent service times at FCFS stations (BCMP
conditions); :func:`exact_mva` raises otherwise.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from .network import ClosedNetwork, StationKind
from .solution import QNSolution

__all__ = ["exact_mva_single_class", "exact_mva", "lattice_size"]

#: refuse exact multi-class solves above this many population-lattice points
MAX_LATTICE_POINTS = 2_000_000


def exact_mva_single_class(network: ClosedNetwork) -> QNSolution:
    """Exact MVA for a single-class network (population ``N``).

    Recursion (queueing stations): ``W_m(n) = s_m * (1 + Q_m(n-1))``;
    delay stations: ``W_m(n) = s_m``.
    """
    if network.num_classes != 1:
        raise ValueError(f"single-class solver got {network.num_classes} classes")
    n_total = int(network.populations[0])
    v = network.visits[0]
    s_all, extra_all = network.seidmann_split()
    s, extra = s_all[0], extra_all[0]
    queueing = network.queueing_mask()

    q = np.zeros(network.num_stations)
    w = np.zeros(network.num_stations)
    x = 0.0
    for n in range(1, n_total + 1):
        w = np.where(queueing, s * (1.0 + q) + extra, s + extra)
        denom = float(np.dot(v, w))
        x = n / denom if denom > 0 else math.inf
        q = x * v * w if math.isfinite(x) else np.zeros_like(q)
    if n_total == 0:
        x = 0.0
    return QNSolution(
        network=network,
        throughput=np.array([x]),
        waiting=w[None, :].copy(),
        queue_length=q[None, :].copy(),
    )


def lattice_size(populations: np.ndarray) -> int:
    """Number of population-lattice points the exact multi-class solver visits."""
    return int(np.prod(np.asarray(populations, dtype=np.int64) + 1))


def exact_mva(network: ClosedNetwork) -> QNSolution:
    """Exact multi-class MVA over the full population lattice.

    Raises
    ------
    ValueError
        If service times are class-dependent at a shared queueing station
        (not product form) or the lattice exceeds ``MAX_LATTICE_POINTS``.
    """
    c, m = network.num_classes, network.num_stations
    if c == 1:
        return exact_mva_single_class(network)

    if lattice_size(network.populations) > MAX_LATTICE_POINTS:
        raise ValueError(
            f"population lattice has {lattice_size(network.populations)} points; "
            f"exact MVA capped at {MAX_LATTICE_POINTS} - use bard_schweitzer()"
        )
    _require_class_independent_service(network)

    s, extra = network.seidmann_split()  # class-independent where shared
    v = network.visits
    queueing = network.queueing_mask()
    pops = tuple(int(n) for n in network.populations)

    # q_total[pop_vector] -> (M,) total mean queue lengths at that population.
    q_total: dict[tuple[int, ...], np.ndarray] = {
        tuple([0] * c): np.zeros(m)
    }
    # Iterate lattice points in order of total population so that every
    # N - e_c needed is already solved.
    w_last = np.zeros((c, m))
    x_last = np.zeros(c)
    ranges = [range(n + 1) for n in pops]
    points = sorted(itertools.product(*ranges), key=sum)
    q_class_last = np.zeros((c, m))
    for point in points:
        if sum(point) == 0:
            continue
        w = np.zeros((c, m))
        x = np.zeros(c)
        q_cls = np.zeros((c, m))
        for cls in range(c):
            if point[cls] == 0:
                continue
            reduced = list(point)
            reduced[cls] -= 1
            q_prev = q_total[tuple(reduced)]
            w[cls] = np.where(
                queueing, s[cls] * (1.0 + q_prev) + extra[cls], s[cls] + extra[cls]
            )
            denom = float(np.dot(v[cls], w[cls]))
            x[cls] = point[cls] / denom if denom > 0 else math.inf
            if math.isfinite(x[cls]):
                q_cls[cls] = x[cls] * v[cls] * w[cls]
        q_total[point] = q_cls.sum(axis=0)
        if point == pops:
            w_last, x_last, q_class_last = w, x, q_cls
    return QNSolution(
        network=network,
        throughput=x_last,
        waiting=w_last,
        queue_length=q_class_last,
    )


def _require_class_independent_service(network: ClosedNetwork) -> None:
    """BCMP check: at each FCFS station visited by >1 class, service must match."""
    s, v = network.service, network.visits
    for j, kind in enumerate(network.kinds):
        if kind is not StationKind.QUEUEING:
            continue
        visiting = v[:, j] > 0
        if visiting.sum() <= 1:
            continue
        vals = s[visiting, j]
        if not np.allclose(vals, vals[0]):
            raise ValueError(
                f"station {network.names[j]!r} has class-dependent FCFS service "
                "times; the network is not product-form (use bard_schweitzer)"
            )
