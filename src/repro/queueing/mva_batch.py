"""Batched Bard-Schweitzer: a whole lattice of networks as one fixed point.

Every figure and table of the paper is a parameter sweep whose points share
one network *shape* -- the same ``(C, M)`` class/station layout with
different service times, visit ratios and populations.  Solving such a
lattice point-by-point re-enters Python once per point; here the whole
lattice is stacked into ``(B, C, M)`` arrays and iterated as a single numpy
fixed point.

Convergence is **masked**: each iteration only the still-unconverged points
are updated, and a point whose queue-length change drops below ``tol``
leaves the active set -- exactly like early-exit in batched inference.  The
per-point iterate sequence is unchanged by the masking (points never
interact), so each point converges in the same number of iterations, to the
same values, as a scalar solve.

Numerical contract
------------------
Per-point arithmetic uses only elementwise operations and reductions along
the class/station axes, whose evaluation order does not depend on the batch
size.  :func:`solve_symmetric_batch` is therefore bitwise-identical across
batch compositions (``B = 1`` vs. ``B = 176`` give the same floats), which
is what lets :func:`~repro.queueing.mva_symmetric.solve_symmetric` delegate
here and lets serial, batched and process-pool sweep backends emit
bitwise-identical records.  :func:`solve_batch` (the multi-class kernel) is
property-tested pointwise-equivalent to
:func:`~repro.queueing.mva_approx.bard_schweitzer` to well below 1e-10.
"""

from __future__ import annotations

import time
import warnings
from typing import Sequence

import numpy as np

from ..resilience.faults import InjectedFault, fault_point
from .mva_symmetric import SymmetricSolution
from .network import ClosedNetwork
from .solution import (
    BatchTelemetry,
    ConvergenceError,
    ConvergenceWarning,
    QNSolution,
    SolverTelemetry,
)

__all__ = ["solve_batch", "bard_schweitzer_batch", "solve_symmetric_batch"]


def _nonconvergence(label: str, stragglers: int, residual: float, tol: float,
                    max_iter: int, strict: bool) -> None:
    msg = (
        f"{label}: {stragglers} point(s) did not converge within "
        f"{max_iter} iterations (worst residual {residual:.3e} > tol {tol:.1e})"
    )
    if strict:
        raise ConvergenceError(msg)
    warnings.warn(msg, ConvergenceWarning, stacklevel=3)


def solve_batch(
    networks: Sequence[ClosedNetwork],
    tol: float = 1e-10,
    max_iter: int = 100_000,
    strict: bool = False,
) -> list[QNSolution]:
    """Solve a stack of same-shape closed networks with one batched AMVA.

    Parameters
    ----------
    networks:
        Network specifications; all must share the ``(C, M)`` shape (service
        times, visit ratios, populations and server counts may differ
        freely).  Zero-service (ideal-subsystem) stations are allowed, as in
        the scalar solver.
    tol / max_iter:
        Per-point convergence threshold and iteration cap (the scalar
        :func:`~repro.queueing.mva_approx.bard_schweitzer` defaults).
    strict:
        Raise :class:`ConvergenceError` if any point exhausts ``max_iter``;
        the default emits a :class:`ConvergenceWarning` and returns the last
        iterates (flagged ``converged=False``).

    Returns
    -------
    One :class:`QNSolution` per input network, in order, each carrying
    per-point ``iterations``/``residual`` and a shared
    :class:`~repro.queueing.solution.BatchTelemetry`.
    """
    if not networks:
        return []
    if fault_point("solve.raise") is not None:
        raise InjectedFault("injected failure at solve_batch entry")
    t0 = time.perf_counter()
    shape = (networks[0].num_classes, networks[0].num_stations)
    for net in networks:
        if (net.num_classes, net.num_stations) != shape:
            raise ValueError(
                f"all networks in a batch must share one (C, M) shape; got "
                f"{(net.num_classes, net.num_stations)} != {shape}"
            )
    b_total = len(networks)
    c, m = shape

    v = np.stack([net.visits for net in networks])  # (B, C, M)
    seidmann = [net.seidmann_split() for net in networks]
    s = np.stack([sq for sq, _ in seidmann])
    extra = np.stack([d for _, d in seidmann])
    pops = np.stack([net.populations.astype(np.float64) for net in networks])
    queueing = np.stack([net.queueing_mask() for net in networks])  # (B, M)

    # Figure 3, step 1 (per point): spread each class over its stations.
    visited = v > 0
    n_visited = np.maximum(visited.sum(axis=2, keepdims=True), 1)
    q = np.where(visited, pops[:, :, None] / n_visited, 0.0)

    w = np.zeros((b_total, c, m))
    x = np.zeros((b_total, c))
    iterations = np.zeros(b_total, dtype=np.int64)
    residual = np.full(b_total, np.inf)
    converged = np.zeros(b_total, dtype=bool)
    active = np.arange(b_total)
    trajectory: list[int] = []

    for it in range(1, max_iter + 1):
        if active.size == 0:
            break
        trajectory.append(int(active.size))
        q_a = q[active]
        pops_a = pops[active]
        # step 2: arrival-theorem waiting times for the active points
        q_total = q_a.sum(axis=1, keepdims=True)  # (b, 1, M)
        with np.errstate(divide="ignore", invalid="ignore"):
            own = np.where(pops_a[:, :, None] > 0, q_a / pops_a[:, :, None], 0.0)
        seen = q_total - own
        w_a = np.where(
            queueing[active][:, None, :],
            s[active] * (1.0 + seen) + extra[active],
            s[active] + extra[active],
        )
        # steps 3-4: throughputs and new queue lengths
        denom = (v[active] * w_a).sum(axis=2)  # (b, C)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_a = np.where(denom > 0, pops_a / denom, 0.0)
        q_new = x_a[:, :, None] * v[active] * w_a
        delta = np.abs(q_new - q_a).reshape(active.size, -1).max(axis=1)

        q[active] = q_new
        w[active] = w_a
        x[active] = x_a
        iterations[active] = it
        residual[active] = delta
        # step 5, masked: converged points leave the active set
        done = delta <= tol
        if done.any():
            converged[active[done]] = True
            active = active[~done]

    stragglers = b_total - int(converged.sum())
    if stragglers:
        _nonconvergence(
            "solve_batch", stragglers, float(residual[~converged].max()),
            tol, max_iter, strict,
        )

    spec = fault_point("solve.nan")
    if spec is not None:  # poison one point's measures (chaos testing)
        i = int(spec.args.get("index", 0)) % b_total
        x[i] = np.nan
        w[i] = np.nan
        q[i] = np.nan

    batch = BatchTelemetry(
        batch_size=b_total,
        iterations=int(iterations.max(initial=0)),
        converged=int(converged.sum()),
        max_residual=float(np.max(residual, initial=0.0)),
        active_trajectory=tuple(trajectory),
        wall_time_s=time.perf_counter() - t0,
    )
    return [
        QNSolution(
            network=net,
            throughput=x[i],
            waiting=w[i],
            queue_length=q[i],
            iterations=int(iterations[i]),
            converged=bool(converged[i]),
            residual=float(residual[i]),
            telemetry=SolverTelemetry(
                iterations=int(iterations[i]),
                residual=float(residual[i]),
                converged=bool(converged[i]),
                wall_time_s=batch.wall_time_s,
                batch=batch,
            ),
        )
        for i, net in enumerate(networks)
    ]


#: explicit alias: the batched counterpart of the scalar ``bard_schweitzer``
bard_schweitzer_batch = solve_batch


def solve_symmetric_batch(
    visits: np.ndarray,
    service: np.ndarray,
    station_type: np.ndarray,
    populations: np.ndarray,
    tol: float = 1e-12,
    max_iter: int = 200_000,
    servers: np.ndarray | None = None,
    strict: bool = False,
) -> list[SymmetricSolution]:
    """Batched Bard-Schweitzer on the symmetric (SPMD) manifold.

    The batch axis stacks parameter points of one machine shape: ``visits``
    and ``service`` are ``(B, M)``, ``populations`` is ``(B,)`` integers and
    ``station_type`` is the shared ``(M,)`` labelling (identical for every
    point of one machine size).  ``servers`` is an optional ``(B, M)``
    Seidmann multi-server array.

    Per-point results are bitwise-identical to a single-point batch -- see
    the module docstring -- so the scalar
    :func:`~repro.queueing.mva_symmetric.solve_symmetric` is this kernel
    with ``B = 1``.
    """
    if fault_point("solve.raise") is not None:
        raise InjectedFault("injected failure at solve_symmetric_batch entry")
    t0 = time.perf_counter()
    v = np.atleast_2d(np.asarray(visits, dtype=np.float64))
    s = np.atleast_2d(np.asarray(service, dtype=np.float64))
    types = np.asarray(station_type)
    pops = np.atleast_1d(np.asarray(populations, dtype=np.int64))
    b_total, m = v.shape
    if s.shape != v.shape:
        raise ValueError("visits and service must share a (B, M) shape")
    if types.shape != (m,):
        raise ValueError(f"station_type shape {types.shape} != ({m},)")
    if pops.shape != (b_total,):
        raise ValueError(f"populations shape {pops.shape} != ({b_total},)")
    if np.any(pops < 0):
        raise ValueError("populations must be >= 0")
    if servers is None:
        extra = np.zeros((b_total, m))
    else:
        srv = np.atleast_2d(np.asarray(servers, dtype=np.float64))
        if srv.shape != v.shape:
            raise ValueError("servers must match the (B, M) visits shape")
        if np.any(srv < 1):
            raise ValueError("server counts must be >= 1")
        extra = s * (srv - 1.0) / srv
        s = s / srv
    if b_total == 0:
        return []

    labels = np.unique(types)
    type_masks = [(types == label).astype(np.float64) for label in labels]
    type_bools = [types == label for label in labels]

    def pooled_totals(queues: np.ndarray) -> np.ndarray:
        """Per-station all-class totals: the type-pooled class-0 queues.

        Pooling multiplies by a full-width 0/1 mask and reduces the
        C-contiguous product along the station axis.  Boolean fancy
        indexing (``queues[:, mask]``) would yield a non-contiguous
        intermediate whose reduction order -- and hence rounding -- depends
        on the batch size; the contiguous form is bitwise independent of
        the batch composition, which the backend-equality tests rely on.
        """
        queues = np.ascontiguousarray(queues)
        t_total = np.empty_like(queues)
        for mask, sel in zip(type_masks, type_bools):
            t_total[:, sel] = (queues * mask).sum(axis=1)[:, None]
        return t_total

    visited = v > 0
    n_visited = np.maximum(visited.sum(axis=1, keepdims=True), 1)
    popf = pops.astype(np.float64)
    q = np.where(visited, popf[:, None] / n_visited, 0.0)
    q[pops == 0] = 0.0

    w = np.zeros((b_total, m))
    x = np.zeros(b_total)
    iterations = np.zeros(b_total, dtype=np.int64)
    residual = np.zeros(b_total)
    converged = pops == 0  # empty points are trivially solved
    residual[~converged] = np.inf
    active = np.flatnonzero(~converged)
    trajectory: list[int] = []

    for it in range(1, max_iter + 1):
        if active.size == 0:
            break
        trajectory.append(int(active.size))
        q_a = q[active]
        pop_a = popf[active]
        t_total = pooled_totals(q_a)
        seen = t_total - q_a / pop_a[:, None]  # arriving customer's view (BS)
        w_a = s[active] * (1.0 + seen) + extra[active]
        denom = (v[active] * w_a).sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_a = np.where(denom > 0, pop_a / denom, 0.0)
        q_new = x_a[:, None] * v[active] * w_a
        delta = np.abs(q_new - q_a).max(axis=1)

        q[active] = q_new
        w[active] = w_a
        x[active] = x_a
        iterations[active] = it
        residual[active] = delta
        done = delta <= tol
        if done.any():
            converged[active[done]] = True
            active = active[~done]

    stragglers = b_total - int(converged.sum())
    if stragglers:
        _nonconvergence(
            "solve_symmetric_batch", stragglers,
            float(residual[~converged].max()), tol, max_iter, strict,
        )

    spec = fault_point("solve.nan")
    if spec is not None:  # poison one point's measures (chaos testing)
        i = int(spec.args.get("index", 0)) % b_total
        x[i] = np.nan
        w[i] = np.nan
        q[i] = np.nan

    total_queue = pooled_totals(q)
    batch = BatchTelemetry(
        batch_size=b_total,
        iterations=int(iterations.max(initial=0)),
        converged=int(converged.sum()),
        max_residual=float(np.max(residual, initial=0.0)),
        active_trajectory=tuple(trajectory),
        wall_time_s=time.perf_counter() - t0,
    )
    return [
        SymmetricSolution(
            throughput=float(x[i]),
            waiting=w[i],
            queue_length=q[i],
            total_queue=total_queue[i],
            iterations=int(iterations[i]),
            converged=bool(converged[i]),
            residual=float(residual[i]),
            telemetry=SolverTelemetry(
                iterations=int(iterations[i]),
                residual=float(residual[i]),
                converged=bool(converged[i]),
                wall_time_s=batch.wall_time_s,
                batch=batch,
            ),
        )
        for i in range(b_total)
    ]
