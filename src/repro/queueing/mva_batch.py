"""Batched Bard-Schweitzer: a whole lattice of networks as one fixed point.

Every figure and table of the paper is a parameter sweep whose points share
one network *shape* -- the same ``(C, M)`` class/station layout with
different service times, visit ratios and populations.  Solving such a
lattice point-by-point re-enters Python once per point; here the whole
lattice is packed into structure-of-arrays state
(:mod:`repro.queueing.kernels.soa`) and iterated by a solver kernel:

* ``"numpy"`` -- the masked vectorized reference
  (:mod:`repro.queueing.kernels.reference`); each iteration only the
  still-unconverged points are updated, and a point whose queue-length
  change drops below ``tol`` leaves the active set -- exactly like
  early-exit in batched inference.
* ``"numba"`` -- compiled per-point loops
  (:mod:`repro.queueing.kernels.compiled`), **bitwise-equal** to the
  reference by construction.
* ``"auto"`` (the default) -- the compiled kernel when numba is available,
  the reference otherwise.  Selection precedence: ``REPRO_SOLVE_KERNEL``
  < :func:`repro.configure(kernel=...) <repro.configure>` < the explicit
  ``kernel=`` argument here.

The per-point iterate sequence is unchanged by masking or kernel choice
(points never interact), so each point converges in the same number of
iterations, to the same values, as a scalar solve.

Numerical contract
------------------
Per-point arithmetic uses only elementwise operations and reductions along
the class/station axes, whose evaluation order does not depend on the batch
size.  :func:`solve_symmetric_batch` is therefore bitwise-identical across
batch compositions (``B = 1`` vs. ``B = 176`` give the same floats) **and
across kernels**, which is what lets
:func:`~repro.queueing.mva_symmetric.solve_symmetric` delegate here and
lets serial, batched and process-pool sweep backends emit
bitwise-identical records under any kernel.  :func:`solve_batch` (the
multi-class kernel) carries the same bitwise cross-kernel contract and is
property-tested pointwise-equivalent to
:func:`~repro.queueing.mva_approx.bard_schweitzer` to well below 1e-10.
The conformance suite (``tests/queueing/test_kernel_conformance.py``)
pins the full backend x kernel matrix.
"""

from __future__ import annotations

import time
import warnings
from typing import Sequence

import numpy as np

from ..resilience.faults import InjectedFault, fault_point
from .kernels import MulticlassSoA, SymmetricSoA, kernel_impl, resolve_kernel
from .mva_symmetric import SymmetricSolution
from .network import ClosedNetwork
from .solution import (
    BatchTelemetry,
    ConvergenceError,
    ConvergenceWarning,
    QNSolution,
    SolverTelemetry,
)

__all__ = ["solve_batch", "bard_schweitzer_batch", "solve_symmetric_batch"]


def _nonconvergence(label: str, stragglers: int, residual: float, tol: float,
                    max_iter: int, strict: bool) -> None:
    msg = (
        f"{label}: {stragglers} point(s) did not converge within "
        f"{max_iter} iterations (worst residual {residual:.3e} > tol {tol:.1e})"
    )
    if strict:
        raise ConvergenceError(msg)
    warnings.warn(msg, ConvergenceWarning, stacklevel=3)


def solve_batch(
    networks: Sequence[ClosedNetwork],
    tol: float = 1e-10,
    max_iter: int = 100_000,
    strict: bool = False,
    kernel: str | None = None,
) -> list[QNSolution]:
    """Solve a stack of same-shape closed networks with one batched AMVA.

    Parameters
    ----------
    networks:
        Network specifications; all must share the ``(C, M)`` shape (service
        times, visit ratios, populations and server counts may differ
        freely).  Zero-service (ideal-subsystem) stations are allowed, as in
        the scalar solver.
    tol / max_iter:
        Per-point convergence threshold and iteration cap (the scalar
        :func:`~repro.queueing.mva_approx.bard_schweitzer` defaults).
    strict:
        Raise :class:`ConvergenceError` if any point exhausts ``max_iter``;
        the default emits a :class:`ConvergenceWarning` and returns the last
        iterates (flagged ``converged=False``).
    kernel:
        Solver kernel: ``"auto"``, ``"numpy"`` or ``"numba"``; ``None``
        (default) honours :func:`repro.configure` and
        ``REPRO_SOLVE_KERNEL``.  Kernels are bitwise-interchangeable.

    Returns
    -------
    One :class:`QNSolution` per input network, in order, each carrying
    per-point ``iterations``/``residual`` and a shared
    :class:`~repro.queueing.solution.BatchTelemetry`.
    """
    if not networks:
        return []
    if fault_point("solve.raise") is not None:
        raise InjectedFault("injected failure at solve_batch entry")
    t0 = time.perf_counter()
    soa = MulticlassSoA.from_networks(networks)
    b_total = len(networks)
    kernel_name = resolve_kernel(kernel)
    res = kernel_impl(kernel_name).multiclass_fixed_point(soa, tol, max_iter)

    stragglers = b_total - int(res.converged.sum())
    if stragglers:
        _nonconvergence(
            "solve_batch", stragglers,
            float(res.residual[~res.converged].max()),
            tol, max_iter, strict,
        )

    x, w, q = res.x, res.w, res.q
    spec = fault_point("solve.nan")
    if spec is not None:  # poison one point's measures (chaos testing)
        i = int(spec.args.get("index", 0)) % b_total
        x[i] = np.nan
        w[i] = np.nan
        q[i] = np.nan

    batch = BatchTelemetry(
        batch_size=b_total,
        iterations=int(res.iterations.max(initial=0)),
        converged=int(res.converged.sum()),
        max_residual=float(np.max(res.residual, initial=0.0)),
        active_trajectory=res.trajectory,
        wall_time_s=time.perf_counter() - t0,
        kernel=kernel_name,
    )
    return [
        QNSolution(
            network=net,
            throughput=x[i],
            waiting=w[i],
            queue_length=q[i],
            iterations=int(res.iterations[i]),
            converged=bool(res.converged[i]),
            residual=float(res.residual[i]),
            telemetry=SolverTelemetry(
                iterations=int(res.iterations[i]),
                residual=float(res.residual[i]),
                converged=bool(res.converged[i]),
                wall_time_s=batch.wall_time_s,
                batch=batch,
            ),
        )
        for i, net in enumerate(networks)
    ]


#: explicit alias: the batched counterpart of the scalar ``bard_schweitzer``
bard_schweitzer_batch = solve_batch


def solve_symmetric_batch(
    visits: np.ndarray,
    service: np.ndarray,
    station_type: np.ndarray,
    populations: np.ndarray,
    tol: float = 1e-12,
    max_iter: int = 200_000,
    servers: np.ndarray | None = None,
    strict: bool = False,
    kernel: str | None = None,
) -> list[SymmetricSolution]:
    """Batched Bard-Schweitzer on the symmetric (SPMD) manifold.

    The batch axis stacks parameter points of one machine shape: ``visits``
    and ``service`` are ``(B, M)``, ``populations`` is ``(B,)`` integers and
    ``station_type`` is the shared ``(M,)`` labelling (identical for every
    point of one machine size).  ``servers`` is an optional ``(B, M)``
    Seidmann multi-server array.  ``kernel`` selects the solver kernel as
    in :func:`solve_batch`.

    Per-point results are bitwise-identical to a single-point batch under
    any kernel -- see the module docstring -- so the scalar
    :func:`~repro.queueing.mva_symmetric.solve_symmetric` is this kernel
    with ``B = 1``.
    """
    if fault_point("solve.raise") is not None:
        raise InjectedFault("injected failure at solve_symmetric_batch entry")
    t0 = time.perf_counter()
    soa = SymmetricSoA.pack(visits, service, station_type, populations, servers)
    b_total = soa.batch
    if b_total == 0:
        return []
    kernel_name = resolve_kernel(kernel)
    res = kernel_impl(kernel_name).symmetric_fixed_point(soa, tol, max_iter)

    stragglers = b_total - int(res.converged.sum())
    if stragglers:
        _nonconvergence(
            "solve_symmetric_batch", stragglers,
            float(res.residual[~res.converged].max()), tol, max_iter, strict,
        )

    x, w, q = res.x, res.w, res.q
    spec = fault_point("solve.nan")
    if spec is not None:  # poison one point's measures (chaos testing)
        i = int(spec.args.get("index", 0)) % b_total
        x[i] = np.nan
        w[i] = np.nan
        q[i] = np.nan

    total_queue = soa.pooled_totals(q)
    batch = BatchTelemetry(
        batch_size=b_total,
        iterations=int(res.iterations.max(initial=0)),
        converged=int(res.converged.sum()),
        max_residual=float(np.max(res.residual, initial=0.0)),
        active_trajectory=res.trajectory,
        wall_time_s=time.perf_counter() - t0,
        kernel=kernel_name,
    )
    return [
        SymmetricSolution(
            throughput=float(x[i]),
            waiting=w[i],
            queue_length=q[i],
            total_queue=total_queue[i],
            iterations=int(res.iterations[i]),
            converged=bool(res.converged[i]),
            residual=float(res.residual[i]),
            telemetry=SolverTelemetry(
                iterations=int(res.iterations[i]),
                residual=float(res.residual[i]),
                converged=bool(res.converged[i]),
                wall_time_s=batch.wall_time_s,
                batch=batch,
            ),
        )
        for i in range(b_total)
    ]
