"""Solution containers and solver telemetry shared by all MVA solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .network import ClosedNetwork

__all__ = [
    "QNSolution",
    "SolverTelemetry",
    "BatchTelemetry",
    "ConvergenceWarning",
    "ConvergenceError",
]


class ConvergenceWarning(RuntimeWarning):
    """A fixed-point solver exhausted ``max_iter`` without meeting its
    tolerance; the returned solution is the last iterate."""


class ConvergenceError(RuntimeError):
    """Raised instead of :class:`ConvergenceWarning` under ``strict=True``."""


@dataclass(frozen=True)
class BatchTelemetry:
    """What one batched fixed-point solve did, across the whole stack.

    ``active_trajectory[i]`` is the number of points still iterating when
    sweep iteration ``i + 1`` started -- converged points leave the active
    set exactly like early-exited sequences leave a batched-inference step,
    so the trajectory is the direct record of how much work the masking
    saved versus running every point to the slowest point's iteration count.
    """

    #: points in the stacked fixed point
    batch_size: int
    #: iterations until the last active point converged (or hit the cap)
    iterations: int
    #: points that met the tolerance
    converged: int
    #: largest final residual across the batch
    max_residual: float
    #: active-set size at the start of each iteration
    active_trajectory: tuple[int, ...]
    #: wall-clock seconds for the whole batch
    wall_time_s: float
    #: concrete solver kernel that ran ("numpy" or "numba")
    kernel: str = "numpy"

    @property
    def masked_iterations_saved(self) -> int:
        """Point-iterations skipped by masking vs. running the full batch to
        the final iteration count."""
        return self.batch_size * self.iterations - sum(self.active_trajectory)

    def to_dict(self) -> dict[str, object]:
        return {
            "batch_size": self.batch_size,
            "iterations": self.iterations,
            "converged": self.converged,
            "max_residual": float(self.max_residual),
            "active_trajectory": list(self.active_trajectory),
            "wall_time_s": float(self.wall_time_s),
            "masked_iterations_saved": self.masked_iterations_saved,
            "kernel": self.kernel,
        }


@dataclass(frozen=True)
class SolverTelemetry:
    """Per-point solver diagnostics (scalar or one slot of a batch)."""

    #: fixed-point iterations this point used
    iterations: int
    #: final max-abs queue-length change at this point
    residual: float
    converged: bool
    #: wall-clock seconds (the whole batch's for a batched solve)
    wall_time_s: float = 0.0
    #: batch-level view when this point was solved as part of a stack
    batch: BatchTelemetry | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "iterations": self.iterations,
            "residual": float(self.residual),
            "converged": self.converged,
            "wall_time_s": float(self.wall_time_s),
            "batch": None if self.batch is None else self.batch.to_dict(),
        }


@dataclass(frozen=True)
class QNSolution:
    """Steady-state performance of a :class:`ClosedNetwork`.

    Attributes
    ----------
    network:
        The solved specification.
    throughput:
        ``(C,)`` class throughputs ``X_c`` (cycles per time unit).
    waiting:
        ``(C, M)`` mean *per-visit* residence times ``W[c, m]`` (queueing +
        service; 0 where the class never visits or the station has no delay).
    queue_length:
        ``(C, M)`` mean number of class-``c`` customers at station ``m``.
    iterations:
        Fixed-point iterations used (0 for exact solvers).
    converged:
        Whether the solver met its tolerance (exact solvers: always True).
    residual:
        Final max-abs queue-length change (0.0 for exact solvers).
    telemetry:
        Optional :class:`SolverTelemetry` with wall time and, for batched
        solves, the batch-level active-set trajectory.
    """

    network: ClosedNetwork
    throughput: np.ndarray
    waiting: np.ndarray
    queue_length: np.ndarray
    iterations: int = 0
    converged: bool = True
    residual: float = 0.0
    telemetry: SolverTelemetry | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------ per station
    @property
    def utilization(self) -> np.ndarray:
        """``(C, M)`` utilization ``U[c, m] = X_c * v[c, m] * s[c, m]``."""
        return self.throughput[:, None] * self.network.demands

    @property
    def total_utilization(self) -> np.ndarray:
        """``(M,)`` total utilization per station (<= 1 at queueing stations)."""
        return self.utilization.sum(axis=0)

    @property
    def total_queue_length(self) -> np.ndarray:
        """``(M,)`` total mean customers per station."""
        return self.queue_length.sum(axis=0)

    # -------------------------------------------------------------- per class
    @property
    def cycle_time(self) -> np.ndarray:
        """``(C,)`` mean cycle time ``N_c / X_c`` (Little's law on the cycle)."""
        pops = self.network.populations.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.throughput > 0, pops / self.throughput, np.inf)

    def residence(self, cls: int) -> np.ndarray:
        """``(M,)`` total residence time of class ``cls`` per cycle,
        ``v[c, m] * W[c, m]``."""
        return self.network.visits[cls] * self.waiting[cls]

    # ------------------------------------------------------------ diagnostics
    def littles_law_residual(self) -> float:
        """Max absolute error of ``Q[c, m] == X_c * v[c, m] * W[c, m]``.

        Near zero for a converged solution; used by property tests.
        """
        predicted = (
            self.throughput[:, None] * self.network.visits * self.waiting
        )
        return float(np.max(np.abs(predicted - self.queue_length), initial=0.0))

    def population_residual(self) -> float:
        """Max absolute error of ``sum_m Q[c, m] == N_c``."""
        err = self.queue_length.sum(axis=1) - self.network.populations
        return float(np.max(np.abs(err), initial=0.0))
