"""Solution container shared by all MVA solvers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .network import ClosedNetwork

__all__ = ["QNSolution"]


@dataclass(frozen=True)
class QNSolution:
    """Steady-state performance of a :class:`ClosedNetwork`.

    Attributes
    ----------
    network:
        The solved specification.
    throughput:
        ``(C,)`` class throughputs ``X_c`` (cycles per time unit).
    waiting:
        ``(C, M)`` mean *per-visit* residence times ``W[c, m]`` (queueing +
        service; 0 where the class never visits or the station has no delay).
    queue_length:
        ``(C, M)`` mean number of class-``c`` customers at station ``m``.
    iterations:
        Fixed-point iterations used (0 for exact solvers).
    converged:
        Whether the solver met its tolerance (exact solvers: always True).
    """

    network: ClosedNetwork
    throughput: np.ndarray
    waiting: np.ndarray
    queue_length: np.ndarray
    iterations: int = 0
    converged: bool = True

    # ------------------------------------------------------------ per station
    @property
    def utilization(self) -> np.ndarray:
        """``(C, M)`` utilization ``U[c, m] = X_c * v[c, m] * s[c, m]``."""
        return self.throughput[:, None] * self.network.demands

    @property
    def total_utilization(self) -> np.ndarray:
        """``(M,)`` total utilization per station (<= 1 at queueing stations)."""
        return self.utilization.sum(axis=0)

    @property
    def total_queue_length(self) -> np.ndarray:
        """``(M,)`` total mean customers per station."""
        return self.queue_length.sum(axis=0)

    # -------------------------------------------------------------- per class
    @property
    def cycle_time(self) -> np.ndarray:
        """``(C,)`` mean cycle time ``N_c / X_c`` (Little's law on the cycle)."""
        pops = self.network.populations.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.throughput > 0, pops / self.throughput, np.inf)

    def residence(self, cls: int) -> np.ndarray:
        """``(M,)`` total residence time of class ``cls`` per cycle,
        ``v[c, m] * W[c, m]``."""
        return self.network.visits[cls] * self.waiting[cls]

    # ------------------------------------------------------------ diagnostics
    def littles_law_residual(self) -> float:
        """Max absolute error of ``Q[c, m] == X_c * v[c, m] * W[c, m]``.

        Near zero for a converged solution; used by property tests.
        """
        predicted = (
            self.throughput[:, None] * self.network.visits * self.waiting
        )
        return float(np.max(np.abs(predicted - self.queue_length), initial=0.0))

    def population_residual(self) -> float:
        """Max absolute error of ``sum_m Q[c, m] == N_c``."""
        err = self.queue_length.sum(axis=1) - self.network.populations
        return float(np.max(np.abs(err), initial=0.0))
