"""Asymptotic and balanced-job bounds for closed networks.

The paper explains its headline behaviors ("simple bottleneck analysis",
Section 3) with exactly these bounds: throughput is capped by the slowest
station's capacity and by the no-contention cycle time.  We expose them both
for single-class views, which is what the MMS bottleneck analysis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AsymptoticBounds", "asymptotic_bounds", "balanced_job_bounds"]


@dataclass(frozen=True)
class AsymptoticBounds:
    """Classic operational-analysis bounds for a single-class closed network."""

    #: total service demand per cycle, ``D = sum_m v_m s_m``
    total_demand: float
    #: largest per-station demand, ``D_max``
    max_demand: float
    #: population beyond which the bottleneck saturates, ``N* = D / D_max``
    saturation_population: float

    def throughput_upper(self, population: int) -> float:
        """``X(N) <= min(N / D, 1 / D_max)``."""
        if population <= 0:
            return 0.0
        caps = [population / self.total_demand if self.total_demand > 0 else np.inf]
        if self.max_demand > 0:
            caps.append(1.0 / self.max_demand)
        return float(min(caps))

    def throughput_lower(self, population: int) -> float:
        """Pessimistic bound ``X(N) >= N / (D + (N - 1) D_max)``.

        Worst case: every added customer queues behind all others at the
        bottleneck, adding a full ``D_max`` to the cycle.  Exact at ``N = 1``
        (no queueing: ``X = 1/D``).
        """
        if population <= 0:
            return 0.0
        d = self.total_demand
        if d <= 0:
            return np.inf
        return float(population / (d + (population - 1) * self.max_demand))


def asymptotic_bounds(visits: np.ndarray, service: np.ndarray) -> AsymptoticBounds:
    """Bounds from single-class visit ratios and service times."""
    demands = np.asarray(visits, dtype=np.float64) * np.asarray(
        service, dtype=np.float64
    )
    total = float(demands.sum())
    dmax = float(demands.max(initial=0.0))
    nstar = total / dmax if dmax > 0 else np.inf
    return AsymptoticBounds(
        total_demand=total, max_demand=dmax, saturation_population=nstar
    )


def balanced_job_bounds(
    visits: np.ndarray, service: np.ndarray, population: int
) -> tuple[float, float]:
    """Balanced-job bounds ``(X_lower, X_upper)`` (Zahorjan et al.).

    For a network of ``M`` queueing stations with total demand ``D``,
    average demand ``D_avg = D / M`` and maximum ``D_max``:

        N / (D + (N-1) D_max)  <=  X(N)  <=  min(1/D_max, N / (D + (N-1) D_avg))
    """
    if population <= 0:
        return 0.0, 0.0
    demands = np.asarray(visits, dtype=np.float64) * np.asarray(
        service, dtype=np.float64
    )
    demands = demands[demands > 0]
    if demands.size == 0:
        return np.inf, np.inf
    d = float(demands.sum())
    dmax = float(demands.max())
    davg = d / demands.size
    lower = population / (d + (population - 1) * dmax)
    upper = min(1.0 / dmax, population / (d + (population - 1) * davg))
    return float(lower), float(upper)
