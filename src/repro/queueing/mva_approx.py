"""Approximate MVA: the Bard-Schweitzer fixed point (paper's Figure 3).

The paper's AMVA algorithm estimates the queue length a newly arriving
class-``i`` customer sees at population ``N`` by the proportional reduction

    Q_m(N - e_i)  ~=  (N_i - 1)/N_i * Q_{i,m}(N)  +  sum_{j != i} Q_{j,m}(N)

and iterates steps 2-5 of Figure 3 until the queue lengths are stable.  The
implementation below is fully vectorized over classes x stations and supports
zero-service (ideal) stations and delay stations.

An optional Linearizer-style refinement (:func:`linearizer`) is provided as a
higher-accuracy alternative (Chandy & Neuse's scheme, simplified to the
standard three-pass core); the paper's results use plain Bard-Schweitzer.
"""

from __future__ import annotations

import time
import warnings

import numpy as np

from .network import ClosedNetwork
from .solution import (
    ConvergenceError,
    ConvergenceWarning,
    QNSolution,
    SolverTelemetry,
)

__all__ = ["bard_schweitzer", "linearizer"]


def _bs_waiting(
    service: np.ndarray,
    queueing: np.ndarray,
    q: np.ndarray,
    pops: np.ndarray,
    delay: np.ndarray | None = None,
) -> np.ndarray:
    """One arrival-theorem evaluation of the (C, M) waiting-time matrix.

    ``service`` is the queueing portion (``s/m`` under Seidmann) and
    ``delay`` the fixed multi-server pipeline term (zero for single
    servers).
    """
    q_total = q.sum(axis=0, keepdims=True)  # (1, M)
    with np.errstate(divide="ignore", invalid="ignore"):
        own_share = np.where(pops[:, None] > 0, q / pops[:, None], 0.0)
    seen = q_total - own_share  # (C, M): Q_m(N - e_c) estimate
    d = 0.0 if delay is None else delay
    return np.where(queueing[None, :], service * (1.0 + seen) + d, service + d)


def bard_schweitzer(
    network: ClosedNetwork,
    tol: float = 1e-10,
    max_iter: int = 100_000,
    strict: bool = False,
) -> QNSolution:
    """Solve a closed multi-class network with the Bard-Schweitzer AMVA.

    Parameters
    ----------
    network:
        Specification (zero service times allowed: such stations contribute
        no waiting -- the paper's "ideal subsystem").
    tol:
        Convergence threshold on the max absolute queue-length change
        (the paper's ``difference(n_im_new, n_im_old) > tolerance`` test).
    max_iter:
        Iteration cap; the fixed point is a contraction in practice and
        converges in tens of iterations for the paper's configurations.
        Exhausting it emits a :class:`ConvergenceWarning` (the result is
        still returned, flagged ``converged=False`` with its residual).
    strict:
        Raise :class:`ConvergenceError` instead of warning when the cap is
        exhausted.
    """
    t0 = time.perf_counter()
    c, m = network.num_classes, network.num_stations
    v = network.visits
    s, extra = network.seidmann_split()
    pops = network.populations.astype(np.float64)
    queueing = network.queueing_mask()

    # Figure 3, step 1: spread each class evenly over the stations it visits.
    visited = v > 0
    n_visited = np.maximum(visited.sum(axis=1, keepdims=True), 1)
    q = np.where(visited, pops[:, None] / n_visited, 0.0)

    x = np.zeros(c)
    w = np.zeros((c, m))
    converged = False
    it = 0
    delta = 0.0
    for it in range(1, max_iter + 1):
        w = _bs_waiting(s, queueing, q, pops, extra)  # step 2
        denom = np.einsum("cm,cm->c", v, w)  # step 3
        with np.errstate(divide="ignore", invalid="ignore"):
            x = np.where(denom > 0, pops / denom, 0.0)
        q_new = x[:, None] * v * w  # step 4
        delta = float(np.max(np.abs(q_new - q), initial=0.0))
        q = q_new
        if delta <= tol:  # step 5
            converged = True
            break
    if not converged and it:
        msg = (
            f"bard_schweitzer did not converge within {max_iter} iterations "
            f"(residual {delta:.3e} > tol {tol:.1e})"
        )
        if strict:
            raise ConvergenceError(msg)
        warnings.warn(msg, ConvergenceWarning, stacklevel=2)
    return QNSolution(
        network=network,
        throughput=x,
        waiting=w,
        queue_length=q,
        iterations=it,
        converged=converged,
        residual=delta,
        telemetry=SolverTelemetry(
            iterations=it,
            residual=delta,
            converged=converged,
            wall_time_s=time.perf_counter() - t0,
        ),
    )


def linearizer(
    network: ClosedNetwork,
    tol: float = 1e-8,
    max_outer: int = 50,
    inner_tol: float = 1e-10,
) -> QNSolution:
    """Linearizer-refined AMVA (Chandy-Neuse core scheme).

    Estimates the *fractional deviation* ``F[c, m] = Q[c, m]/N_c`` change
    between populations ``N`` and ``N - e_j`` by actually solving the reduced
    populations with Bard-Schweitzer-style cores, then correcting the arrival
    queue estimates.  Typically ~10x closer to exact MVA than plain
    Bard-Schweitzer at a few times the cost.
    """
    c, m = network.num_classes, network.num_stations
    v = network.visits
    s, extra = network.seidmann_split()
    pops = network.populations.astype(np.float64)
    queueing = network.queueing_mask()

    def core(pop_vec: np.ndarray, delta: np.ndarray) -> np.ndarray:
        """BS core at population ``pop_vec`` with deviation corrections.

        ``delta[j, c, m]`` corrects class-``c``'s fraction at station ``m`` as
        seen when one class-``j`` customer is removed.  Returns (C, M) queues.
        """
        visited = v > 0
        n_vis = np.maximum(visited.sum(axis=1, keepdims=True), 1)
        q = np.where(visited, pop_vec[:, None] / n_vis, 0.0)
        for _ in range(100_000):
            with np.errstate(divide="ignore", invalid="ignore"):
                frac = np.where(pop_vec[:, None] > 0, q / pop_vec[:, None], 0.0)
            # population seen by an arriving class-j customer
            seen = np.empty((c, m))
            for j in range(c):
                reduced = pop_vec.copy()
                if reduced[j] > 0:
                    reduced[j] -= 1
                est = (frac + delta[j]) * reduced[:, None]
                seen[j] = est.sum(axis=0)
            w_ = np.where(queueing[None, :], s * (1.0 + seen) + extra, s + extra)
            denom = np.einsum("cm,cm->c", v, w_)
            with np.errstate(divide="ignore", invalid="ignore"):
                x_ = np.where(denom > 0, pop_vec / denom, 0.0)
            q_new = x_[:, None] * v * w_
            if float(np.max(np.abs(q_new - q), initial=0.0)) <= inner_tol:
                return q_new
            q = q_new
        return q

    delta = np.zeros((c, c, m))
    q_full = core(pops, delta)
    for _ in range(max_outer):
        # Solve each one-customer-removed population with current deltas.
        fracs_reduced = np.empty((c, c, m))
        for j in range(c):
            reduced = pops.copy()
            if reduced[j] > 0:
                reduced[j] -= 1
            q_red = core(reduced, delta)
            with np.errstate(divide="ignore", invalid="ignore"):
                fracs_reduced[j] = np.where(
                    reduced[:, None] > 0, q_red / reduced[:, None], 0.0
                )
        with np.errstate(divide="ignore", invalid="ignore"):
            frac_full = np.where(pops[:, None] > 0, q_full / pops[:, None], 0.0)
        delta_new = fracs_reduced - frac_full[None, :, :]
        q_new = core(pops, delta_new)
        moved = float(np.max(np.abs(q_new - q_full), initial=0.0))
        delta, q_full = delta_new, q_new
        if moved <= tol:
            break

    # Final consistent measures from the converged queues.
    w = _bs_waiting(s, queueing, q_full, pops)
    # Recompute waiting via the linearizer's own arrival estimate for accuracy.
    with np.errstate(divide="ignore", invalid="ignore"):
        frac = np.where(pops[:, None] > 0, q_full / pops[:, None], 0.0)
    seen = np.empty((c, m))
    for j in range(c):
        reduced = pops.copy()
        if reduced[j] > 0:
            reduced[j] -= 1
        seen[j] = ((frac + delta[j]) * reduced[:, None]).sum(axis=0)
    w = np.where(queueing[None, :], s * (1.0 + seen) + extra, s + extra)
    denom = np.einsum("cm,cm->c", v, w)
    with np.errstate(divide="ignore", invalid="ignore"):
        x = np.where(denom > 0, pops / denom, 0.0)
    q_final = x[:, None] * v * w
    return QNSolution(
        network=network,
        throughput=x,
        waiting=w,
        queue_length=q_final,
        iterations=max_outer,
        converged=True,
    )
