"""Performance measures of the MMS analytical model (paper, Section 2).

The model predicts, per processing element (all PEs are statistically
identical under the SPMD workload):

* ``U_p``            -- processor utilization, Eq. (3): ``U_p = lambda_i * R``
* ``lambda_net``     -- message rate to the network, Eq. (2)
* ``S_obs``          -- observed one-way network latency, Eq. (1)
* ``L_obs``          -- observed memory latency (queueing included)

plus the subsystem utilizations and queue lengths used by the bottleneck
discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..params import MMSParams

__all__ = ["SubsystemStats", "MMSPerformance"]


@dataclass(frozen=True)
class SubsystemStats:
    """Aggregate view of one subsystem kind (processor/memory/in/out switch).

    Values are per-station averages over the class-0 view of the symmetric
    solution; by vertex transitivity they hold at every node.
    """

    #: total utilization of the busiest station of this kind
    utilization: float
    #: mean total queue length (all classes) at a station of this kind
    queue_length: float
    #: mean per-visit residence time (waiting + service) at this kind
    residence_per_visit: float

    def to_dict(self) -> dict[str, float]:
        """Plain-dict form (JSON-safe; round-trips through :meth:`from_dict`)."""
        return {
            "utilization": float(self.utilization),
            "queue_length": float(self.queue_length),
            "residence_per_visit": float(self.residence_per_visit),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "SubsystemStats":
        """Inverse of :meth:`to_dict`."""
        return cls(
            utilization=data["utilization"],
            queue_length=data["queue_length"],
            residence_per_visit=data["residence_per_visit"],
        )


@dataclass(frozen=True)
class MMSPerformance:
    """Model outputs for one parameter point."""

    params: MMSParams
    #: per-class cycle throughput ``lambda_i`` (memory accesses per time unit)
    access_rate: float
    #: processor utilization ``U_p`` in [0, 1] (useful computation only)
    processor_utilization: float
    #: fraction of time the processor is occupied (computation + context switch)
    processor_busy: float
    #: rate of messages a processor sends into the network, ``lambda_net``
    lambda_net: float
    #: observed one-way network latency per remote access (0 if no traffic)
    s_obs: float
    #: observed memory latency per access (visit-weighted over all modules)
    l_obs: float
    #: observed latency at the local module only
    l_obs_local: float
    #: observed latency at remote modules only (0 if no remote traffic)
    l_obs_remote: float
    #: mean observed round-trip time of a remote access (network + memory)
    remote_round_trip: float
    #: per-subsystem aggregates
    processor: SubsystemStats = field(repr=False, default=None)  # type: ignore[assignment]
    memory: SubsystemStats = field(repr=False, default=None)  # type: ignore[assignment]
    inbound: SubsystemStats = field(repr=False, default=None)  # type: ignore[assignment]
    outbound: SubsystemStats = field(repr=False, default=None)  # type: ignore[assignment]
    #: solver metadata
    method: str = "symmetric"
    iterations: int = 0
    converged: bool = True
    #: final max-abs queue-length change of the fixed point (0.0 for exact)
    residual: float = 0.0
    #: per-PE processor utilizations when the workload is asymmetric
    #: (hotspot); None under SPMD symmetry, where every PE matches ``U_p``
    per_class_utilization: np.ndarray | None = field(default=None, repr=False)

    @property
    def system_throughput(self) -> float:
        """Aggregate useful compute rate, the paper's ``P * U_p`` (Figure 10)."""
        return self.params.arch.num_processors * self.processor_utilization

    @property
    def cycle_time(self) -> float:
        """Mean time between successive executions of one thread,
        ``n_t / lambda_i``."""
        if self.access_rate <= 0:
            return np.inf
        return self.params.workload.num_threads / self.access_rate

    @property
    def effective_access_cost(self) -> float:
        """Processor idle time attributable to each memory access,
        ``1/lambda_i - (R + C)``.

        This is the quantity a Kurihara-style "memory access cost" analysis
        measures; the paper argues (Section 1) that it is *not* a direct
        indicator of latency tolerance -- see
        :mod:`repro.core.baselines` and the ablation benchmark.
        """
        if self.access_rate <= 0:
            return np.inf
        wl, arch = self.params.workload, self.params.arch
        return max(0.0, 1.0 / self.access_rate - (wl.runlength + arch.context_switch))

    @property
    def observed_access_latency(self) -> float:
        """Mean response time of a memory access as seen by a thread:
        local and remote mixed by ``p_remote``."""
        p = self.params.workload.p_remote
        return (1.0 - p) * self.l_obs_local + p * self.remote_round_trip

    def to_dict(self) -> dict[str, object]:
        """Self-contained JSON-safe form.

        Python's float repr round-trips exactly, so serializing a solved
        performance through JSON and :meth:`from_dict` reproduces every
        measure bit-for-bit -- the property the :mod:`repro.runner` result
        cache relies on (a cache hit must be indistinguishable from a fresh
        solve).
        """
        pcu = self.per_class_utilization
        return {
            "params": self.params.to_dict(),
            "access_rate": float(self.access_rate),
            "processor_utilization": float(self.processor_utilization),
            "processor_busy": float(self.processor_busy),
            "lambda_net": float(self.lambda_net),
            "s_obs": float(self.s_obs),
            "l_obs": float(self.l_obs),
            "l_obs_local": float(self.l_obs_local),
            "l_obs_remote": float(self.l_obs_remote),
            "remote_round_trip": float(self.remote_round_trip),
            "processor": self.processor.to_dict() if self.processor else None,
            "memory": self.memory.to_dict() if self.memory else None,
            "inbound": self.inbound.to_dict() if self.inbound else None,
            "outbound": self.outbound.to_dict() if self.outbound else None,
            "method": self.method,
            "iterations": int(self.iterations),
            "converged": bool(self.converged),
            "residual": float(self.residual),
            "per_class_utilization": (
                None if pcu is None else [float(u) for u in np.asarray(pcu)]
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MMSPerformance":
        """Inverse of :meth:`to_dict`."""

        def stats(key: str) -> SubsystemStats | None:
            raw = data.get(key)
            return None if raw is None else SubsystemStats.from_dict(raw)

        pcu = data.get("per_class_utilization")
        return cls(
            params=MMSParams.from_dict(data["params"]),
            access_rate=data["access_rate"],
            processor_utilization=data["processor_utilization"],
            processor_busy=data["processor_busy"],
            lambda_net=data["lambda_net"],
            s_obs=data["s_obs"],
            l_obs=data["l_obs"],
            l_obs_local=data["l_obs_local"],
            l_obs_remote=data["l_obs_remote"],
            remote_round_trip=data["remote_round_trip"],
            processor=stats("processor"),
            memory=stats("memory"),
            inbound=stats("inbound"),
            outbound=stats("outbound"),
            method=data.get("method", "symmetric"),
            iterations=data.get("iterations", 0),
            converged=data.get("converged", True),
            residual=data.get("residual", 0.0),
            per_class_utilization=(
                None if pcu is None else np.asarray(pcu, dtype=float)
            ),
        )

    def summary(self) -> dict[str, float]:
        """Flat dict of the headline measures (for tables/CSV)."""
        return {
            "U_p": self.processor_utilization,
            "lambda_net": self.lambda_net,
            "S_obs": self.s_obs,
            "L_obs": self.l_obs,
            "throughput": self.system_throughput,
            "access_rate": self.access_rate,
        }
