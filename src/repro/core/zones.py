"""Operating-zone boundary finder.

The paper derives the critical ``p_remote`` (Eq. 5) from an unloaded
bottleneck argument; this module finds *measured* zone boundaries by
bisecting the solved tolerance index along any parameter axis -- e.g.,
"up to which remote fraction does this machine stay in the tolerated zone?"
or "how many threads do I need to reach tol 0.8 here?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..params import MMSParams
from .tolerance import memory_tolerance, network_tolerance

__all__ = ["ZoneBoundary", "zone_boundary", "threads_for_tolerance"]


def _tolerance(params: MMSParams, subsystem: str) -> float:
    if subsystem == "network":
        return network_tolerance(params).index
    if subsystem == "memory":
        return memory_tolerance(params).index
    raise ValueError(f"unknown subsystem {subsystem!r}")


@dataclass(frozen=True)
class ZoneBoundary:
    """Result of a boundary search along one axis."""

    axis: str
    subsystem: str
    threshold: float
    #: axis value at which the tolerance crosses the threshold
    value: float
    #: tolerance measured at ``value``
    tolerance: float
    #: True when the tolerance never crosses inside the bracket
    saturated: bool = False


def zone_boundary(
    params: MMSParams,
    axis: str = "p_remote",
    subsystem: str = "network",
    threshold: float = 0.8,
    lo: float = 0.0,
    hi: float = 1.0,
    iterations: int = 40,
) -> ZoneBoundary:
    """Bisect the ``axis`` value where ``tol_subsystem`` crosses ``threshold``.

    Assumes the tolerance is monotone along the axis inside ``[lo, hi]``
    (true for ``p_remote``, ``switch_delay`` and ``memory_latency`` on this
    model).  Returns a saturated result pinned to the bracket edge when the
    whole bracket sits on one side of the threshold.
    """
    def tol_at(v: float) -> float:
        return _tolerance(params.with_(**{axis: v}), subsystem)

    t_lo, t_hi = tol_at(lo), tol_at(hi)
    decreasing = t_lo >= t_hi
    above_lo = (t_lo >= threshold) if decreasing else (t_lo <= threshold)
    above_hi = (t_hi >= threshold) if decreasing else (t_hi <= threshold)
    if above_lo == above_hi:
        # no crossing inside the bracket
        edge = hi if (t_hi >= threshold) == decreasing or t_hi >= threshold else lo
        return ZoneBoundary(
            axis=axis,
            subsystem=subsystem,
            threshold=threshold,
            value=edge,
            tolerance=tol_at(edge),
            saturated=True,
        )
    a, b = lo, hi
    for _ in range(iterations):
        mid = 0.5 * (a + b)
        if (tol_at(mid) >= threshold) == decreasing:
            a = mid
        else:
            b = mid
    value = 0.5 * (a + b)
    return ZoneBoundary(
        axis=axis,
        subsystem=subsystem,
        threshold=threshold,
        value=value,
        tolerance=tol_at(value),
    )


def threads_for_tolerance(
    params: MMSParams,
    subsystem: str = "network",
    threshold: float = 0.8,
    max_threads: int = 64,
) -> int | None:
    """Smallest ``n_t`` reaching the tolerance threshold (None if never).

    Linear scan (tolerance is monotone but integer-valued axis); the answer
    for the paper's defaults is the "5 to 8 threads" rule of thumb.
    """
    for nt in range(1, max_threads + 1):
        if _tolerance(params.with_(num_threads=nt), subsystem) >= threshold:
            return nt
    return None
