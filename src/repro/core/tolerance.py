"""The tolerance index -- the paper's contribution (Section 4).

    tol_subsystem = U_p(real subsystem) / U_p(ideal subsystem)

An *ideal subsystem* offers **zero delay** (Definition 4.1).  The paper
prefers zero delay over "contention-less with finite delay" because a
zero-delay ideal is invariant under machine scaling and data placement; we
implement the zero-delay ideal as the default and also the paper's
"modify application parameters" alternative (``p_remote = 0`` for the
network), which is what one would use on a real machine.

Zones (Section 4):

* ``tol >= 0.8``       -- latency **tolerated**
* ``0.5 <= tol < 0.8`` -- **partially** tolerated
* ``tol < 0.5``        -- **not** tolerated

A tolerance index slightly above 1 is possible and meaningful (Section 7):
with good locality a finite network stages remote accesses like a pipeline and
relieves memory contention relative to the zero-delay ideal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..params import MMSParams
from .metrics import MMSPerformance
from .model import MMSModel

__all__ = [
    "ToleranceZone",
    "ToleranceResult",
    "classify",
    "network_tolerance",
    "memory_tolerance",
    "tolerance_report",
    "TOLERATED_THRESHOLD",
    "PARTIAL_THRESHOLD",
]

TOLERATED_THRESHOLD = 0.8
PARTIAL_THRESHOLD = 0.5


class ToleranceZone(enum.Enum):
    """The paper's three operating regions."""

    TOLERATED = "tolerated"
    PARTIAL = "partially tolerated"
    NOT_TOLERATED = "not tolerated"


def classify(tol: float) -> ToleranceZone:
    """Zone of a tolerance-index value."""
    if tol >= TOLERATED_THRESHOLD:
        return ToleranceZone.TOLERATED
    if tol >= PARTIAL_THRESHOLD:
        return ToleranceZone.PARTIAL
    return ToleranceZone.NOT_TOLERATED


@dataclass(frozen=True)
class ToleranceResult:
    """A tolerance index together with both systems' performance."""

    subsystem: str
    ideal_method: str
    index: float
    actual: MMSPerformance
    ideal: MMSPerformance

    @property
    def zone(self) -> ToleranceZone:
        return classify(self.index)

    def __float__(self) -> float:
        return self.index


def _ratio(actual: MMSPerformance, ideal: MMSPerformance) -> float:
    if ideal.processor_utilization <= 0:
        return 1.0 if actual.processor_utilization <= 0 else float("inf")
    return actual.processor_utilization / ideal.processor_utilization


def network_tolerance(
    params: MMSParams,
    ideal: str = "zero_delay",
    method: str = "auto",
    actual: MMSPerformance | None = None,
) -> ToleranceResult:
    """``tol_network`` for a parameter point.

    Parameters
    ----------
    ideal:
        ``"zero_delay"`` -- the ideal system has ``S = 0`` (paper's preferred
        definition; keeps the remote access pattern intact).
        ``"local_only"`` -- the ideal system has ``p_remote = 0`` (the paper's
        measurable alternative for existing machines).
    actual:
        Optionally pass an already-solved performance to avoid re-solving.
    """
    if ideal == "zero_delay":
        ideal_params = params.with_(switch_delay=0.0)
    elif ideal == "local_only":
        ideal_params = params.with_(p_remote=0.0)
    else:
        raise ValueError(f"unknown ideal-system definition {ideal!r}")
    actual_perf = actual or MMSModel(params).solve(method=method)
    ideal_perf = MMSModel(ideal_params).solve(method=method)
    return ToleranceResult(
        subsystem="network",
        ideal_method=ideal,
        index=_ratio(actual_perf, ideal_perf),
        actual=actual_perf,
        ideal=ideal_perf,
    )


def memory_tolerance(
    params: MMSParams,
    method: str = "auto",
    actual: MMSPerformance | None = None,
) -> ToleranceResult:
    """``tol_memory``: ideal system has a zero-delay memory (``L = 0``)."""
    actual_perf = actual or MMSModel(params).solve(method=method)
    ideal_perf = MMSModel(params.with_(memory_latency=0.0)).solve(method=method)
    return ToleranceResult(
        subsystem="memory",
        ideal_method="zero_delay",
        index=_ratio(actual_perf, ideal_perf),
        actual=actual_perf,
        ideal=ideal_perf,
    )


def tolerance_report(
    params: MMSParams, method: str = "auto"
) -> dict[str, ToleranceResult]:
    """Both tolerance indices for a point, sharing one actual-system solve.

    The paper's Section 6 observation -- high performance requires *both*
    latencies tolerated (``U_p ~ tol_memory * tol_network`` when ``R <~ L``) --
    falls out of comparing the two entries.
    """
    actual = MMSModel(params).solve(method=method)
    return {
        "network": network_tolerance(params, method=method, actual=actual),
        "memory": memory_tolerance(params, method=method, actual=actual),
    }
