"""Open-model network latency estimates (the Agarwal-[9] style baseline).

The paper's reference [9] analyzes interconnection networks with *open*
queueing models: each switch is an M/M/1 queue driven by an externally
fixed injection rate.  The MMS paper instead closes the loop -- responses
gate further injections -- which is what bounds ``lambda_net`` at Eq. (4)'s
rate instead of letting latency diverge.

These functions expose the open model so the difference is measurable
(``bench_ablation_open_vs_closed``): at light load open and closed agree;
approaching saturation the open model's latency diverges while the closed
model self-limits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import MMSParams
from ..workload import pattern_for

__all__ = ["OpenNetworkEstimate", "open_network_latency"]


@dataclass(frozen=True)
class OpenNetworkEstimate:
    """Open-model view of the network at a given injection rate."""

    #: injection rate used (remote messages per PE per time unit)
    lambda_net: float
    #: per-switch utilizations
    rho_inbound: float
    rho_outbound: float
    #: one-way network latency estimate (inf when any switch saturates)
    s_obs: float

    @property
    def stable(self) -> bool:
        return self.rho_inbound < 1.0 and self.rho_outbound < 1.0


def open_network_latency(
    params: MMSParams, lambda_net: float
) -> OpenNetworkEstimate:
    """M/M/1-per-switch estimate of the one-way network latency.

    By symmetry each PE's inbound switch carries ``lambda_net * 2 * d_avg``
    traffic and its outbound switch ``lambda_net * 2`` (requests out +
    responses out); each is treated as an independent M/M/1 queue of service
    ``S``, so the one-way trip (one outbound visit + ``d_avg`` inbound
    visits) costs

        S_obs = S/(1 - rho_out) + d_avg * S/(1 - rho_in)

    Valid for SPMD traffic on the torus; diverges at Eq. (4)'s rate.
    """
    if lambda_net < 0:
        raise ValueError(f"negative injection rate {lambda_net}")
    arch = params.arch
    s = arch.switch_delay
    torus = arch.torus
    if torus.num_nodes == 1 or s == 0:
        return OpenNetworkEstimate(
            lambda_net=lambda_net, rho_inbound=0.0, rho_outbound=0.0, s_obs=0.0
        )
    d_avg = pattern_for(params.workload).d_avg(torus)
    rho_in = lambda_net * 2.0 * d_avg * s
    rho_out = lambda_net * 2.0 * s
    if rho_in >= 1.0 or rho_out >= 1.0:
        s_obs = float("inf")
    else:
        s_obs = s / (1.0 - rho_out) + d_avg * s / (1.0 - rho_in)
    return OpenNetworkEstimate(
        lambda_net=lambda_net,
        rho_inbound=rho_in,
        rho_outbound=rho_out,
        s_obs=s_obs,
    )
