"""Baseline analytic models the paper positions itself against.

* :func:`agarwal_utilization` -- the classic contention-free multithreaded
  processor model (Agarwal, "Performance tradeoffs in multithreaded
  processors"): utilization rises linearly with ``n_t`` until the fixed
  round-trip latency is fully hidden, then saturates.  It ignores queueing
  feedback, which is precisely what the paper's CQN model adds.

* :func:`kurihara_access_cost` -- the "memory access cost" view of Kurihara
  et al., the only related work the paper cites on quantifying latency
  hiding.  The paper's conjecture (Section 1) is that access cost is *not* a
  direct indicator of latency tolerance; the ablation benchmark
  ``bench_ablation_access_cost.py`` demonstrates this by exhibiting parameter
  points with nearly equal access cost but different tolerance zones.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import MMSParams
from ..workload import pattern_for
from .metrics import MMSPerformance
from .model import MMSModel

__all__ = [
    "agarwal_utilization",
    "AgarwalPrediction",
    "kurihara_access_cost",
    "AccessCostReport",
]


@dataclass(frozen=True)
class AgarwalPrediction:
    """Contention-free multithreading model output."""

    #: unloaded mean round-trip latency a thread waits out
    latency: float
    #: threads needed to fully hide the latency, ``1 + latency / (R + C)``
    saturation_threads: float
    #: predicted processor utilization
    utilization: float


def agarwal_utilization(params: MMSParams) -> AgarwalPrediction:
    """Linear-then-saturate utilization with *fixed* (uncontended) latencies.

    A thread's cycle is ``R_eff`` of computation plus a wait ``T`` (the
    unloaded memory/network response).  With ``n_t`` threads the processor
    overlaps waits until ``n_t * R_eff >= R_eff + T``:

        U_p = R / R_eff * min(1, n_t * R_eff / (R_eff + T))
    """
    arch, wl = params.arch, params.workload
    r_eff = wl.runlength + arch.context_switch
    torus = arch.torus
    if torus.num_nodes > 1 and wl.p_remote > 0:
        d_avg = pattern_for(wl).d_avg(torus)
        remote_rt = 2.0 * (d_avg + 1.0) * arch.switch_delay + arch.memory_latency
    else:
        remote_rt = arch.memory_latency
    latency = (1.0 - wl.p_remote) * arch.memory_latency + wl.p_remote * remote_rt
    n_star = 1.0 + latency / r_eff if r_eff > 0 else 1.0
    busy = min(1.0, wl.num_threads * r_eff / (r_eff + latency))
    useful = busy * (wl.runlength / r_eff if r_eff > 0 else 1.0)
    return AgarwalPrediction(
        latency=latency, saturation_threads=n_star, utilization=useful
    )


@dataclass(frozen=True)
class AccessCostReport:
    """Kurihara-style memory access cost for a solved point."""

    #: observed mean response time of an access (queueing included)
    observed_latency: float
    #: processor idle time attributable per access (the 'cost' actually paid)
    effective_cost: float
    #: fraction of the observed latency hidden by multithreading
    hidden_fraction: float


def kurihara_access_cost(
    params: MMSParams, performance: MMSPerformance | None = None
) -> AccessCostReport:
    """Memory-access-cost analysis of a parameter point.

    ``effective_cost = 1/lambda_i - R_eff`` is what the processor actually
    stalls per access; ``observed_latency`` is what a single access
    experiences.  Their gap is the latency hidden by other threads.
    """
    perf = performance or MMSModel(params).solve()
    observed = perf.observed_access_latency
    cost = perf.effective_access_cost
    hidden = 1.0 - (cost / observed) if observed > 0 else 1.0
    return AccessCostReport(
        observed_latency=observed,
        effective_cost=cost,
        hidden_fraction=max(0.0, min(1.0, hidden)),
    )
