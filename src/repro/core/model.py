"""The MMS analytical model: parameters -> closed queueing network -> measures.

This is the paper's Section 2 model.  Each PE contributes four stations:

====================  ==========================  =====================
station               service time                visited by class i
====================  ==========================  =====================
processor ``P_j``     ``R + C`` (exponential)     only ``j == i`` (ratio 1)
memory ``M_j``        ``L``                       ``em[i, j]``
inbound switch        ``S``                       ``ei[i, j]``
outbound switch       ``S``                       ``eo[i, j]``
====================  ==========================  =====================

Classes are the per-processor thread pools (``n_t`` customers each).  The
network has a product-form solution (paper, Section 2) and is solved with:

* ``"symmetric"`` (default) -- Bard-Schweitzer restricted to the SPMD
  symmetric manifold, O(stations) per iteration (exactly the full AMVA answer
  for symmetric inputs);
* ``"amva"`` -- full multi-class Bard-Schweitzer (the paper's Figure 3);
* ``"linearizer"`` -- higher-order AMVA refinement;
* ``"exact"`` -- exact multi-class MVA (tiny instances; used to bound AMVA
  error, cf. the paper's remark on state-space explosion).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..obs import registry as obs_registry
from ..obs import trace_span
from ..params import MMSParams
from ..queueing import (
    BatchTelemetry,
    ClosedNetwork,
    QNSolution,
    bard_schweitzer,
    exact_mva,
    linearizer,
    solve_batch,
    solve_symmetric,
    solve_symmetric_batch,
)
from ..workload import VisitRatios, pattern_for, visit_ratios_for
from .metrics import MMSPerformance, SubsystemStats

__all__ = ["MMSModel", "solve", "solve_points", "STATION_TYPES"]

#: subsystem kind labels used for station grouping
STATION_TYPES = ("processor", "memory", "inbound", "outbound")


class MMSModel:
    """Analytical model of a multithreaded multiprocessor system.

    Parameters
    ----------
    params:
        The machine + workload point.
    pattern:
        Optional :class:`~repro.workload.AccessPattern` overriding the
        workload's named pattern -- e.g. an
        :class:`~repro.workload.EmpiricalPattern` derived from a data
        distribution (:mod:`repro.workload.data_layout`).

    >>> from repro.params import paper_defaults
    >>> perf = MMSModel(paper_defaults()).solve()
    >>> 0.0 < perf.processor_utilization <= 1.0
    True
    """

    def __init__(self, params: MMSParams, pattern=None):
        self.params = params
        self._pattern = pattern
        self._visits: VisitRatios | None = None

    # ------------------------------------------------------------ components
    @property
    def pattern(self):
        """The effective access pattern (override or resolved from params)."""
        if self._pattern is not None:
            return self._pattern
        return pattern_for(self.params.workload)

    @property
    def visit_ratios(self) -> VisitRatios:
        """Visit-ratio matrices (built lazily, cached)."""
        if self._visits is None:
            if self._pattern is None:
                self._visits = visit_ratios_for(self.params)
            else:
                from ..workload import build_visit_ratios

                self._visits = build_visit_ratios(
                    self.params.arch.torus,
                    self.params.workload.p_remote,
                    self._pattern,
                )
        return self._visits

    @property
    def d_avg(self) -> float:
        """Average remote distance of the configured access pattern."""
        torus = self.params.arch.torus
        if torus.num_nodes == 1:
            return 0.0
        return self.pattern.d_avg(torus)

    @property
    def is_symmetric(self) -> bool:
        """Whether the symmetric fast path applies: SPMD pattern on a
        vertex-transitive machine (torus).  Meshes are never symmetric."""
        if not self.params.arch.wraparound:
            return False
        if self._pattern is not None:
            return bool(self._pattern.is_symmetric)
        return self.params.workload.is_symmetric

    def station_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Class-0 ``(visits, service, station_type, servers)`` arrays
        (length ``4P``).

        Station order: processors ``0..P-1``, memories ``P..2P-1``, inbound
        switches ``2P..3P-1``, outbound switches ``3P..4P-1``.
        """
        arch, wl = self.params.arch, self.params.workload
        p = arch.num_processors
        vr = self.visit_ratios
        visits = np.concatenate(
            [
                np.eye(1, p, 0).ravel(),  # processor 0 once per cycle
                vr.memory[0],
                vr.inbound[0],
                vr.outbound[0],
            ]
        )
        service = np.concatenate(
            [
                np.full(p, wl.runlength + arch.context_switch),
                np.full(p, arch.memory_latency),
                np.full(p, arch.switch_delay),
                np.full(p, arch.switch_delay),
            ]
        )
        station_type = np.repeat(np.arange(4), p)
        servers = np.ones(4 * p, dtype=np.int64)
        servers[p : 2 * p] = arch.memory_ports
        return visits, service, station_type, servers

    def build_network(self) -> ClosedNetwork:
        """The full multi-class :class:`ClosedNetwork` (``P`` classes, ``4P``
        stations) -- what the non-symmetric solvers consume."""
        arch, wl = self.params.arch, self.params.workload
        p = arch.num_processors
        vr = self.visit_ratios
        visits = np.concatenate(
            [np.eye(p), vr.memory, vr.inbound, vr.outbound], axis=1
        )
        service = np.concatenate(
            [
                np.full(p, wl.runlength + arch.context_switch),
                np.full(p, arch.memory_latency),
                np.full(p, arch.switch_delay),
                np.full(p, arch.switch_delay),
            ]
        )
        names = tuple(
            f"{kind}{j}" for kind in ("proc", "mem", "in", "out") for j in range(p)
        )
        servers = np.ones(4 * p, dtype=np.int64)
        servers[p : 2 * p] = arch.memory_ports
        return ClosedNetwork(
            visits=visits,
            service=service,
            populations=np.full(p, wl.num_threads),
            names=names,
            servers=tuple(servers),
        )

    # ----------------------------------------------------------------- solve
    def solve(self, method: str = "auto", tol: float = 1e-12) -> MMSPerformance:
        """Solve the model and derive the paper's performance measures.

        ``method="auto"`` picks the symmetric fast path for SPMD workloads
        and the full multi-class AMVA for asymmetric ones (hotspot).

        Every solve is observable: a ``solver.solve`` span (when tracing is
        enabled) and ``solver.*`` metrics record the resolved method,
        iteration count, and final residual -- the per-point view that
        :class:`~repro.queueing.SolverTelemetry` used to carry ad hoc.
        """
        with trace_span("solver.solve") as sp:
            perf = self._solve_impl(method, tol)
            sp.set(
                method=perf.method,
                iterations=perf.iterations,
                residual=perf.residual,
                converged=perf.converged,
                processors=self.params.arch.num_processors,
            )
            _record_point_metrics(perf)
            return perf

    def _solve_impl(self, method: str, tol: float) -> MMSPerformance:
        if method == "auto":
            method = "symmetric" if self.is_symmetric else "amva"
        if method == "symmetric":
            if not self.is_symmetric:
                why = (
                    "a mesh machine is not vertex transitive"
                    if not self.params.arch.wraparound
                    else f"the {self.params.workload.pattern!r} pattern is asymmetric"
                )
                raise ValueError(
                    f"the symmetric solver requires SPMD symmetry; {why} "
                    "-- use method='amva' (or 'auto')"
                )
            visits, service, station_type, servers = self.station_arrays()
            sol = solve_symmetric(
                visits,
                service,
                station_type,
                self.params.workload.num_threads,
                tol=tol,
                servers=servers,
            )
            return self._measures(
                visits,
                sol.waiting,
                sol.queue_length,
                sol.total_queue,
                sol.throughput,
                method,
                sol.iterations,
                sol.converged,
                residual=sol.residual,
            )
        if method in ("amva", "linearizer", "exact"):
            solver = {
                "amva": bard_schweitzer,
                "linearizer": linearizer,
                "exact": exact_mva,
            }[method]
            network = self.build_network()
            qsol: QNSolution = solver(network)  # type: ignore[operator]
            if self.is_symmetric:
                visits = network.visits[0]
                return self._measures(
                    visits,
                    qsol.waiting[0],
                    qsol.queue_length[0],
                    qsol.total_queue_length,
                    float(qsol.throughput[0]),
                    method,
                    qsol.iterations,
                    qsol.converged,
                    residual=qsol.residual,
                )
            return self._measures_aggregate(network, qsol, method)
        raise ValueError(
            f"unknown method {method!r}; pick from symmetric/amva/linearizer/exact"
        )

    def _measures_aggregate(
        self, network: "ClosedNetwork", qsol: QNSolution, method: str
    ) -> MMSPerformance:
        """Rate-weighted machine-wide measures for asymmetric workloads.

        Latencies are averaged over *accesses* (class throughputs weight
        each class's view); utilizations report the busiest station of each
        kind -- for a hotspot that is the hot memory module.
        """
        arch, wl = self.params.arch, self.params.workload
        p = arch.num_processors
        proc = slice(0, p)
        mem = slice(p, 2 * p)
        inb = slice(2 * p, 3 * p)
        outb = slice(3 * p, 4 * p)

        x = qsol.throughput  # (C,)
        x_sum = float(x.sum())
        x_avg = x_sum / p
        v = network.visits
        w = qsol.waiting

        per_class_u = x * wl.runlength
        u_p = float(per_class_u.mean())
        busy = x_avg * (wl.runlength + arch.context_switch)
        lam_net = x_avg * wl.p_remote

        # access-weighted memory latency (each class issues one access/cycle)
        v_mem, w_mem = v[:, mem], w[:, mem]
        rate_mem = x[:, None] * v_mem
        l_obs = float((rate_mem * w_mem).sum() / x_sum) if x_sum > 0 else 0.0
        local_rates = np.array([rate_mem[c, c] for c in range(p)])
        local_w = np.array([w_mem[c, c] for c in range(p)])
        l_local = (
            float(np.dot(local_rates, local_w) / local_rates.sum())
            if local_rates.sum() > 0
            else 0.0
        )
        remote_rate = rate_mem.copy()
        for c in range(p):
            remote_rate[c, c] = 0.0
        rem_total = float(remote_rate.sum())
        l_remote = (
            float((remote_rate * w_mem).sum() / rem_total) if rem_total > 0 else 0.0
        )

        net_residence = float(
            (x[:, None] * (v[:, inb] * w[:, inb])).sum()
            + (x[:, None] * (v[:, outb] * w[:, outb])).sum()
        )
        s_obs = (
            net_residence / (2.0 * wl.p_remote * x_sum)
            if wl.p_remote > 0 and x_sum > 0
            else 0.0
        )
        round_trip = 2.0 * s_obs + l_remote if wl.p_remote > 0 else 0.0

        total_util = qsol.utilization.sum(axis=0) / np.asarray(network.servers)
        total_queue = qsol.total_queue_length

        def stats(sl: slice) -> SubsystemStats:
            rates = x[:, None] * v[:, sl]
            total_rate = rates.sum()
            per_visit = (
                float((rates * w[:, sl]).sum() / total_rate)
                if total_rate > 0
                else 0.0
            )
            return SubsystemStats(
                utilization=float(total_util[sl].max(initial=0.0)),
                queue_length=float(total_queue[sl].max(initial=0.0)),
                residence_per_visit=per_visit,
            )

        return MMSPerformance(
            params=self.params,
            access_rate=x_avg,
            processor_utilization=u_p,
            processor_busy=busy,
            lambda_net=lam_net,
            s_obs=s_obs,
            l_obs=l_obs,
            l_obs_local=l_local,
            l_obs_remote=l_remote,
            remote_round_trip=round_trip,
            processor=stats(proc),
            memory=stats(mem),
            inbound=stats(inb),
            outbound=stats(outb),
            method=method,
            iterations=qsol.iterations,
            converged=qsol.converged,
            residual=qsol.residual,
            per_class_utilization=per_class_u,
        )

    # -------------------------------------------------------------- measures
    def _measures(
        self,
        visits: np.ndarray,
        waiting: np.ndarray,
        queue0: np.ndarray,
        total_queue: np.ndarray,
        throughput: float,
        method: str,
        iterations: int,
        converged: bool,
        residual: float = 0.0,
    ) -> MMSPerformance:
        arch, wl = self.params.arch, self.params.workload
        p = arch.num_processors
        proc = slice(0, p)
        mem = slice(p, 2 * p)
        inb = slice(2 * p, 3 * p)
        outb = slice(3 * p, 4 * p)

        x = throughput  # lambda_i: accesses issued per time unit per PE
        u_p = x * wl.runlength
        busy = x * (wl.runlength + arch.context_switch)
        # a single-node machine has no remote modules: all accesses are local
        p_rem_eff = wl.p_remote if p > 1 else 0.0
        lam_net = x * p_rem_eff

        v_mem = visits[mem]
        w_mem = waiting[mem]
        mem_visits_total = float(v_mem.sum())  # == 1 per cycle
        l_obs = (
            float(np.dot(v_mem, w_mem) / mem_visits_total)
            if mem_visits_total > 0
            else 0.0
        )
        l_local = float(w_mem[0]) if v_mem[0] > 0 else 0.0
        v_remote = v_mem.copy()
        v_remote[0] = 0.0
        rem_total = float(v_remote.sum())
        l_remote = float(np.dot(v_remote, w_mem) / rem_total) if rem_total > 0 else 0.0

        # Eq. (1): total switch residence per cycle; divide by the two one-way
        # trips each of the p_remote remote accesses makes to get the mean
        # one-way observed network latency.
        net_residence = float(
            np.dot(visits[inb], waiting[inb]) + np.dot(visits[outb], waiting[outb])
        )
        s_obs = net_residence / (2.0 * wl.p_remote) if wl.p_remote > 0 else 0.0
        round_trip = 2.0 * s_obs + l_remote if wl.p_remote > 0 else 0.0

        def stats(sl: slice, service_time: float, ports: int = 1) -> SubsystemStats:
            v_sl, w_sl = visits[sl], waiting[sl]
            visited = v_sl > 0
            per_visit = (
                float(np.dot(v_sl, w_sl) / v_sl.sum()) if visited.any() else 0.0
            )
            # Utilization of a station of this kind: every station of a kind
            # carries the same total load by symmetry (P classes each
            # contributing x * v / P ... equivalently x * sum(v) per station),
            # spread over its `ports` servers.
            util = x * float(v_sl.sum()) * service_time / ports
            q_tot = float(total_queue[sl][0]) if sl.stop > sl.start else 0.0
            return SubsystemStats(
                utilization=util, queue_length=q_tot, residence_per_visit=per_visit
            )

        return MMSPerformance(
            params=self.params,
            access_rate=x,
            processor_utilization=u_p,
            processor_busy=busy,
            lambda_net=lam_net,
            s_obs=s_obs,
            l_obs=l_obs,
            l_obs_local=l_local,
            l_obs_remote=l_remote,
            remote_round_trip=round_trip,
            processor=stats(proc, wl.runlength + arch.context_switch),
            memory=stats(mem, arch.memory_latency, arch.memory_ports),
            inbound=stats(inb, arch.switch_delay),
            outbound=stats(outb, arch.switch_delay),
            method=method,
            iterations=iterations,
            converged=converged,
            residual=residual,
        )


def solve(params: MMSParams, method: str = "auto") -> MMSPerformance:
    """One-shot convenience: ``solve(paper_defaults(p_remote=0.4))``."""
    return MMSModel(params).solve(method=method)


def _record_point_metrics(perf: MMSPerformance) -> None:
    """Fold one scalar solve into the ``solver.*`` metrics."""
    reg = obs_registry()
    reg.counter("solver.points").inc()
    reg.counter("solver.iterations").inc(perf.iterations)
    if not perf.converged:
        reg.counter("solver.nonconverged").inc()
    reg.histogram("solver.residual", _RESIDUAL_BUCKETS).observe(perf.residual)


def _record_batch_obs(sp, method: str, batch: "BatchTelemetry | None") -> None:
    """Fold one batched solve into the span and the ``solver.batch.*``
    metrics (iterations, residual, masked point-iterations)."""
    if batch is None:
        return
    sp.set(
        method=method,
        kernel=batch.kernel,
        batch_size=batch.batch_size,
        iterations=batch.iterations,
        converged=batch.converged,
        max_residual=batch.max_residual,
        masked_iterations_saved=batch.masked_iterations_saved,
    )
    reg = obs_registry()
    reg.counter("solver.batch.calls").inc()
    reg.counter("solver.batch.points").inc(batch.batch_size)
    reg.counter("solver.batch.iterations").inc(batch.iterations)
    reg.counter("solver.batch.point_iterations").inc(sum(batch.active_trajectory))
    reg.counter("solver.batch.masked_iterations_saved").inc(
        batch.masked_iterations_saved
    )
    reg.counter(f"solver.batch.kernel.{batch.kernel}").inc()
    if batch.converged < batch.batch_size:
        reg.counter("solver.nonconverged").inc(batch.batch_size - batch.converged)
    reg.histogram("solver.residual", _RESIDUAL_BUCKETS).observe(batch.max_residual)


#: residual histogram buckets (residuals live around the 1e-12 tolerance)
_RESIDUAL_BUCKETS = (1e-15, 1e-12, 1e-9, 1e-6, 1e-3, 1.0)


def solve_points(
    points: "Sequence[MMSParams]",
    method: str = "auto",
    tol: float = 1e-12,
    kernel: str | None = None,
) -> tuple[list[MMSPerformance], "BatchTelemetry | None"]:
    """Solve a homogeneous lattice of parameter points with one batched AMVA.

    All points must resolve to the *same* solver method and share a network
    shape (same ``P``); service times, visit ratios and populations may vary
    freely -- exactly the structure of the paper's figure sweeps.  Symmetric
    points go through
    :func:`~repro.queueing.mva_batch.solve_symmetric_batch`, whose per-point
    results are bitwise-identical to scalar :meth:`MMSModel.solve`, so the
    sweep backends can be swapped without disturbing cached records.
    Asymmetric (hotspot/mesh) points go through the multi-class
    :func:`~repro.queueing.mva_batch.solve_batch` (pointwise equivalent to
    the scalar AMVA to well below 1e-10, but not bitwise).  ``kernel``
    selects the solver kernel (``"auto"``/``"numpy"``/``"numba"``; kernels
    are bitwise-interchangeable); ``None`` honours :func:`repro.configure`
    and ``REPRO_SOLVE_KERNEL``.

    Returns the performances in input order plus the shared
    :class:`~repro.queueing.solution.BatchTelemetry` (``None`` for an empty
    input).

    Raises
    ------
    ValueError
        If the points mix solver methods or network shapes.
    """
    if not points:
        return [], None
    with trace_span("solver.batch", points=len(points)) as sp:
        perfs, batch = _solve_points_impl(points, method, tol, kernel)
        _record_batch_obs(sp, perfs[0].method if perfs else method, batch)
        return perfs, batch


def _solve_points_impl(
    points: "Sequence[MMSParams]", method: str, tol: float, kernel: str | None
) -> tuple[list[MMSPerformance], "BatchTelemetry | None"]:
    models = [MMSModel(p) for p in points]
    if method == "auto":
        resolved = {"symmetric" if m.is_symmetric else "amva" for m in models}
        if len(resolved) > 1:
            raise ValueError(
                "solve_points needs a homogeneous batch; got a mix of "
                f"symmetric and asymmetric points ({sorted(resolved)})"
            )
        method = resolved.pop()
    sizes = {m.params.arch.num_processors for m in models}
    if len(sizes) > 1:
        raise ValueError(
            f"solve_points needs one machine size per batch; got P in {sorted(sizes)}"
        )

    if method == "symmetric":
        arrays = [m.station_arrays() for m in models]
        visits = np.stack([a[0] for a in arrays])
        service = np.stack([a[1] for a in arrays])
        station_type = arrays[0][2]
        servers = np.stack([a[3] for a in arrays])
        pops = np.array([m.params.workload.num_threads for m in models])
        sols = solve_symmetric_batch(
            visits, service, station_type, pops, tol=tol, servers=servers,
            kernel=kernel,
        )
        perfs = [
            model._measures(
                arr[0],
                sol.waiting,
                sol.queue_length,
                sol.total_queue,
                sol.throughput,
                method,
                sol.iterations,
                sol.converged,
                residual=sol.residual,
            )
            for model, arr, sol in zip(models, arrays, sols)
        ]
        batch = sols[0].telemetry.batch if sols[0].telemetry else None
        return perfs, batch

    if method == "amva":
        networks = [m.build_network() for m in models]
        qsols = solve_batch(networks, kernel=kernel)
        perfs = []
        for model, network, qsol in zip(models, networks, qsols):
            if model.is_symmetric:
                perfs.append(
                    model._measures(
                        network.visits[0],
                        qsol.waiting[0],
                        qsol.queue_length[0],
                        qsol.total_queue_length,
                        float(qsol.throughput[0]),
                        method,
                        qsol.iterations,
                        qsol.converged,
                        residual=qsol.residual,
                    )
                )
            else:
                perfs.append(model._measures_aggregate(network, qsol, method))
        batch = qsols[0].telemetry.batch if qsols[0].telemetry else None
        return perfs, batch

    raise ValueError(
        f"solve_points supports method 'auto', 'symmetric' or 'amva'; got {method!r}"
    )
