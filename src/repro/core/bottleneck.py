"""Bottleneck analysis: the paper's closed-form saturation laws.

Two quantities organize every result in Sections 5-7:

* **Network saturation rate**, Eq. (4).  A remote round trip at average
  distance ``d_avg`` crosses ``2 * d_avg`` inbound switches; each inbound
  switch serves at rate ``1/S`` and, by symmetry, carries its own PE's traffic
  load ``lambda_net * 2 * d_avg``, so

      lambda_net,sat = 1 / (2 * d_avg * S)

  (= 0.029 for the paper's defaults: p_sw = 0.5 on 4x4 => d_avg = 1.733, S = 10).

* **Critical remote fraction**, Eq. (5).  The processor keeps receiving
  responses before running out of work while its remote issue rate stays below
  the network's unloaded round-trip rate ``1 / (2 (d_avg + 1) S)``:

      p_remote* = R_eff / (2 * (d_avg + 1) * S)

  (= 0.18 at R = 10 and 0.37 at R = 20 for the defaults, matching the text).

The local-memory analogue bounds the all-local path: the processor stays
busy while ``(1 - p_remote)/R_eff <= 1/L``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import MMSParams
from ..workload import pattern_for

__all__ = [
    "BottleneckAnalysis",
    "analyze",
    "lambda_net_saturation",
    "critical_p_remote",
    "saturation_utilization",
]


def _d_avg(params: MMSParams) -> float:
    torus = params.arch.torus
    if torus.num_nodes == 1:
        return 0.0
    wl = params.workload
    return pattern_for(wl).d_avg(torus)


def _r_eff(params: MMSParams) -> float:
    return params.workload.runlength + params.arch.context_switch


def lambda_net_saturation(params: MMSParams) -> float:
    """Eq. (4): the maximum per-PE message rate the network sustains.

    Independent of ``n_t``, ``R`` and ``p_remote`` -- only the access
    pattern's ``d_avg`` and the switch delay matter, which is the paper's
    point that tolerance is governed by subsystem *rates*, not latencies.
    """
    s = params.arch.switch_delay
    d = _d_avg(params)
    if s <= 0 or d <= 0:
        return float("inf")
    return 1.0 / (2.0 * d * s)


def critical_p_remote(params: MMSParams) -> float:
    """Eq. (5): the remote fraction beyond which the network latency cannot
    be tolerated (clipped to 1)."""
    s = params.arch.switch_delay
    d = _d_avg(params)
    if s <= 0:
        return 1.0
    return min(1.0, _r_eff(params) / (2.0 * (d + 1.0) * s))


def memory_saturation_p_remote(params: MMSParams) -> float:
    """Remote fraction below which the *local memory* saturates the processor:
    ``(1 - p) / R_eff > 1 / L``, i.e. ``p < 1 - R_eff / L`` (0 if never)."""
    l = params.arch.memory_latency
    if l <= 0:
        return 0.0
    return max(0.0, 1.0 - _r_eff(params) / l)


def network_saturation_p_remote(params: MMSParams) -> float:
    """Remote fraction at which ``lambda_net`` saturates assuming a busy
    processor (``lambda_i = 1/R_eff``): ``p = R_eff * lambda_net,sat``
    (~0.3 at R = 10 and ~0.6 at R = 20 for the defaults -- Figures 4c/5c)."""
    sat = lambda_net_saturation(params)
    if sat == float("inf"):
        return 1.0
    return min(1.0, _r_eff(params) * sat)


def saturation_utilization(params: MMSParams) -> float:
    """Predicted ``U_p`` ceiling when the network is the bottleneck:
    ``X = lambda_sat / p_remote`` so ``U_p = R * lambda_sat / p_remote``."""
    p = params.workload.p_remote
    if p <= 0:
        return 1.0
    sat = lambda_net_saturation(params)
    if sat == float("inf"):
        return 1.0
    return min(1.0, params.workload.runlength * sat / p)


@dataclass(frozen=True)
class BottleneckAnalysis:
    """All closed-form saturation quantities for one parameter point."""

    params: MMSParams
    d_avg: float
    #: Eq. (4)
    lambda_net_saturation: float
    #: Eq. (5)
    critical_p_remote: float
    #: p_remote at which the IN saturates (Figures 4c/5c knee)
    network_saturation_p_remote: float
    #: p_remote below which the local memory is the bottleneck
    memory_saturation_p_remote: float
    #: U_p ceiling under network saturation
    saturation_utilization: float

    @property
    def processor_stays_busy(self) -> bool:
        """Eq. (5) check at the configured ``p_remote``."""
        return self.params.workload.p_remote <= self.critical_p_remote

    @property
    def unloaded_round_trip(self) -> float:
        """Unloaded remote round trip on the network, ``2 (d_avg + 1) S``."""
        return 2.0 * (self.d_avg + 1.0) * self.params.arch.switch_delay


def analyze(params: MMSParams) -> BottleneckAnalysis:
    """Compute the full bottleneck picture for ``params``."""
    return BottleneckAnalysis(
        params=params,
        d_avg=_d_avg(params),
        lambda_net_saturation=lambda_net_saturation(params),
        critical_p_remote=critical_p_remote(params),
        network_saturation_p_remote=network_saturation_p_remote(params),
        memory_saturation_p_remote=memory_saturation_p_remote(params),
        saturation_utilization=saturation_utilization(params),
    )
