"""Core library: the MMS analytical model and the tolerance-index metric."""

from .baselines import (
    AccessCostReport,
    AgarwalPrediction,
    agarwal_utilization,
    kurihara_access_cost,
)
from .bottleneck import (
    BottleneckAnalysis,
    analyze,
    critical_p_remote,
    lambda_net_saturation,
    saturation_utilization,
)
from .metrics import MMSPerformance, SubsystemStats
from .model import MMSModel, solve, solve_points
from .network_models import OpenNetworkEstimate, open_network_latency
from .zones import ZoneBoundary, threads_for_tolerance, zone_boundary
from .tolerance import (
    PARTIAL_THRESHOLD,
    TOLERATED_THRESHOLD,
    ToleranceResult,
    ToleranceZone,
    classify,
    memory_tolerance,
    network_tolerance,
    tolerance_report,
)

__all__ = [
    "MMSModel",
    "solve",
    "solve_points",
    "MMSPerformance",
    "SubsystemStats",
    "ToleranceResult",
    "ToleranceZone",
    "classify",
    "network_tolerance",
    "memory_tolerance",
    "tolerance_report",
    "TOLERATED_THRESHOLD",
    "PARTIAL_THRESHOLD",
    "BottleneckAnalysis",
    "analyze",
    "lambda_net_saturation",
    "critical_p_remote",
    "saturation_utilization",
    "agarwal_utilization",
    "AgarwalPrediction",
    "kurihara_access_cost",
    "AccessCostReport",
    "ZoneBoundary",
    "zone_boundary",
    "threads_for_tolerance",
    "open_network_latency",
    "OpenNetworkEstimate",
]
