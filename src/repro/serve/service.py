"""The in-process solve service: concurrent requests, coalesced solves.

:class:`SolveService` is the serving-side counterpart of the sweep runner.
Where the runner executes one *known* lattice of points, the service accepts
**independent, concurrent** solve requests -- from threads, an asyncio
application, or the HTTP front end (:mod:`repro.serve.http`) -- and turns
them into the batched fixed points the solver layer is fast at:

1. **Admission** (:meth:`SolveService.submit`): the request is keyed with
   the same content-addressed :class:`~repro.runner.spec.JobSpec` key the
   sweep cache uses.  A key already answered is served from the in-memory
   LRU (tier 1) or the persistent :class:`~repro.runner.store.ResultStore`
   (tier 2); a key currently *in flight* joins the existing computation
   (single-flight dedup) instead of queueing a duplicate solve.  A full
   queue is an explicit :class:`QueueFullError` -- never an unbounded queue,
   never a hang.
2. **Coalescing** (the micro-batcher thread): admitted requests accumulate
   in per-shape buckets -- symmetric-method points of the same machine size
   can stack into one batched AMVA fixed point.  A bucket flushes when it
   reaches ``max_batch`` or when its oldest request has lingered
   ``linger`` seconds, whichever comes first; the linger *adapts* to the
   observed arrival rate (see :class:`ServiceConfig.adaptive`), so a burst
   coalesces wide while a trickle is answered immediately.
3. **Execution**: symmetric buckets of two or more points go through
   :func:`repro.core.model.solve_points`, whose per-point results are
   **bitwise identical** to a scalar :meth:`~repro.core.model.MMSModel.solve`
   (the PR-2 contract); everything else -- single points, asymmetric
   workloads, exotic methods, or a batch whose kernel raised -- degrades to
   the scalar solver, so a response never depends on what it shared a batch
   with.

Every stage is observable through :mod:`repro.obs`: ``serve.*`` counters,
queue-depth gauges, batch-width / linger / request-latency histograms, and
a ``serve.batch`` span per flush.  See ``docs/SERVING.md``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.model import solve_points
from ..obs import registry as obs_registry
from ..obs import trace_span
from ..obs.timeseries import MetricsRecorder
from ..params import MMSParams, ParamError
from ..resilience.admission import AdmissionController, AdmissionDecision
from ..resilience.breaker import CircuitBreaker
from ..runner.spec import JobSpec
from ..runner.store import ResultStore
from ..scenarios import DEFAULT_SCENARIO, get_scenario

__all__ = [
    "DeadlineExceededError",
    "OverloadError",
    "QueueFullError",
    "RateLimitedError",
    "ServeError",
    "ServeResult",
    "ServiceClosedError",
    "ServiceConfig",
    "ShedError",
    "SolveService",
]


class ServeError(Exception):
    """Base class for structured service rejections."""


class OverloadError(ServeError):
    """Admission refused under load; carries a ``retry_after_s`` hint.

    Every overload rejection (queue full, rate limited, shed) is one of
    these, so callers -- and the HTTP front end's ``Retry-After`` header --
    always know *when* to come back, not just that they were refused.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class QueueFullError(OverloadError):
    """Admission refused: the bounded request queue is at capacity.

    This is the service's explicit backpressure signal (HTTP 429 at the
    HTTP front end); the caller should retry later or shed load.
    """


class RateLimitedError(OverloadError):
    """Admission refused: the client exceeded its token-bucket rate."""


class ShedError(OverloadError):
    """Admission refused: the request was load-shed at the door.

    Its deadline could not survive the current queue estimate (or the
    service is in the CoDel drop state), so queueing it would only let it
    expire after wasting a slot.  HTTP 503 at the front end.
    """


class DeadlineExceededError(ServeError):
    """The request's deadline passed while it waited to be solved."""


class ServiceClosedError(ServeError):
    """The service is shut (or shutting) down and takes no new requests."""


#: batch-width histogram buckets (requests per flushed solve)
_WIDTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)
#: request-latency histogram buckets (seconds)
_LATENCY_BUCKETS = (1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0)
#: observed linger histogram buckets (seconds a flushed bucket waited)
_LINGER_BUCKETS = (1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`SolveService`.

    Parameters
    ----------
    max_batch:
        Most requests one flushed solve may coalesce; a bucket reaching
        this width flushes immediately.
    min_linger_s / max_linger_s:
        Bounds of the coalescing window.  A bucket flushes once its oldest
        request has waited the current linger, which adapts within these
        bounds (see ``adaptive``).
    adaptive:
        When True (default) the linger tracks the observed arrival rate:
        the service estimates the mean request inter-arrival gap (EWMA) and
        waits only as long as filling the batch is expected to take.
        Sparse traffic (expected gap beyond ``max_linger_s``) is answered
        immediately; bursts coalesce wide.  When False, every bucket
        lingers the full ``max_linger_s``.
    max_queue:
        Bound on requests admitted but not yet answered (queued or mid
        batch).  Admission beyond it raises :class:`QueueFullError`.
    memory_cache:
        Entries of the in-process LRU over solved records (tier 1);
        0 disables it.
    store_dir:
        Directory of a persistent :class:`~repro.runner.store.ResultStore`
        shared with the sweep runner (tier 2); ``None`` disables it.
    default_deadline_s:
        Deadline applied to requests that do not carry their own; ``None``
        means no deadline.
    kernel:
        Solver kernel for batched flushes (``"auto"``/``"numpy"``/
        ``"numba"``; kernels are bitwise-interchangeable, see
        :mod:`repro.queueing.kernels`); ``None`` honours
        :func:`repro.configure` and ``REPRO_SOLVE_KERNEL``.
    series_interval_s:
        Sampling cadence of the service's
        :class:`~repro.obs.timeseries.MetricsRecorder` (the ``/seriesz``
        window); ``0`` disables time-series recording entirely.
    series_capacity:
        Ring-buffer size of that recorder, in samples (default keeps a
        ten-minute window at the default cadence).
    rate_limit / rate_burst:
        Per-client token-bucket admission: at most ``rate_limit``
        requests/second with ``rate_burst`` of headroom per client id
        (see :class:`~repro.resilience.admission.TokenBucket`).  ``0``
        (default) disables rate limiting; ``rate_burst`` of ``0`` with a
        positive ``rate_limit`` defaults the burst to the rate.
    target_wait_s:
        Queue-wait target for deadline-aware load shedding: an arrival
        whose deadline cannot survive the current queue estimate -- or
        any arrival while the estimate has been above this target for a
        sustained interval (CoDel) -- is refused with a ``Retry-After``
        hint instead of queued to die.  ``0`` (default) disables
        shedding, and ``/healthz`` then always reports ``ok``.
    breaker_threshold / breaker_cooldown_s:
        The batched-kernel circuit breaker: ``breaker_threshold``
        consecutive batch failures open it (flushes route straight to
        the scalar path without re-paying the failure) and after
        ``breaker_cooldown_s`` a half-open probe batch tries to close it
        again.  Threshold ``0`` disables the breaker (every flush
        retries the batch, the pre-breaker behaviour).
    scenario:
        Default scenario applied to requests that do not name one
        (the HTTP front end's ``"scenario"`` body key wins over this);
        ``None`` means the torus default.  See ``docs/SCENARIOS.md``.
    """

    max_batch: int = 64
    min_linger_s: float = 0.0002
    max_linger_s: float = 0.005
    adaptive: bool = True
    max_queue: int = 1024
    memory_cache: int = 4096
    store_dir: str | None = None
    default_deadline_s: float | None = None
    kernel: str | None = None
    series_interval_s: float = 1.0
    series_capacity: int = 600
    rate_limit: float = 0.0
    rate_burst: float = 0.0
    target_wait_s: float = 0.0
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 2.0
    scenario: str | None = None

    def __post_init__(self) -> None:
        if self.kernel is not None:
            from ..queueing.kernels import validate_kernel_name

            validate_kernel_name(self.kernel)
        if self.scenario is not None:
            from ..scenarios import validate_scenario_name

            validate_scenario_name(self.scenario)
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.min_linger_s < 0:
            raise ValueError(f"min_linger_s must be >= 0, got {self.min_linger_s}")
        if self.max_linger_s < self.min_linger_s:
            raise ValueError(
                f"max_linger_s ({self.max_linger_s}) must be >= "
                f"min_linger_s ({self.min_linger_s})"
            )
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.memory_cache < 0:
            raise ValueError(f"memory_cache must be >= 0, got {self.memory_cache}")
        if self.series_interval_s < 0:
            raise ValueError(
                f"series_interval_s must be >= 0, got {self.series_interval_s}"
            )
        if self.series_capacity < 2:
            raise ValueError(
                f"series_capacity must be >= 2, got {self.series_capacity}"
            )
        if self.rate_limit < 0 or self.rate_burst < 0:
            raise ValueError(
                f"rate_limit/rate_burst must be >= 0, got "
                f"{self.rate_limit}/{self.rate_burst}"
            )
        if self.target_wait_s < 0:
            raise ValueError(
                f"target_wait_s must be >= 0, got {self.target_wait_s}"
            )
        if self.breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown_s <= 0:
            raise ValueError(
                f"breaker_cooldown_s must be > 0, got {self.breaker_cooldown_s}"
            )


@dataclass(frozen=True)
class ServeResult:
    """One answered request: the solved measures plus serving provenance."""

    #: content-addressed request key (shared with the sweep cache)
    key: str
    #: solved measures: :class:`~repro.core.metrics.MMSPerformance` for the
    #: torus scenario, a :class:`~repro.scenarios.ScenarioPerformance` else
    perf: object
    #: how the answer was produced: ``batched`` | ``scalar`` | ``memory`` |
    #: ``store`` | ``coalesced`` (joined another request's in-flight solve)
    source: str
    #: requests the answering solve coalesced (1 for scalar/cache answers)
    batch_width: int
    #: submit-to-resolve wall clock, seconds
    latency_s: float


class _Request:
    """One admitted unique key and every future waiting on it."""

    __slots__ = (
        "key",
        "params",
        "method",
        "scenario",
        "futures",
        "deadline",
        "t_submit",
    )

    def __init__(
        self,
        key: str,
        params: object,
        method: str,
        scenario: str,
        future: Future,
        deadline: float | None,
    ):
        self.key = key
        self.params = params
        #: canonical solver method (never ``"auto"``)
        self.method = method
        #: registered scenario name the params belong to
        self.scenario = scenario
        self.futures: list[Future] = [future]
        #: absolute monotonic deadline, or None
        self.deadline = deadline
        self.t_submit = time.monotonic()


class _Bucket:
    """Requests of one compatible shape, accumulating toward a flush."""

    __slots__ = ("requests", "t_open")

    def __init__(self) -> None:
        self.requests: list[_Request] = []
        self.t_open = time.monotonic()


@dataclass
class _ServiceStats:
    """Service-lifetime counters (the registry keeps process totals)."""

    requests: int = 0
    responses: int = 0
    memory_hits: int = 0
    store_hits: int = 0
    singleflight_hits: int = 0
    rejected: int = 0
    rate_limited: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    errors: int = 0
    batches: int = 0
    batched_points: int = 0
    scalar_points: int = 0
    degraded_batches: int = 0
    max_batch_width: int = 0
    width_sum: int = 0
    #: recent request latencies (seconds) for percentile estimates
    latencies: deque = field(default_factory=lambda: deque(maxlen=4096))


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


class SolveService:
    """Long-lived solve service: concurrent requests in, coalesced solves out.

    >>> from repro.params import paper_defaults
    >>> with SolveService() as svc:
    ...     perf = svc.solve(paper_defaults()).perf
    >>> 0.0 < perf.processor_utilization <= 1.0
    True

    Thread-safe: :meth:`submit` / :meth:`solve` may be called from any
    number of threads; :meth:`asolve` awaits the same futures from asyncio.
    Use as a context manager (or call :meth:`close`) so the batcher thread
    drains and exits cleanly.
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self._cond = threading.Condition()
        #: unique in-flight keys -> request (queued or mid-batch)
        self._inflight: dict[str, _Request] = {}
        #: admitted requests the batcher has not yet picked up
        self._arrivals: deque[_Request] = deque()
        #: tier-1 LRU: key -> persisted-record dict (same shape as the store)
        self._memcache: OrderedDict[str, dict] = OrderedDict()
        self._store: ResultStore | None = (
            ResultStore(self.config.store_dir) if self.config.store_dir else None
        )
        #: EWMA of the request inter-arrival gap, seconds (None: no signal yet)
        self._ewma_gap_s: float | None = None
        self._last_arrival: float | None = None
        self._closed = False
        self._drain_on_close = True
        self.stats_ = _ServiceStats()
        self._t_started = time.monotonic()
        #: overload policy: per-client token buckets + deadline shedding
        self.admission = AdmissionController(
            rate_limit=self.config.rate_limit,
            rate_burst=self.config.rate_burst,
            target_wait_s=self.config.target_wait_s,
        )
        #: batched-kernel circuit breaker; None when disabled by config
        self.breaker: CircuitBreaker | None = (
            CircuitBreaker(
                "serve.batch",
                failure_threshold=self.config.breaker_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
            )
            if self.config.breaker_threshold > 0
            else None
        )
        #: ring-buffer sampler behind GET /seriesz; None when disabled
        self.recorder: MetricsRecorder | None = (
            MetricsRecorder(
                interval_s=self.config.series_interval_s,
                capacity=self.config.series_capacity,
            ).start()
            if self.config.series_interval_s > 0
            else None
        )
        self._batcher = threading.Thread(
            target=self._batch_loop, name="repro-serve-batcher", daemon=True
        )
        self._batcher.start()

    # ------------------------------------------------------------- admission
    def submit(
        self,
        params: MMSParams,
        method: str = "auto",
        deadline_s: float | None = None,
        client_id: str = "",
        scenario: str | None = None,
    ) -> "Future[ServeResult]":
        """Admit one solve request; returns a future of :class:`ServeResult`.

        Raises :class:`QueueFullError` (backpressure),
        :class:`RateLimitedError` / :class:`ShedError` (admission control;
        see :class:`ServiceConfig.rate_limit` / ``target_wait_s``) or
        :class:`ServiceClosedError` synchronously; solver errors and
        :class:`DeadlineExceededError` surface through the future.
        ``client_id`` selects the caller's token bucket (the HTTP front
        end passes the ``X-Client-Id`` header, falling back to the remote
        address).  ``scenario`` names the workload family the params
        belong to; ``None`` infers it from the params type.
        """
        spec = JobSpec(params=params, method=method, scenario=scenario)
        if type(params) is not get_scenario(spec.scenario).params_type:
            raise ParamError(
                f"params of type {type(params).__name__} do not belong to "
                f"scenario {spec.scenario!r}"
            )
        canonical = spec.canonical_method()
        key = spec.key()
        future: Future = Future()
        reg = obs_registry()
        t0 = time.monotonic()
        with self._cond:
            if self._closed:
                raise ServiceClosedError("service is closed")
            self.stats_.requests += 1
            reg.counter("serve.requests").inc()
            self._observe_arrival(t0)

            rec = self._memcache_get(key)
            if rec is not None:
                self.stats_.memory_hits += 1
                reg.counter("serve.cache.memory_hits").inc()
                self._resolve_now(future, key, rec, "memory", t0, spec.scenario)
                return future

            inflight = self._inflight.get(key)
            if inflight is not None:
                self.stats_.singleflight_hits += 1
                reg.counter("serve.singleflight_hits").inc()
                inflight.futures.append(future)
                return future

            if self._store is not None:
                rec = self._store.get(key)
                if rec is not None:
                    self.stats_.store_hits += 1
                    reg.counter("serve.cache.store_hits").inc()
                    self._memcache_put(key, rec)
                    self._resolve_now(
                        future, key, rec, "store", t0, spec.scenario
                    )
                    return future

            deadline_s = (
                deadline_s if deadline_s is not None else self.config.default_deadline_s
            )
            depth = len(self._inflight)
            decision = self.admission.check(
                client_id=client_id, deadline_s=deadline_s, queue_depth=depth
            )
            if not decision.admitted:
                if decision.reason == AdmissionDecision.RATE_LIMITED:
                    self.stats_.rate_limited += 1
                    reg.counter("serve.rate_limited").inc()
                    raise RateLimitedError(
                        f"client {client_id or '<anonymous>'} is over its "
                        f"{self.config.rate_limit:g}/s rate limit",
                        retry_after_s=decision.retry_after_s,
                    )
                self.stats_.shed += 1
                reg.counter("serve.shed").inc()
                raise ShedError(
                    f"load shed: estimated queue wait "
                    f"{decision.estimated_wait_s:.3f}s cannot meet the "
                    f"request deadline",
                    retry_after_s=decision.retry_after_s,
                )

            if depth >= self.config.max_queue:
                self.stats_.rejected += 1
                reg.counter("serve.rejected").inc()
                raise QueueFullError(
                    f"solve queue is full ({self.config.max_queue} in flight); "
                    "retry later",
                    retry_after_s=max(0.1, decision.estimated_wait_s / 2.0),
                )
            request = _Request(
                key,
                params,
                canonical,
                spec.scenario,
                future,
                t0 + deadline_s if deadline_s is not None else None,
            )
            self._inflight[key] = request
            self._arrivals.append(request)
            reg.gauge("serve.queue_depth").set(len(self._inflight))
            self._cond.notify()
        return future

    def solve(
        self,
        params: MMSParams,
        method: str = "auto",
        deadline_s: float | None = None,
        timeout: float | None = None,
        client_id: str = "",
        scenario: str | None = None,
    ) -> ServeResult:
        """Blocking convenience around :meth:`submit`."""
        return self.submit(
            params,
            method=method,
            deadline_s=deadline_s,
            client_id=client_id,
            scenario=scenario,
        ).result(timeout=timeout)

    async def asolve(
        self,
        params: MMSParams,
        method: str = "auto",
        deadline_s: float | None = None,
        client_id: str = "",
        scenario: str | None = None,
    ) -> ServeResult:
        """Asyncio front end: await one solve without blocking the loop.

        Admission errors (:class:`QueueFullError`, :class:`RateLimitedError`,
        :class:`ShedError`, :class:`ServiceClosedError`) raise synchronously
        at call time, like :meth:`submit`.
        """
        future = self.submit(
            params,
            method=method,
            deadline_s=deadline_s,
            client_id=client_id,
            scenario=scenario,
        )
        return await asyncio.wrap_future(future)

    # ------------------------------------------------------------- lifecycle
    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service.

        ``drain=True`` (default) answers everything already admitted before
        the batcher exits; ``drain=False`` fails pending requests with
        :class:`ServiceClosedError`.  New submissions are refused either way.
        """
        with self._cond:
            if self._closed and not self._batcher.is_alive():
                return
            self._closed = True
            self._drain_on_close = drain
            self._cond.notify_all()
        self._batcher.join(timeout=timeout)
        if self.recorder is not None:
            self.recorder.stop()
        if self._store is not None:
            self._store.flush()

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close(drain=True)

    # ------------------------------------------------------------------ view
    def stats(self) -> dict[str, object]:
        """JSON-safe service-lifetime summary (the ``/metricsz`` body)."""
        with self._cond:
            s = self.stats_
            lat = sorted(s.latencies)
            answered = s.responses
            widths = s.width_sum
            flushes = s.batches
            return {
                "uptime_s": time.monotonic() - self._t_started,
                "requests": s.requests,
                "responses": answered,
                "in_flight": len(self._inflight),
                "queue_depth": len(self._arrivals),
                "max_queue": self.config.max_queue,
                "memory_hits": s.memory_hits,
                "store_hits": s.store_hits,
                "singleflight_hits": s.singleflight_hits,
                "rejected": s.rejected,
                "rate_limited": s.rate_limited,
                "shed": s.shed,
                "deadline_exceeded": s.deadline_exceeded,
                "errors": s.errors,
                "batches": flushes,
                "batched_points": s.batched_points,
                "scalar_points": s.scalar_points,
                "degraded_batches": s.degraded_batches,
                "batch_width": {
                    "max": s.max_batch_width,
                    "mean": (widths / flushes) if flushes else 0.0,
                },
                "latency_s": {
                    "count": len(lat),
                    "p50": _percentile(lat, 0.50),
                    "p95": _percentile(lat, 0.95),
                    "p99": _percentile(lat, 0.99),
                    "max": lat[-1] if lat else 0.0,
                },
                "ewma_arrival_gap_s": self._ewma_gap_s,
                "memory_cache_entries": len(self._memcache),
                "store_dir": self.config.store_dir,
                "closed": self._closed,
                "admission": self.admission.snapshot(),
                "breaker": (
                    self.breaker.snapshot() if self.breaker is not None else None
                ),
            }

    def health(self) -> dict[str, object]:
        """Structured overload state for ``/healthz`` (load-balancer view).

        ``status`` is one of :data:`~repro.resilience.admission.HEALTH_STATES`:
        ``ok`` (take traffic), ``degraded`` (queue wait above target, the
        breaker is routed around the batch kernel, or the queue is near
        capacity -- still answering), ``overloaded`` (actively shedding;
        load balancers should drain).  ``ok`` is False only when
        overloaded or closed, so a plain boolean check matches.
        """
        with self._cond:
            depth = len(self._inflight)
            closed = self._closed
        status = self.admission.health(queue_depth=depth)
        breaker_state = self.breaker.state if self.breaker is not None else "closed"
        if status == "ok" and (
            breaker_state != "closed" or depth >= 0.8 * self.config.max_queue
        ):
            status = "degraded"
        return {
            "ok": not closed and status != "overloaded",
            "status": "closed" if closed else status,
            "queue_depth": depth,
            "max_queue": self.config.max_queue,
            "breaker": breaker_state,
            "estimated_wait_s": self.admission.estimated_wait_s(depth),
        }

    # ------------------------------------------------------- admission internals
    def _observe_arrival(self, now: float) -> None:
        """Fold one arrival into the inter-arrival EWMA (lock held)."""
        if self._last_arrival is not None:
            gap = now - self._last_arrival
            if self._ewma_gap_s is None:
                self._ewma_gap_s = gap
            else:
                self._ewma_gap_s = 0.2 * gap + 0.8 * self._ewma_gap_s
        self._last_arrival = now

    def _memcache_get(self, key: str) -> dict | None:
        rec = self._memcache.get(key)
        if rec is not None:
            self._memcache.move_to_end(key)
        return rec

    def _memcache_put(self, key: str, rec: dict) -> None:
        if self.config.memory_cache <= 0:
            return
        self._memcache[key] = rec
        self._memcache.move_to_end(key)
        while len(self._memcache) > self.config.memory_cache:
            self._memcache.popitem(last=False)

    def _resolve_now(
        self,
        future: Future,
        key: str,
        rec: dict,
        source: str,
        t0: float,
        scenario: str,
    ) -> None:
        """Answer a cache hit synchronously (lock held)."""
        latency = time.monotonic() - t0
        self.stats_.responses += 1
        self.stats_.latencies.append(latency)
        reg = obs_registry()
        reg.counter("serve.responses").inc()
        reg.histogram("serve.request_latency_s", _LATENCY_BUCKETS).observe(latency)
        future.set_result(
            ServeResult(
                key=key,
                perf=get_scenario(scenario).perf_from_dict(rec["perf"]),
                source=source,
                batch_width=1,
                latency_s=latency,
            )
        )

    # --------------------------------------------------------- batcher thread
    def _linger_for(self, width: int) -> float:
        """Seconds a bucket of *width* requests should keep waiting.

        Adaptive policy: the expected time to fill the batch is
        ``(max_batch - width)`` further arrivals at the EWMA gap.  Waiting
        longer than that buys nothing, and traffic too sparse to ever fill
        a batch (gap beyond ``max_linger_s``) should not wait at all.
        """
        cfg = self.config
        if not cfg.adaptive:
            return cfg.max_linger_s
        gap = self._ewma_gap_s
        if gap is None or gap > cfg.max_linger_s:
            return 0.0
        expected_fill = (cfg.max_batch - width) * gap
        return min(cfg.max_linger_s, max(cfg.min_linger_s, expected_fill))

    def _batch_loop(self) -> None:
        """The micro-batcher: accumulate, flush on width or linger, solve."""
        buckets: dict[tuple[str, int], _Bucket] = {}
        while True:
            with self._cond:
                wait = self._next_wait(buckets)
                if (
                    wait != 0.0
                    and not self._arrivals
                    and not self._closed
                ):
                    self._cond.wait(timeout=wait)
                while self._arrivals:
                    request = self._arrivals.popleft()
                    bkey = self._bucket_key(request)
                    bucket = buckets.get(bkey)
                    if bucket is None:
                        bucket = buckets[bkey] = _Bucket()
                    bucket.requests.append(request)
                obs_registry().gauge("serve.queue_depth").set(len(self._inflight))
                closed = self._closed
                drain = self._drain_on_close

            now = time.monotonic()
            for bkey, bucket in list(buckets.items()):
                if closed or self._should_flush(bucket, now):
                    del buckets[bkey]
                    if closed and not drain:
                        self._abandon(bucket.requests)
                    else:
                        self._flush(bkey, bucket)

            if closed:
                with self._cond:
                    leftovers = list(self._arrivals)
                    self._arrivals.clear()
                    empty = not leftovers and not buckets
                if leftovers:
                    if drain:
                        for request in leftovers:
                            self._flush(
                                self._bucket_key(request), _bucket_of(request)
                            )
                    else:
                        self._abandon(leftovers)
                if empty:
                    return

    @staticmethod
    def _bucket_key(request: _Request) -> tuple[str, int]:
        """Coalescing compatibility class of one request.

        Only torus ``symmetric``-method points may stack (the batched
        symmetric kernel is bitwise-equal to the scalar solver); they group
        by machine size so the stacked arrays share a shape.  Everything
        else -- asymmetric torus points, exotic methods, and every
        non-torus scenario -- is its own singleton class and will be
        answered by the scalar solver.
        """
        if request.scenario == DEFAULT_SCENARIO and request.method == "symmetric":
            return ("symmetric", request.params.arch.num_processors)
        return ("scalar", -1)

    def _should_flush(self, bucket: _Bucket, now: float) -> bool:
        requests = bucket.requests
        if not requests:
            return True
        if self._bucket_key(requests[0])[0] != "symmetric":
            return True  # scalar classes never linger
        if len(requests) >= self.config.max_batch:
            return True
        with self._cond:
            linger = self._linger_for(len(requests))
        deadline = min(
            (r.deadline for r in requests if r.deadline is not None),
            default=None,
        )
        if deadline is not None and now >= deadline:
            return True
        return now - bucket.t_open >= linger

    def _next_wait(self, buckets: dict) -> float | None:
        """Seconds until the earliest bucket must flush (lock held).

        ``None`` means nothing is pending (sleep until notified); ``0.0``
        means a bucket is already due.
        """
        if not buckets:
            return None
        now = time.monotonic()
        earliest: float | None = None
        for bucket in buckets.values():
            if not bucket.requests:
                continue
            if self._bucket_key(bucket.requests[0])[0] != "symmetric":
                return 0.0
            if len(bucket.requests) >= self.config.max_batch:
                return 0.0
            due = bucket.t_open + self._linger_for(len(bucket.requests))
            deadline = min(
                (r.deadline for r in bucket.requests if r.deadline is not None),
                default=None,
            )
            if deadline is not None:
                due = min(due, deadline)
            earliest = due if earliest is None else min(earliest, due)
        if earliest is None:
            return None
        return max(0.0, earliest - now)

    # ------------------------------------------------------------- execution
    def _abandon(self, requests: Iterable[_Request]) -> None:
        exc = ServiceClosedError("service closed before the request was solved")
        for request in requests:
            self._finish_error(request, exc)

    def _expire(self, requests: list[_Request], now: float) -> list[_Request]:
        """Split off requests whose deadline has passed and fail them."""
        live: list[_Request] = []
        reg = obs_registry()
        for request in requests:
            if request.deadline is not None and now >= request.deadline:
                self.stats_.deadline_exceeded += 1
                reg.counter("serve.deadline_exceeded").inc()
                self._finish_error(
                    request,
                    DeadlineExceededError(
                        f"deadline exceeded after "
                        f"{now - request.t_submit:.4f}s in queue"
                    ),
                )
            else:
                live.append(request)
        return live

    def _flush(self, bkey: tuple[str, int], bucket: _Bucket) -> None:
        """Solve one bucket and answer every request it carries."""
        now = time.monotonic()
        with self._cond:
            requests = self._expire(bucket.requests, now)
        if not requests:
            return
        reg = obs_registry()
        width = len(requests)
        lingered = now - bucket.t_open
        t_solve = time.monotonic()
        with trace_span(
            "serve.batch", width=width, shape=str(bkey), linger_s=lingered
        ) as sp:
            batchable = bkey[0] == "symmetric" and width >= 2
            if batchable and self.breaker is not None and not self.breaker.allow():
                # open breaker: route straight to scalar without re-paying
                # the batch failure (the breaker counts the rejection)
                sp.set(breaker="open")
                batchable = False
            elif batchable:
                try:
                    perfs, _ = solve_points(
                        [r.params for r in requests],
                        method="symmetric",
                        kernel=self.config.kernel,
                    )
                    source = "batched"
                    if self.breaker is not None:
                        self.breaker.record_success()
                except Exception as exc:  # noqa: BLE001 - degrade to scalar
                    self.stats_.degraded_batches += 1
                    reg.counter("serve.degraded_batches").inc()
                    sp.set(degraded=f"{type(exc).__name__}: {exc}")
                    if self.breaker is not None:
                        self.breaker.record_failure()
                    batchable = False
            if not batchable:
                source = "scalar"
                perfs = []
                for request in requests:
                    try:
                        perfs.append(
                            get_scenario(request.scenario).solve(
                                request.params, method=request.method
                            )
                        )
                    except Exception as exc:  # noqa: BLE001 - per-request failure
                        perfs.append(exc)
        # two admission signals: per-point service time (the model) and
        # each request's full queue sojourn (the CoDel drop-latch input)
        t_done = time.monotonic()
        self.admission.observe_service_time((t_done - t_solve) / max(1, width))
        for request in requests:
            self.admission.observe_sojourn(t_done - request.t_submit)

        self.stats_.batches += 1
        self.stats_.width_sum += width
        self.stats_.max_batch_width = max(self.stats_.max_batch_width, width)
        if source == "batched":
            self.stats_.batched_points += width
            reg.counter("serve.batched_points").inc(width)
        else:
            self.stats_.scalar_points += width
            reg.counter("serve.scalar_points").inc(width)
        reg.counter("serve.batches").inc()
        reg.histogram("serve.batch_width", _WIDTH_BUCKETS).observe(width)
        reg.histogram("serve.linger_s", _LINGER_BUCKETS).observe(lingered)

        for request, outcome in zip(requests, perfs):
            if isinstance(outcome, Exception):
                self.stats_.errors += 1
                reg.counter("serve.errors").inc()
                self._finish_error(request, outcome)
            else:
                self._finish_ok(request, outcome, source, width)

    def _finish_ok(
        self, request: _Request, perf: object, source: str, width: int
    ) -> None:
        rec = {
            "method": request.method,
            "params": request.params.to_dict(),
            "perf": perf.to_dict(),
            "elapsed": 0.0,
        }
        if request.scenario != DEFAULT_SCENARIO:
            rec["scenario"] = request.scenario
        if width > 1:
            rec["amortized"] = True
        latency = time.monotonic() - request.t_submit
        reg = obs_registry()
        with self._cond:
            self._memcache_put(request.key, rec)
            if self._store is not None:
                try:
                    self._store.put(request.key, rec)
                    self._store.flush()
                except Exception:  # noqa: BLE001 - the answer beats the cache
                    reg.counter("serve.store_errors").inc()
            self._inflight.pop(request.key, None)
            waiters = list(request.futures)
            self.stats_.responses += len(waiters)
            for _ in waiters:
                self.stats_.latencies.append(latency)
        reg.counter("serve.responses").inc(len(waiters))
        reg.histogram("serve.request_latency_s", _LATENCY_BUCKETS).observe(latency)
        for i, future in enumerate(waiters):
            future.set_result(
                ServeResult(
                    key=request.key,
                    perf=perf,
                    source=source if i == 0 else "coalesced",
                    batch_width=width,
                    latency_s=latency,
                )
            )

    def _finish_error(self, request: _Request, exc: Exception) -> None:
        with self._cond:
            self._inflight.pop(request.key, None)
            waiters = list(request.futures)
        for future in waiters:
            future.set_exception(exc)


def _bucket_of(request: _Request) -> _Bucket:
    bucket = _Bucket()
    bucket.requests.append(request)
    return bucket
