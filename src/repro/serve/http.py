"""Stdlib HTTP front end for :class:`~repro.serve.service.SolveService`.

Four endpoints on a :class:`http.server.ThreadingHTTPServer`:

* ``POST /solve`` -- body ``{"params": {...nested params...}}`` or
  ``{"point": {...default-params overrides...}}``, plus optional
  ``"method"``, ``"deadline_s"`` and ``"scenario"`` (a registered
  scenario name; wins over the server's
  :attr:`~repro.serve.service.ServiceConfig.scenario` default, which in
  turn defaults to the torus).  Answers
  ``{"ok": true, "key", "perf", "source", "batch_width", "latency_s"}``.
  The ``X-Client-Id`` header (fallback: remote address) selects the
  caller's admission token bucket.
* ``GET /healthz`` -- the service's structured overload state
  (:meth:`~SolveService.health`): ``status`` of ``ok`` / ``degraded`` /
  ``overloaded`` (``closed`` while shutting down).  ``overloaded`` and
  ``closed`` answer 503 with ``Retry-After`` so load balancers drain
  without parsing the body.
* ``GET /metricsz`` -- the service's :meth:`~SolveService.stats` plus a
  full process metrics snapshot; ``GET /metricsz?format=prometheus``
  answers the same registry in Prometheus text exposition
  (:mod:`repro.obs.promtext`), making the service scrapeable.
* ``GET /seriesz`` -- the service recorder's time-series window
  (:class:`~repro.obs.timeseries.MetricsRecorder`); ``?window=60``
  trims to the trailing N seconds.  404 when the recorder is disabled
  (``series_interval_s=0``).

One thread per connection means a handler may *block* in
``service.solve`` -- that is the point: concurrent connections park in
the service together and coalesce into wide batches.  Error mapping is
part of the contract and lives in exactly one place
(:data:`_SERVICE_ERROR_STATUS` + :meth:`_service_error`): bad request
400, backpressure 429 (:class:`QueueFullError` /
:class:`RateLimitedError`), load shed or shutdown 503, deadline 504.
Every error body is ``{"ok": false, "error": <type>, "detail":
<message>}``, and every 429/503/504 additionally carries a
machine-readable ``retry_after_s`` plus the matching ``Retry-After``
header -- see the overload contract table in ``docs/SERVING.md``.

Build one with :func:`build_server`; the ``repro-mms serve`` CLI wraps
this with signal handling and a drain-on-exit (see ``docs/SERVING.md``).
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..obs import registry as obs_registry
from ..obs.promtext import CONTENT_TYPE as _PROM_CONTENT_TYPE
from ..obs.promtext import render_prometheus
from ..params import ParamError
from ..scenarios import DEFAULT_SCENARIO, Scenario, get_scenario
from .service import (
    DeadlineExceededError,
    QueueFullError,
    RateLimitedError,
    ServeError,
    ServiceClosedError,
    ShedError,
    SolveService,
)

__all__ = ["SolveHTTPServer", "SolveRequestHandler", "build_server"]

#: the single source of truth mapping service rejections to HTTP statuses.
#: Order matters: subclasses before their bases (all are ``ServeError``\ s).
_SERVICE_ERROR_STATUS: tuple[tuple[type[Exception], int, str], ...] = (
    (RateLimitedError, 429, "RateLimited"),
    (QueueFullError, 429, "QueueFull"),
    (ShedError, 503, "LoadShed"),
    (ServiceClosedError, 503, "ServiceClosed"),
    (DeadlineExceededError, 504, "DeadlineExceeded"),
)

#: largest accepted request body, bytes (an MMSParams payload is ~300 B)
MAX_BODY_BYTES = 64 * 1024


class SolveHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server that carries the :class:`SolveService`."""

    daemon_threads = True
    allow_reuse_address = True
    #: listen backlog; the stdlib default of 5 resets concurrent connect
    #: bursts, which defeats the whole point of a coalescing service
    request_queue_size = 256

    def __init__(self, address: tuple[str, int], service: SolveService):
        super().__init__(address, SolveRequestHandler)
        self.service = service


class SolveRequestHandler(BaseHTTPRequestHandler):
    """Routes /solve, /healthz, /metricsz; JSON in, JSON out."""

    protocol_version = "HTTP/1.1"
    server: SolveHTTPServer

    # silence the default per-request stderr line
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def _reply(
        self, status: int, body: dict, retry_after_s: float | None = None
    ) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if retry_after_s is not None:
            # the header is integral seconds (RFC 9110); never advertise 0
            self.send_header(
                "Retry-After", str(max(1, math.ceil(retry_after_s)))
            )
        self.end_headers()
        self.wfile.write(data)

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _error(
        self,
        status: int,
        error: str,
        detail: str,
        retry_after_s: float | None = None,
    ) -> None:
        body = {"ok": False, "error": error, "detail": detail}
        if retry_after_s is None and status in (429, 503, 504):
            # overload statuses always carry a hint, even when the raising
            # site did not compute one
            retry_after_s = 1.0
        if retry_after_s is not None:
            body["retry_after_s"] = round(float(retry_after_s), 4)
        self._reply(status, body, retry_after_s=retry_after_s)

    def _service_error(self, exc: Exception) -> None:
        """The one place service exceptions become HTTP error replies."""
        for exc_type, status, name in _SERVICE_ERROR_STATUS:
            if isinstance(exc, exc_type):
                retry = getattr(exc, "retry_after_s", None)
                if retry is None and status in (429, 503, 504):
                    # e.g. DeadlineExceededError: hint at the current queue
                    health = self.server.service.health()
                    retry = max(0.1, float(health["estimated_wait_s"]))
                self._error(status, name, str(exc), retry_after_s=retry)
                return
        self._error(500, "InternalError", f"{type(exc).__name__}: {exc}")

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
        parts = urlsplit(self.path)
        query = parse_qs(parts.query)
        if parts.path == "/healthz":
            health = self.server.service.health()
            if health["ok"]:
                self._reply(200, health)
            else:
                self._reply(
                    503,
                    health,
                    retry_after_s=max(1.0, float(health["estimated_wait_s"])),
                )
        elif parts.path == "/metricsz":
            fmt = (query.get("format") or ["json"])[0]
            if fmt == "prometheus":
                self._reply_text(
                    200,
                    render_prometheus(obs_registry().snapshot()),
                    _PROM_CONTENT_TYPE,
                )
            elif fmt == "json":
                self._reply(
                    200,
                    {
                        "ok": True,
                        "service": self.server.service.stats(),
                        "metrics": obs_registry().snapshot(),
                    },
                )
            else:
                self._error(
                    400, "BadRequest", f"unknown format {fmt!r}; "
                    "pick json or prometheus"
                )
        elif parts.path == "/seriesz":
            recorder = self.server.service.recorder
            if recorder is None:
                self._error(
                    404,
                    "RecorderDisabled",
                    "time-series recording is off (series_interval_s=0)",
                )
                return
            window = None
            raw = (query.get("window") or [None])[0]
            if raw is not None:
                try:
                    window = float(raw)
                except ValueError:
                    self._error(400, "BadRequest", f"bad window: {raw!r}")
                    return
            self._reply(200, {"ok": True, **recorder.window(window)})
        else:
            self._error(404, "NotFound", f"no such endpoint: {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler name
        if self.path != "/solve":
            self._error(404, "NotFound", f"no such endpoint: {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._error(400, "BadRequest", "malformed Content-Length")
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._error(
                400, "BadRequest", f"body must be 1..{MAX_BODY_BYTES} bytes"
            )
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._error(400, "BadRequest", f"invalid JSON body: {exc}")
            return
        if not isinstance(payload, dict):
            self._error(400, "BadRequest", "body must be a JSON object")
            return

        client_id = (
            self.headers.get("X-Client-Id") or self.client_address[0] or ""
        )
        try:
            scen, params = _parse_params(
                payload, default_scenario=self.server.service.config.scenario
            )
            method = payload.get("method", "auto")
            deadline_s = payload.get("deadline_s")
            if deadline_s is not None:
                deadline_s = float(deadline_s)
            result = self.server.service.solve(
                params,
                method=method,
                deadline_s=deadline_s,
                client_id=str(client_id),
                scenario=scen.name,
            )
        except ServeError as exc:
            self._service_error(exc)
            return
        except (ParamError, TypeError, ValueError, KeyError) as exc:
            self._error(400, "BadRequest", f"{type(exc).__name__}: {exc}")
            return
        except Exception as exc:  # noqa: BLE001 - solver failure -> 500, not a reset
            self._service_error(exc)
            return

        body = {
            "ok": True,
            "key": result.key,
            "perf": result.perf.to_dict(),
            "source": result.source,
            "batch_width": result.batch_width,
            "latency_s": result.latency_s,
        }
        if scen.name != DEFAULT_SCENARIO:
            body["scenario"] = scen.name
        self._reply(200, body)


def _parse_params(
    payload: dict, default_scenario: str | None = None
) -> tuple[Scenario, object]:
    """Resolve the scenario and its params from a /solve body.

    The body's ``"scenario"`` key wins over the server-configured default;
    absent both, the torus scenario applies (the pre-scenario wire format).
    ``params`` (nested dict) wins over ``point`` (default-params overrides).
    """
    name = payload.get("scenario", default_scenario) or DEFAULT_SCENARIO
    if not isinstance(name, str):
        raise ParamError("scenario: must be a registered scenario name")
    scen = get_scenario(name)
    if "params" in payload:
        return scen, scen.params_from_dict(payload["params"])
    if "point" in payload:
        point = payload["point"]
        if not isinstance(point, dict):
            raise ParamError("point: must be a JSON object of field overrides")
        return scen, scen.with_overrides(scen.default_params(), **point)
    raise ParamError("body must carry 'params' (nested) or 'point' (overrides)")


def build_server(
    host: str, port: int, service: SolveService
) -> SolveHTTPServer:
    """Bind a :class:`SolveHTTPServer`; ``port=0`` picks an ephemeral port."""
    return SolveHTTPServer((host, port), service)
