"""Stdlib HTTP front end for :class:`~repro.serve.service.SolveService`.

Four endpoints on a :class:`http.server.ThreadingHTTPServer`:

* ``POST /solve`` -- body ``{"params": {...nested MMSParams...}}`` or
  ``{"point": {...paper_defaults overrides...}}``, plus optional
  ``"method"`` and ``"deadline_s"``.  Answers
  ``{"ok": true, "key", "perf", "source", "batch_width", "latency_s"}``.
* ``GET /healthz`` -- liveness: ``{"ok": true, "status": "serving"}``.
* ``GET /metricsz`` -- the service's :meth:`~SolveService.stats` plus a
  full process metrics snapshot; ``GET /metricsz?format=prometheus``
  answers the same registry in Prometheus text exposition
  (:mod:`repro.obs.promtext`), making the service scrapeable.
* ``GET /seriesz`` -- the service recorder's time-series window
  (:class:`~repro.obs.timeseries.MetricsRecorder`); ``?window=60``
  trims to the trailing N seconds.  404 when the recorder is disabled
  (``series_interval_s=0``).

One thread per connection means a handler may *block* in
``service.solve`` -- that is the point: concurrent connections park in
the service together and coalesce into wide batches.  Error mapping is
part of the contract: bad request 400, backpressure 429
(:class:`QueueFullError`), deadline 504, shutdown 503; every error body
is ``{"ok": false, "error": <type>, "detail": <message>}``.

Build one with :func:`build_server`; the ``repro-mms serve`` CLI wraps
this with signal handling and a drain-on-exit (see ``docs/SERVING.md``).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..obs import registry as obs_registry
from ..obs.promtext import CONTENT_TYPE as _PROM_CONTENT_TYPE
from ..obs.promtext import render_prometheus
from ..params import MMSParams, ParamError, paper_defaults
from .service import (
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
    SolveService,
)

__all__ = ["SolveHTTPServer", "SolveRequestHandler", "build_server"]

#: largest accepted request body, bytes (an MMSParams payload is ~300 B)
MAX_BODY_BYTES = 64 * 1024


class SolveHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server that carries the :class:`SolveService`."""

    daemon_threads = True
    allow_reuse_address = True
    #: listen backlog; the stdlib default of 5 resets concurrent connect
    #: bursts, which defeats the whole point of a coalescing service
    request_queue_size = 256

    def __init__(self, address: tuple[str, int], service: SolveService):
        super().__init__(address, SolveRequestHandler)
        self.service = service


class SolveRequestHandler(BaseHTTPRequestHandler):
    """Routes /solve, /healthz, /metricsz; JSON in, JSON out."""

    protocol_version = "HTTP/1.1"
    server: SolveHTTPServer

    # silence the default per-request stderr line
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def _reply(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _error(self, status: int, error: str, detail: str) -> None:
        self._reply(status, {"ok": False, "error": error, "detail": detail})

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
        parts = urlsplit(self.path)
        query = parse_qs(parts.query)
        if parts.path == "/healthz":
            self._reply(200, {"ok": True, "status": "serving"})
        elif parts.path == "/metricsz":
            fmt = (query.get("format") or ["json"])[0]
            if fmt == "prometheus":
                self._reply_text(
                    200,
                    render_prometheus(obs_registry().snapshot()),
                    _PROM_CONTENT_TYPE,
                )
            elif fmt == "json":
                self._reply(
                    200,
                    {
                        "ok": True,
                        "service": self.server.service.stats(),
                        "metrics": obs_registry().snapshot(),
                    },
                )
            else:
                self._error(
                    400, "BadRequest", f"unknown format {fmt!r}; "
                    "pick json or prometheus"
                )
        elif parts.path == "/seriesz":
            recorder = self.server.service.recorder
            if recorder is None:
                self._error(
                    404,
                    "RecorderDisabled",
                    "time-series recording is off (series_interval_s=0)",
                )
                return
            window = None
            raw = (query.get("window") or [None])[0]
            if raw is not None:
                try:
                    window = float(raw)
                except ValueError:
                    self._error(400, "BadRequest", f"bad window: {raw!r}")
                    return
            self._reply(200, {"ok": True, **recorder.window(window)})
        else:
            self._error(404, "NotFound", f"no such endpoint: {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler name
        if self.path != "/solve":
            self._error(404, "NotFound", f"no such endpoint: {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._error(400, "BadRequest", "malformed Content-Length")
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._error(
                400, "BadRequest", f"body must be 1..{MAX_BODY_BYTES} bytes"
            )
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._error(400, "BadRequest", f"invalid JSON body: {exc}")
            return
        if not isinstance(payload, dict):
            self._error(400, "BadRequest", "body must be a JSON object")
            return

        try:
            params = _parse_params(payload)
            method = payload.get("method", "auto")
            deadline_s = payload.get("deadline_s")
            if deadline_s is not None:
                deadline_s = float(deadline_s)
            result = self.server.service.solve(
                params, method=method, deadline_s=deadline_s
            )
        except QueueFullError as exc:
            self._error(429, "QueueFull", str(exc))
            return
        except DeadlineExceededError as exc:
            self._error(504, "DeadlineExceeded", str(exc))
            return
        except ServiceClosedError as exc:
            self._error(503, "ServiceClosed", str(exc))
            return
        except (ParamError, TypeError, ValueError, KeyError) as exc:
            self._error(400, "BadRequest", f"{type(exc).__name__}: {exc}")
            return

        self._reply(
            200,
            {
                "ok": True,
                "key": result.key,
                "perf": result.perf.to_dict(),
                "source": result.source,
                "batch_width": result.batch_width,
                "latency_s": result.latency_s,
            },
        )


def _parse_params(payload: dict) -> MMSParams:
    """Build MMSParams from a /solve body (``params`` wins over ``point``)."""
    if "params" in payload:
        return MMSParams.from_dict(payload["params"])
    if "point" in payload:
        point = payload["point"]
        if not isinstance(point, dict):
            raise ParamError("point: must be a JSON object of field overrides")
        return paper_defaults(**point)
    raise ParamError("body must carry 'params' (nested) or 'point' (overrides)")


def build_server(
    host: str, port: int, service: SolveService
) -> SolveHTTPServer:
    """Bind a :class:`SolveHTTPServer`; ``port=0`` picks an ephemeral port."""
    return SolveHTTPServer((host, port), service)
