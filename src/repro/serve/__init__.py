"""Serving layer: the coalescing solve service and its HTTP front end.

:class:`SolveService` (``service.py``) accepts concurrent solve requests,
answers repeats from a two-tier cache, dedups identical in-flight keys,
and coalesces the rest into batched solves with an adaptive micro-batcher;
``http.py`` puts stdlib JSON endpoints in front of it and ``repro-mms
serve`` runs that server.  See ``docs/SERVING.md``.
"""

from .http import SolveHTTPServer, build_server
from .service import (
    DeadlineExceededError,
    OverloadError,
    QueueFullError,
    RateLimitedError,
    ServeError,
    ServeResult,
    ServiceClosedError,
    ServiceConfig,
    ShedError,
    SolveService,
)

__all__ = [
    "DeadlineExceededError",
    "OverloadError",
    "QueueFullError",
    "RateLimitedError",
    "ServeError",
    "ServeResult",
    "ServiceClosedError",
    "ServiceConfig",
    "ShedError",
    "SolveHTTPServer",
    "SolveService",
    "build_server",
]
