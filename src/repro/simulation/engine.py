"""Minimal discrete-event simulation kernel.

A binary-heap future-event list with deterministic tie-breaking (insertion
order) and a NumPy random generator shared by the model components.  The
kernel is deliberately tiny -- stations own their queueing logic
(:mod:`repro.simulation.stations`); the kernel only orders time.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

import numpy as np

__all__ = ["Engine"]


class Engine:
    """Event loop: schedule callables at future times, run until a horizon."""

    def __init__(self, seed: int | None = 0):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[..., None], tuple[Any, ...]]] = []
        self._seq = 0
        self.rng = np.random.default_rng(seed)
        #: events executed by :meth:`run_until` over the engine's lifetime
        self.events_processed = 0
        #: future-event-list high-water mark (max pending events ever)
        self.max_pending = 0

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at ``now + delay`` (``delay >= 0``)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, args))
        if len(self._heap) > self.max_pending:
            self.max_pending = len(self._heap)

    def run_until(self, t_end: float) -> None:
        """Process events in time order until ``t_end`` (events at exactly
        ``t_end`` are processed)."""
        heap = self._heap
        n = 0
        while heap and heap[0][0] <= t_end:
            t, _, fn, args = heapq.heappop(heap)
            self.now = t
            n += 1
            fn(*args)
        self.events_processed += n
        self.now = max(self.now, t_end)

    def peek(self) -> float:
        """Timestamp of the next pending event (inf if none)."""
        return self._heap[0][0] if self._heap else float("inf")

    @property
    def pending(self) -> int:
        """Number of scheduled events not yet executed."""
        return len(self._heap)

    # ------------------------------------------------------------- sampling
    def draw_service(self, mean: float, dist: str) -> float:
        """Sample a service time: ``"exponential"`` or ``"deterministic"``.

        The paper's model is exponential; Section 8 additionally checks a
        deterministic memory service time against the exponential prediction.
        """
        if mean < 0:
            raise ValueError(f"negative mean service time {mean}")
        if mean == 0.0:
            return 0.0
        if dist == "exponential":
            return float(self.rng.exponential(mean))
        if dist == "deterministic":
            return float(mean)
        raise ValueError(f"unknown service distribution {dist!r}")
