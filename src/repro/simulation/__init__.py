"""Discrete-event simulation substrate (the validation vehicle)."""

from .engine import Engine
from .mms_sim import MMSSimulation, SimResult, simulate
from .stations import FCFSServer
from .stats import BatchMeans, RateBatches, Welford, ci_halfwidth

__all__ = [
    "Engine",
    "FCFSServer",
    "MMSSimulation",
    "SimResult",
    "simulate",
    "Welford",
    "BatchMeans",
    "RateBatches",
    "ci_halfwidth",
]
