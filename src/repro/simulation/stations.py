"""Service stations for the discrete-event simulator.

:class:`FCFSServer` matches the analytical model's stations (single FCFS
server) and additionally supports the architectural variants the paper
discusses but does not model:

* **multiple servers** (``servers=m``) -- the Section-7 suggestion of
  multiported memory;
* **priority classes** (:class:`PriorityFCFSServer`) -- the Section-7 remark
  that EM-4 prioritizes local memory requests;
* **finite capacity with blocking** (``capacity=c``) -- footnote 3's
  limited-buffer switches: when the station is full, an upstream server that
  completes a job *holds* it (stays occupied) until space frees, via the
  ``on_done``-returns-``False`` protocol below;
* **pipelining** (:class:`PipelinedServer`) -- the paper's assumption 2
  discussion: a pipelined switch accepts a new message every initiation
  interval while each message still takes the full latency to transit.

Blocking protocol: an ``on_done`` callback may return ``False`` to signal
"the next stage refused the job".  The server then keeps the job in a held
slot (the server stays occupied) until :meth:`FCFSServer.retry_held` is
called -- typically from a space-notification callback registered with
:meth:`FCFSServer.notify_space` on the downstream station.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from .engine import Engine

__all__ = ["FCFSServer", "PriorityFCFSServer", "PipelinedServer"]

Callback = Callable[[Any], Any]


class FCFSServer:
    """FCFS station with ``servers`` identical servers and optional capacity.

    ``capacity`` counts every job present (waiting, in service, or held);
    ``None`` means unbounded.  Busy time is accumulated in *server-time*
    units, so ``utilization = busy_time / (servers * span)``.
    """

    def __init__(
        self,
        engine: Engine,
        mean_service: float,
        dist: str = "exponential",
        name: str = "",
        overhead: float = 0.0,
        servers: int = 1,
        capacity: int | None = None,
    ):
        if servers < 1:
            raise ValueError(f"need >= 1 server, got {servers}")
        if capacity is not None and capacity < servers:
            raise ValueError(
                f"capacity ({capacity}) must cover the servers ({servers})"
            )
        self.engine = engine
        self.mean_service = mean_service
        self.dist = dist
        self.name = name
        #: deterministic time added to every service (context-switch ``C``)
        self.overhead = overhead
        self.servers = servers
        self.capacity = capacity

        self._queue: deque[tuple[Any, Callback, float]] = deque()
        self._in_service = 0
        self._held: list[tuple[Any, Callback]] = []
        self._space_waiters: deque[Callable[[], None]] = deque()

        # busy-time integral (server-time units)
        self._active_since = 0.0
        self.busy_time = 0.0
        self.blocked_time = 0.0
        self._blocked_since: dict[int, float] = {}
        self.completions = 0
        self.arrivals = 0

    # --------------------------------------------------------------- occupancy
    @property
    def queue_length(self) -> int:
        """Jobs waiting (excluding in-service and held jobs)."""
        return len(self._queue)

    @property
    def jobs_present(self) -> int:
        """All jobs at the station: waiting + in service + held."""
        return len(self._queue) + self._in_service + len(self._held)

    @property
    def busy(self) -> bool:
        """At least one server occupied (serving or holding)."""
        return self._in_service + len(self._held) > 0

    def has_space(self) -> bool:
        """Whether an arrival would be admitted."""
        return self.capacity is None or self.jobs_present < self.capacity

    def notify_space(self, callback: Callable[[], None]) -> None:
        """Call ``callback`` (once) the next time a job departs."""
        self._space_waiters.append(callback)

    # ------------------------------------------------------------- accounting
    def _occupied(self) -> int:
        return self._in_service + len(self._held)

    def _account(self) -> None:
        """Integrate server-time up to now (call before occupancy changes)."""
        now = self.engine.now
        self.busy_time += self._occupied() * (now - self._active_since)
        self._active_since = now

    # ------------------------------------------------------------------ flow
    def arrive(self, job: Any, on_done: Callback, mean: float | None = None) -> None:
        """Enqueue ``job``; ``on_done(job)`` fires at service completion.

        Raises if the station is at capacity -- callers model blocking by
        checking :meth:`has_space` first (see the module docstring).
        """
        if not self.has_space():
            raise RuntimeError(
                f"station {self.name!r} is full "
                f"({self.jobs_present}/{self.capacity})"
            )
        self.arrivals += 1
        m = self.mean_service if mean is None else mean
        if self._occupied() < self.servers:
            self._start(job, on_done, m)
        else:
            self._queue.append((job, on_done, m))

    def _start(self, job: Any, on_done: Callback, mean: float) -> None:
        self._account()
        self._in_service += 1
        service = self.overhead + self.engine.draw_service(mean, self.dist)
        self.engine.schedule(service, self._complete, job, on_done)

    def _complete(self, job: Any, on_done: Callback) -> None:
        self._account()
        self._in_service -= 1
        self.completions += 1
        self._forward(job, on_done)

    def _forward(self, job: Any, on_done: Callback) -> None:
        """Hand the job downstream; hold the server if refused."""
        if on_done(job) is False:
            self._account()
            self._held.append((job, on_done))
            self._blocked_since[id(job)] = self.engine.now
            return
        self._departed()

    def _departed(self) -> None:
        """A job left the station: free a slot, start next, wake a waiter."""
        if self._queue and self._occupied() < self.servers:
            nxt_job, nxt_done, nxt_mean = self._queue.popleft()
            self._start(nxt_job, nxt_done, nxt_mean)
        if self._space_waiters:
            self._space_waiters.popleft()()

    def retry_held(self) -> None:
        """Re-attempt every held forward (called when downstream space frees)."""
        if not self._held:
            return
        self._account()
        held, self._held = self._held, []
        for job, on_done in held:
            t0 = self._blocked_since.pop(id(job), None)
            if on_done(job) is False:
                self._account()
                self._held.append((job, on_done))
                self._blocked_since[id(job)] = (
                    t0 if t0 is not None else self.engine.now
                )
            else:
                if t0 is not None:
                    self.blocked_time += self.engine.now - t0
                self._departed()

    # ------------------------------------------------------------- reporting
    def busy_time_until(self, now: float) -> float:
        """Server-time accumulated through ``now`` (in-progress included)."""
        return self.busy_time + self._occupied() * (now - self._active_since)

    def utilization_until(self, now: float, span: float) -> float:
        """Mean fraction of servers occupied over the last ``span``."""
        return self.busy_time_until(now) / (self.servers * span)

    def reset_accounting(self, now: float) -> None:
        """Zero the busy-time/completion counters (end of warm-up)."""
        self.busy_time = 0.0
        self.blocked_time = 0.0
        self.completions = 0
        self.arrivals = 0
        self._active_since = max(self._active_since, now)
        for k in self._blocked_since:
            self._blocked_since[k] = max(self._blocked_since[k], now)


class PriorityFCFSServer(FCFSServer):
    """Non-preemptive head-of-line priorities (0 = highest).

    Models the paper's Section-7 note that EM-4 prioritizes local memory
    requests over remote ones: pass ``priority=0`` for local accesses and
    ``priority=1`` for remote ones.
    """

    def __init__(self, *args: Any, levels: int = 2, **kwargs: Any):
        super().__init__(*args, **kwargs)
        if levels < 1:
            raise ValueError(f"need >= 1 priority level, got {levels}")
        self.levels = levels
        self._pqueues: list[deque[tuple[Any, Callback, float]]] = [
            deque() for _ in range(levels)
        ]

    @property
    def queue_length(self) -> int:
        return sum(len(q) for q in self._pqueues)

    @property
    def jobs_present(self) -> int:
        return self.queue_length + self._in_service + len(self._held)

    def arrive(
        self,
        job: Any,
        on_done: Callback,
        mean: float | None = None,
        priority: int = 0,
    ) -> None:
        if not 0 <= priority < self.levels:
            raise ValueError(f"priority {priority} outside [0, {self.levels})")
        if not self.has_space():
            raise RuntimeError(f"station {self.name!r} is full")
        self.arrivals += 1
        m = self.mean_service if mean is None else mean
        if self._occupied() < self.servers:
            self._start(job, on_done, m)
        else:
            self._pqueues[priority].append((job, on_done, m))

    def _departed(self) -> None:
        if self._occupied() < self.servers:
            for q in self._pqueues:
                if q:
                    nxt_job, nxt_done, nxt_mean = q.popleft()
                    self._start(nxt_job, nxt_done, nxt_mean)
                    break
        if self._space_waiters:
            self._space_waiters.popleft()()


class PipelinedServer:
    """A pipelined station: new job every ``issue_interval``, each job in
    transit for ``latency``.

    The issue slot is the only contended resource; transit is a pure delay.
    At ``issue_interval == latency`` this degenerates to the non-pipelined
    :class:`FCFSServer` behaviour (for deterministic service).  The paper
    argues (citing [9]) that near network saturation pipelined and
    non-pipelined switches perform alike -- `bench_ext_pipelined_switches`
    checks exactly that.
    """

    def __init__(
        self,
        engine: Engine,
        latency: float,
        issue_interval: float,
        dist: str = "exponential",
        name: str = "",
    ):
        if latency < 0 or issue_interval < 0:
            raise ValueError("latency and issue interval must be >= 0")
        if issue_interval > latency:
            raise ValueError("issue interval cannot exceed the latency")
        self.engine = engine
        self.latency = latency
        self.issue_interval = issue_interval
        self.dist = dist
        self.name = name
        self._queue: deque[tuple[Any, Callback]] = deque()
        self._slot_busy = False
        self._slot_since = 0.0
        self.busy_time = 0.0
        self.completions = 0
        self.arrivals = 0

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> bool:
        return self._slot_busy

    def arrive(self, job: Any, on_done: Callback) -> None:
        self.arrivals += 1
        if self._slot_busy:
            self._queue.append((job, on_done))
        else:
            self._issue(job, on_done)

    def _issue(self, job: Any, on_done: Callback) -> None:
        self._slot_busy = True
        self._slot_since = self.engine.now
        transit = self.engine.draw_service(self.latency, self.dist)
        transit = max(transit, self.issue_interval)
        self.engine.schedule(self.issue_interval, self._release_slot)
        self.engine.schedule(transit, self._deliver, job, on_done)

    def _release_slot(self) -> None:
        self.busy_time += self.engine.now - self._slot_since
        if self._queue:
            job, on_done = self._queue.popleft()
            self._issue(job, on_done)
        else:
            self._slot_busy = False

    def _deliver(self, job: Any, on_done: Callback) -> None:
        self.completions += 1
        on_done(job)

    def busy_time_until(self, now: float) -> float:
        extra = (now - self._slot_since) if self._slot_busy else 0.0
        return self.busy_time + extra

    def reset_accounting(self, now: float) -> None:
        self.busy_time = 0.0
        self.completions = 0
        self.arrivals = 0
        if self._slot_busy:
            self._slot_since = max(self._slot_since, now)
