"""Discrete-event simulation of the multithreaded multiprocessor system.

This is the behavioural twin of the analytical model: the same stations
(processor, memory, inbound/outbound switch per PE), the same thread life
cycle, the same routing, with service times drawn from exponential (or
deterministic) distributions.  The paper validates its MVA predictions with a
stochastic timed Petri net simulation (Section 8) and reports agreement within
2% on ``lambda_net`` and 5% on ``S_obs``; this simulator plays that role (the
Petri-net formulation itself is in :mod:`repro.spn` and is equivalent).

Measured quantities mirror :class:`repro.core.metrics.MMSPerformance`:

* ``U_p``        -- useful-computation fraction of processor time
* ``lambda_net`` -- remote requests injected per PE per time unit
* ``S_obs``      -- mean one-way network transit (outbound entry to final
  inbound service completion), queueing included
* ``L_obs``      -- mean memory residence per access
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..obs import registry as obs_registry
from ..obs import trace_span
from ..params import MMSParams
from ..topology import route_nodes
from ..workload import pattern_for
from .engine import Engine
from .stations import FCFSServer, PipelinedServer, PriorityFCFSServer
from .stats import BatchMeans, RateBatches, Welford

__all__ = ["SimResult", "MMSSimulation", "simulate"]


@dataclass(frozen=True)
class SimResult:
    """Point estimates (and 95% CIs where meaningful) from one replication."""

    params: MMSParams
    #: measured horizon (post warm-up)
    duration: float
    processor_utilization: float
    processor_utilization_hw: float
    access_rate: float
    lambda_net: float
    lambda_net_hw: float
    s_obs: float
    s_obs_hw: float
    l_obs: float
    l_obs_local: float
    l_obs_remote: float
    memory_utilization: float
    inbound_utilization: float
    outbound_utilization: float
    remote_messages: int
    cycles: int
    #: event-loop observability: ``{"events_processed", "max_event_queue",
    #: "stations": {kind: {"busy_frac", "occupancy", "completions"}}}``
    engine_stats: dict | None = None

    def summary(self) -> dict[str, float]:
        return {
            "U_p": self.processor_utilization,
            "lambda_net": self.lambda_net,
            "S_obs": self.s_obs,
            "L_obs": self.l_obs,
            "access_rate": self.access_rate,
        }


class _Thread:
    """Mutable token tracking one thread's in-flight timestamps."""

    __slots__ = ("node", "t_net_enter", "t_mem_enter", "dst")

    def __init__(self, node: int):
        self.node = node
        self.t_net_enter = 0.0
        self.t_mem_enter = 0.0
        self.dst = -1


class MMSSimulation:
    """One simulation replication of the MMS.

    Parameters
    ----------
    params:
        Model point (architecture + workload).  ``arch.memory_ports > 1``
        instantiates multiported memory modules.
    seed:
        RNG seed for this replication.
    memory_dist, switch_dist, runlength_dist:
        Service distributions, ``"exponential"`` (paper default) or
        ``"deterministic"`` (the paper's Section-8 robustness check varies
        the memory distribution).
    local_priority:
        Serve local memory requests ahead of remote ones (non-preemptive) --
        the EM-4 policy the paper's Section 7 mentions.
    switch_capacity:
        Finite buffer slots per *inbound* switch (waiting + in service);
        senders block with the job held until space frees (footnote 3's
        limited-buffer scenario).  ``None`` = unbounded (the paper's model).
    switch_pipeline_depth:
        ``d > 1`` makes every switch a ``d``-stage pipeline: latency ``S``,
        one message accepted every ``S/d``.  Incompatible with
        ``switch_capacity``.
    max_outstanding_remote:
        Credit-based end-to-end flow control: at most this many remote
        accesses of one PE in the network at a time; further injections wait
        (deadlock-free, unlike raw ``switch_capacity`` blocking).  This is
        the mechanism that realizes footnote 3's prediction that ``S_obs``
        saturates with ``n_t`` under finite buffering.
    pattern:
        Optional :class:`~repro.workload.AccessPattern` overriding the
        workload's named pattern (mirrors :class:`repro.core.MMSModel`).
    """

    def __init__(
        self,
        params: MMSParams,
        seed: int = 0,
        memory_dist: str = "exponential",
        switch_dist: str = "exponential",
        runlength_dist: str = "exponential",
        local_priority: bool = False,
        switch_capacity: int | None = None,
        switch_pipeline_depth: int = 1,
        max_outstanding_remote: int | None = None,
        pattern=None,
    ):
        self.params = params
        arch, wl = params.arch, params.workload
        self.torus = arch.torus
        p = self.torus.num_nodes
        self.engine = Engine(seed)
        self.local_priority = local_priority
        self.switch_capacity = switch_capacity
        if switch_pipeline_depth < 1:
            raise ValueError("pipeline depth must be >= 1")
        if switch_pipeline_depth > 1 and switch_capacity is not None:
            raise ValueError("pipelined switches cannot have finite buffers here")
        self.pipeline_depth = switch_pipeline_depth
        if max_outstanding_remote is not None and max_outstanding_remote < 1:
            raise ValueError("max_outstanding_remote must be >= 1")
        self.max_outstanding = max_outstanding_remote
        self._credits = [max_outstanding_remote or 0] * p
        self._inject_q: list[deque] = [deque() for _ in range(p)]

        self.procs = [
            FCFSServer(
                self.engine,
                wl.runlength,
                runlength_dist,
                f"proc{j}",
                overhead=arch.context_switch,
            )
            for j in range(p)
        ]
        mem_cls = PriorityFCFSServer if local_priority else FCFSServer
        self.mems = [
            mem_cls(
                self.engine,
                arch.memory_latency,
                memory_dist,
                f"mem{j}",
                servers=arch.memory_ports,
            )
            for j in range(p)
        ]
        if switch_pipeline_depth > 1:
            ii = arch.switch_delay / switch_pipeline_depth
            self.inbound = [
                PipelinedServer(self.engine, arch.switch_delay, ii, switch_dist, f"in{j}")
                for j in range(p)
            ]
            self.outbound = [
                PipelinedServer(self.engine, arch.switch_delay, ii, switch_dist, f"out{j}")
                for j in range(p)
            ]
        else:
            self.inbound = [
                FCFSServer(
                    self.engine,
                    arch.switch_delay,
                    switch_dist,
                    f"in{j}",
                    capacity=switch_capacity,
                )
                for j in range(p)
            ]
            self.outbound = [
                FCFSServer(self.engine, arch.switch_delay, switch_dist, f"out{j}")
                for j in range(p)
            ]

        # Destination sampling: cumulative per-source remote distribution.
        if p > 1 and wl.p_remote > 0:
            pat = pattern if pattern is not None else pattern_for(wl)
            q = pat.module_probability_matrix(self.torus)
            self._cum = np.cumsum(q, axis=1)
            # Guard against round-off: force the last positive column to 1.
            self._cum /= self._cum[:, -1:][:, [0]]
        else:
            self._cum = None

        # Routes are cached lazily per (src, dst) pair.
        self._routes: dict[tuple[int, int], tuple[int, ...]] = {}

        # --- measurement state (armed by run()) ---
        self._measuring = False
        self._s_obs = Welford()
        self._l_local = Welford()
        self._l_remote = Welford()
        self._s_batches: BatchMeans | None = None
        self._net_rate: RateBatches | None = None
        self._cycles = 0
        self._remote_msgs = 0

    # ----------------------------------------------------------- thread flow
    def _boot(self) -> None:
        wl = self.params.workload
        for node, proc in enumerate(self.procs):
            for _ in range(wl.num_threads):
                proc.arrive(_Thread(node), self._issue_access)

    def _issue_access(self, th: _Thread) -> None:
        """Processor finished a runlength: issue the thread's memory access."""
        if self._measuring:
            self._cycles += 1
        wl = self.params.workload
        rng = self.engine.rng
        if self._cum is None or rng.random() >= wl.p_remote:
            th.t_mem_enter = self.engine.now
            th.dst = th.node
            self._mem_arrive(th.node, th, self._local_done, local=True)
        else:
            th.dst = int(np.searchsorted(self._cum[th.node], rng.random()))
            if self.max_outstanding is not None and self._credits[th.node] <= 0:
                self._inject_q[th.node].append(th)  # wait for a credit
            else:
                if self.max_outstanding is not None:
                    self._credits[th.node] -= 1
                self._inject(th)

    def _inject(self, th: _Thread) -> None:
        """Enter the network through the source's outbound switch."""
        th.t_net_enter = self.engine.now
        if self._measuring:
            self._remote_msgs += 1
            if self._net_rate is not None:
                self._net_rate.add(self.engine.now)
        self.outbound[th.node].arrive(th, self._forward_hop)

    def _release_credit(self, node: int) -> None:
        """A remote round trip finished: admit a waiting injection, if any."""
        if self.max_outstanding is None:
            return
        if self._inject_q[node]:
            self._inject(self._inject_q[node].popleft())
        else:
            self._credits[node] += 1

    def _route(self, src: int, dst: int) -> tuple[int, ...]:
        key = (src, dst)
        r = self._routes.get(key)
        if r is None:
            r = route_nodes(self.torus, src, dst)
            self._routes[key] = r
        return r

    def _mem_arrive(self, node: int, th: _Thread, cb, local: bool) -> None:
        if self.local_priority:
            self.mems[node].arrive(th, cb, priority=0 if local else 1)
        else:
            self.mems[node].arrive(th, cb)

    def _enter_inbound(self, th: _Thread, node: int, on_done, sender) -> object:
        """Hand a message to an inbound switch, blocking the sender when the
        switch buffer is full (finite-capacity mode only)."""
        target = self.inbound[node]
        if self.switch_capacity is not None and not target.has_space():
            target.notify_space(sender.retry_held)
            return False
        target.arrive(th, on_done)
        return None

    def _forward_hop(self, th: _Thread, leg: int = 0) -> object:
        """Traverse the inbound switches of the request path ``node -> dst``."""
        path = self._route(th.node, th.dst)
        if leg == len(path):
            # Exited the network at the destination's inbound switch.
            self._record_net(th)
            th.t_mem_enter = self.engine.now
            self._mem_arrive(th.dst, th, self._remote_mem_done, local=False)
            return None
        nxt = path[leg]
        sender = self.outbound[th.node] if leg == 0 else self.inbound[path[leg - 1]]
        return self._enter_inbound(
            th, nxt, lambda t: self._forward_hop(t, leg + 1), sender
        )

    def _record_net(self, th: _Thread) -> None:
        if self._measuring:
            dt = self.engine.now - th.t_net_enter
            self._s_obs.add(dt)
            if self._s_batches is not None:
                self._s_batches.add(self.engine.now, dt)

    def _local_done(self, th: _Thread) -> None:
        if self._measuring:
            self._l_local.add(self.engine.now - th.t_mem_enter)
        self.procs[th.node].arrive(th, self._issue_access)

    def _remote_mem_done(self, th: _Thread) -> None:
        if self._measuring:
            self._l_remote.add(self.engine.now - th.t_mem_enter)
        th.t_net_enter = self.engine.now
        self.outbound[th.dst].arrive(th, self._return_hop)

    def _return_hop(self, th: _Thread, leg: int = 0) -> object:
        """Traverse the inbound switches of the response path ``dst -> node``."""
        path = self._route(th.dst, th.node)
        if leg == len(path):
            self._record_net(th)
            self._release_credit(th.node)
            self.procs[th.node].arrive(th, self._issue_access)
            return None
        nxt = path[leg]
        sender = self.outbound[th.dst] if leg == 0 else self.inbound[path[leg - 1]]
        return self._enter_inbound(
            th, nxt, lambda t: self._return_hop(t, leg + 1), sender
        )

    # ------------------------------------------------------------------- run
    def run(self, duration: float = 100_000.0, warmup: float | None = None) -> SimResult:
        """Simulate ``warmup + duration`` time units; measure the last
        ``duration`` (warm-up defaults to 10% of the horizon, min 1000)."""
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        if warmup is None:
            warmup = max(0.1 * duration, 1000.0)
        with trace_span(
            "sim.run",
            processors=self.torus.num_nodes,
            threads=self.params.workload.num_threads,
            duration=duration,
        ) as sp:
            self._boot()
            self.engine.run_until(warmup)
            # Arm measurement and reset station accounting at the warm-up mark.
            t0 = self.engine.now
            t_end = warmup + duration
            self._measuring = True
            self._s_batches = BatchMeans(t0, t_end)
            self._net_rate = RateBatches(t0, t_end)
            for st in (*self.procs, *self.mems, *self.inbound, *self.outbound):
                st.reset_accounting(t0)
            self.engine.run_until(t_end)
            if self.switch_capacity is not None and self.engine.pending == 0:
                held = any(
                    getattr(st, "_held", None)
                    for st in (*self.inbound, *self.outbound)
                )
                if held:
                    raise RuntimeError(
                        "network deadlocked: a cycle of full switch buffers "
                        f"(capacity={self.switch_capacity}) blocked all traffic; "
                        "raise switch_capacity or lower num_threads"
                    )
            result = self._collect(t0, t_end)
            sp.set(
                events=self.engine.events_processed,
                max_event_queue=self.engine.max_pending,
                stations=result.engine_stats["stations"],
            )
            reg = obs_registry()
            reg.counter("sim.runs").inc()
            reg.counter("sim.events").inc(self.engine.events_processed)
            reg.gauge("sim.max_event_queue").update_max(self.engine.max_pending)
            return result

    def _collect(self, t0: float, t_end: float) -> SimResult:
        arch, wl = self.params.arch, self.params.workload
        p = self.torus.num_nodes
        span = t_end - t0

        busy = [proc.busy_time_until(t_end) / span for proc in self.procs]
        r_eff = wl.runlength + arch.context_switch
        useful = wl.runlength / r_eff if r_eff > 0 else 1.0
        u_vals = [b * useful for b in busy]
        u_mean = float(np.mean(u_vals))
        u_hw = (
            1.96 * float(np.std(u_vals, ddof=1)) / np.sqrt(p) if p > 1 else float("inf")
        )

        def util(stations: list) -> float:
            vals = []
            for s in stations:
                if isinstance(s, FCFSServer):
                    vals.append(s.utilization_until(t_end, span))
                else:  # pipelined: issue-slot occupancy
                    vals.append(s.busy_time_until(t_end) / span)
            return float(np.mean(vals))

        lam_net = (self._net_rate.rate / p) if self._net_rate else 0.0
        lam_hw = (self._net_rate.halfwidth() / p) if self._net_rate else 0.0

        # Event-loop + per-station accounting for the observability layer.
        # ``busy_frac`` integrates busy server-time over the measured span;
        # ``occupancy`` is a point sample of jobs present at collection.
        station_groups = (
            ("processor", self.procs),
            ("memory", self.mems),
            ("inbound", self.inbound),
            ("outbound", self.outbound),
        )
        engine_stats = {
            "events_processed": self.engine.events_processed,
            "max_event_queue": self.engine.max_pending,
            "stations": {
                kind: {
                    "busy_frac": float(
                        np.mean([s.busy_time_until(t_end) for s in group]) / span
                    ),
                    "occupancy": float(
                        np.mean(
                            [
                                getattr(s, "jobs_present", None) or s.queue_length
                                for s in group
                            ]
                        )
                    ),
                    "completions": int(sum(s.completions for s in group)),
                }
                for kind, group in station_groups
            },
        }

        n_local = self._l_local.count
        n_remote = self._l_remote.count
        n_mem = n_local + n_remote
        l_obs = (
            (self._l_local.mean * n_local + self._l_remote.mean * n_remote) / n_mem
            if n_mem
            else 0.0
        )
        access_rate = self._cycles / span / p

        return SimResult(
            params=self.params,
            duration=span,
            processor_utilization=u_mean,
            processor_utilization_hw=u_hw,
            access_rate=access_rate,
            lambda_net=lam_net,
            lambda_net_hw=lam_hw,
            s_obs=self._s_obs.mean if self._s_obs.count else 0.0,
            s_obs_hw=self._s_batches.halfwidth() if self._s_batches else float("inf"),
            l_obs=l_obs,
            l_obs_local=self._l_local.mean if n_local else 0.0,
            l_obs_remote=self._l_remote.mean if n_remote else 0.0,
            memory_utilization=util(self.mems),
            inbound_utilization=util(self.inbound),
            outbound_utilization=util(self.outbound),
            remote_messages=self._remote_msgs,
            cycles=self._cycles,
            engine_stats=engine_stats,
        )


def simulate(
    params: MMSParams,
    duration: float = 100_000.0,
    seed: int = 0,
    warmup: float | None = None,
    **dists: str,
) -> SimResult:
    """One-shot convenience wrapper around :class:`MMSSimulation`."""
    return MMSSimulation(params, seed=seed, **dists).run(duration, warmup)
