"""Output analysis for the simulator: streaming moments and batch means.

The paper's validation (Section 8) runs the Petri-net simulation for 100,000
time units and compares steady-state measures; we add standard machinery the
paper leaves implicit: warm-up truncation and batch-means confidence
intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Welford", "BatchMeans", "ci_halfwidth"]

#: two-sided 95% normal quantile (batch counts are ~20+, normal is fine)
Z95 = 1.959963984540054


class Welford:
    """Streaming mean/variance accumulator (numerically stable)."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance (0 with fewer than two observations)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "Welford") -> None:
        """Pool another accumulator into this one (parallel Welford)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self._m2 = other.count, other.mean, other._m2
            return
        n = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / n
        self.mean += delta * other.count / n
        self.count = n


@dataclass
class BatchMeans:
    """Fixed-count batch means over a simulation horizon.

    Observations are assigned to batches by *time stamp*; the per-batch means
    are treated as approximately independent for the confidence interval.
    """

    t_start: float
    t_end: float
    num_batches: int = 20
    _sums: list[float] = field(default_factory=list)
    _counts: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.t_end <= self.t_start:
            raise ValueError("need t_end > t_start")
        if self.num_batches < 2:
            raise ValueError("need >= 2 batches")
        self._sums = [0.0] * self.num_batches
        self._counts = [0] * self.num_batches

    def add(self, t: float, x: float) -> None:
        """Record observation ``x`` made at time ``t`` (ignored outside the
        horizon)."""
        if not self.t_start <= t < self.t_end:
            return
        width = (self.t_end - self.t_start) / self.num_batches
        b = min(int((t - self.t_start) / width), self.num_batches - 1)
        self._sums[b] += x
        self._counts[b] += 1

    def batch_values(self) -> list[float]:
        """Per-batch means (only batches that received observations)."""
        return [s / c for s, c in zip(self._sums, self._counts) if c > 0]

    @property
    def mean(self) -> float:
        total = sum(self._sums)
        count = sum(self._counts)
        return total / count if count else float("nan")

    def halfwidth(self) -> float:
        """95% CI half-width of the mean from the batch means."""
        return ci_halfwidth(self.batch_values())


def ci_halfwidth(values: list[float]) -> float:
    """95% normal-approximation CI half-width of the mean of ``values``."""
    n = len(values)
    if n < 2:
        return float("inf")
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return Z95 * math.sqrt(var / n)


@dataclass
class RateBatches:
    """Batch-means estimator for an *event rate* (events per time unit).

    Each batch's rate is its event count over the batch width; the CI treats
    per-batch rates as approximately independent.
    """

    t_start: float
    t_end: float
    num_batches: int = 20
    _counts: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.t_end <= self.t_start:
            raise ValueError("need t_end > t_start")
        if self.num_batches < 2:
            raise ValueError("need >= 2 batches")
        self._counts = [0] * self.num_batches

    def add(self, t: float) -> None:
        """Record one event at time ``t`` (ignored outside the horizon)."""
        if not self.t_start <= t < self.t_end:
            return
        width = (self.t_end - self.t_start) / self.num_batches
        b = min(int((t - self.t_start) / width), self.num_batches - 1)
        self._counts[b] += 1

    @property
    def total(self) -> int:
        return sum(self._counts)

    @property
    def rate(self) -> float:
        return self.total / (self.t_end - self.t_start)

    def halfwidth(self) -> float:
        width = (self.t_end - self.t_start) / self.num_batches
        return ci_halfwidth([c / width for c in self._counts])
