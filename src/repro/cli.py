"""Command-line interface: ``repro-mms`` (or ``python -m repro``).

Subcommands
-----------
``solve``       solve one parameter point and print the measures
``tolerance``   tolerance indices and zones for one point
``bottleneck``  the closed-form saturation laws (Eqs. 4/5)
``experiment``  regenerate a paper table/figure by name
``validate``    model-vs-simulation comparison (Figure 11)
``sweep``       managed parameter sweep (parallel workers + result cache);
                ``--fabric DIR`` distributes it across worker processes
``worker``      serve leases from a sweep fabric (``docs/DISTRIBUTED.md``)
``exp``         query a fabric's experiment database
                (list/show/trials/quarantine)
``serve``       long-lived coalescing solve service over HTTP
``report``      time-attribution report from a manifest or trace
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from . import analysis
from .core import MMSModel, analyze, tolerance_report
from .fabric.db import FabricError
from .params import ParamError, paper_defaults
from .resilience.journal import JournalError
from .scenarios import ScenarioUnavailableError

__all__ = ["main", "build_parser"]

EXPERIMENTS: dict[str, Callable[[], "analysis.ExperimentResult"]] = {
    "fig4": lambda: analysis.fig4_5_workload_surfaces(10.0),
    "fig5": lambda: analysis.fig4_5_workload_surfaces(20.0),
    "fig6": analysis.fig6_tolerance_surface,
    "fig7": analysis.fig7_iso_work_lines,
    "fig8": analysis.fig8_memory_surface,
    "fig9": analysis.fig9_scaling_tolerance,
    "fig10": analysis.fig10_throughput_scaling,
    "table2": analysis.table2_network_tolerance,
    "table3": analysis.table3_partitioning_network,
    "table4": analysis.table4_partitioning_memory,
    "claims": analysis.headline_claims,
    "ext-ports": analysis.ext_memory_ports,
    "ext-priority": analysis.ext_local_priority,
    "ext-buffers": analysis.ext_finite_buffers,
    "ext-pipeline": analysis.ext_pipelined_switches,
    "ext-hotspot": analysis.ext_hotspot,
    "ext-context": analysis.ext_context_switch,
}


def _add_point_args(
    p: argparse.ArgumentParser,
    method_choices: tuple[str, ...] = ("symmetric", "amva", "linearizer", "exact"),
    method_default: str = "symmetric",
) -> None:
    p.add_argument("--k", type=int, default=4, help="PEs per torus dimension")
    p.add_argument("--nt", type=int, default=8, help="threads per processor")
    p.add_argument("--runlength", "-R", type=float, default=10.0)
    p.add_argument("--p-remote", type=float, default=0.2)
    p.add_argument(
        "--pattern",
        choices=("geometric", "uniform", "hotspot"),
        default="geometric",
    )
    p.add_argument("--p-sw", type=float, default=0.5)
    p.add_argument("--hot-node", type=int, default=0)
    p.add_argument("--hot-fraction", type=float, default=0.5)
    p.add_argument("--memory-ports", type=int, default=1)
    p.add_argument("--memory-latency", "-L", type=float, default=10.0)
    p.add_argument("--switch-delay", "-S", type=float, default=10.0)
    p.add_argument("--context-switch", "-C", type=float, default=0.0)
    p.add_argument("--method", choices=method_choices, default=method_default)


def _params_from(args: argparse.Namespace):
    return paper_defaults(
        k=args.k,
        num_threads=args.nt,
        runlength=args.runlength,
        p_remote=args.p_remote,
        pattern=args.pattern,
        p_sw=args.p_sw,
        hot_node=args.hot_node,
        hot_fraction=args.hot_fraction,
        memory_latency=args.memory_latency,
        switch_delay=args.switch_delay,
        context_switch=args.context_switch,
        memory_ports=args.memory_ports,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mms",
        description="Latency tolerance analysis of multithreaded architectures "
        "(Nemawarkar & Gao, IPPS 1997 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve one parameter point")
    _add_point_args(p_solve)

    p_tol = sub.add_parser("tolerance", help="tolerance indices for one point")
    _add_point_args(p_tol)

    p_bn = sub.add_parser("bottleneck", help="closed-form saturation laws")
    _add_point_args(p_bn)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument("name", choices=sorted(EXPERIMENTS), help="experiment id")
    p_exp.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="additionally dump the experiment's raw data as JSON",
    )

    p_val = sub.add_parser("validate", help="model vs simulation (Figure 11)")
    p_val.add_argument("--duration", type=float, default=30_000.0)
    p_val.add_argument("--seed", type=int, default=0)

    p_sens = sub.add_parser(
        "sensitivity", help="parameter elasticities at one point"
    )
    _add_point_args(p_sens)
    p_sens.add_argument("--measure", default="U_p")

    p_zone = sub.add_parser(
        "zones", help="find the tolerated-zone boundary along an axis"
    )
    _add_point_args(p_zone)
    p_zone.add_argument("--axis", default="p_remote")
    p_zone.add_argument("--subsystem", choices=("network", "memory"),
                        default="network")
    p_zone.add_argument("--threshold", type=float, default=0.8)
    p_zone.add_argument("--lo", type=float, default=0.0)
    p_zone.add_argument("--hi", type=float, default=1.0)

    p_rep = sub.add_parser(
        "replicate", help="simulate with independent replications"
    )
    _add_point_args(p_rep)
    p_rep.add_argument("--replications", type=int, default=5)
    p_rep.add_argument("--duration", type=float, default=20_000.0)

    p_sweep = sub.add_parser(
        "sweep",
        help="managed parameter sweep (parallel workers + result cache)",
        description="Cartesian-product sweep over any model parameters, "
        "executed by the runner subsystem: points are deduplicated by "
        "content-addressed key, served from a persistent cache when one is "
        "configured, and solved on a process pool with --jobs > 1.",
    )
    _add_point_args(
        p_sweep,
        method_choices=("auto", "symmetric", "amva", "linearizer", "exact", "bound"),
        method_default="auto",
    )
    p_sweep.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="workload/topology family to sweep (torus, worksteal, hier; "
        "see docs/SCENARIOS.md).  Default honours repro.configure/"
        "REPRO_SCENARIO, else torus.  The point flags above apply to the "
        "torus only; other scenarios start from their registered defaults "
        "and --axis names must be fields of the active scenario",
    )
    p_sweep.add_argument(
        "--axis",
        action="append",
        required=True,
        metavar="NAME=V1,V2,... | NAME=LO:HI:STEPS",
        help="sweep axis (repeatable); values are a comma list or a "
        "LO:HI:STEPS linspace, e.g. --axis num_threads=1,2,4,8 "
        "--axis p_remote=0.1:0.8:8",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial)"
    )
    p_sweep.add_argument(
        "--backend",
        default="auto",
        metavar="{auto,batch,process,serial}",
        help="execution backend: 'batch' stacks same-shape points into one "
        "batched AMVA fixed point, 'process' uses a worker pool, 'serial' "
        "solves point by point; 'auto' (default) picks for you",
    )
    p_sweep.add_argument(
        "--kernel",
        default=None,
        metavar="{auto,numpy,numba}",
        help="solver kernel for batched solves: 'numpy' is the reference, "
        "'numba' the compiled (bitwise-identical) one, 'auto' picks numba "
        "when available; default honours repro.configure/REPRO_SOLVE_KERNEL",
    )
    p_sweep.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result cache directory "
        "(default: $REPRO_CACHE_DIR, else no cache)",
    )
    p_sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache even if configured",
    )
    p_sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point solve budget in seconds (parallel runs only)",
    )
    p_sweep.add_argument(
        "--retries", type=int, default=1, help="extra attempts for failed points"
    )
    p_sweep.add_argument(
        "--measure",
        default=None,
        help="print only this measure (a summary key such as U_p, or an "
        "MMSPerformance attribute); default: all summary measures",
    )
    p_sweep.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write deterministic per-point records as JSON lines",
    )
    p_sweep.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="write the run manifest (timings, cache hit rate) as JSON",
    )
    p_sweep.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a repro-trace/1 JSONL trace of the run (spans for "
        "every stage, solve and simulator call, plus a final metrics "
        "snapshot); render it with `repro-mms report PATH`",
    )
    p_sweep.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="durably journal every completed point to PATH so an interrupted "
        "sweep can be resumed (default with --resume: MANIFEST.journal)",
    )
    p_sweep.add_argument(
        "--resume",
        metavar="MANIFEST",
        default=None,
        help="resume the sweep that wrote MANIFEST: completed points are "
        "replayed from its journal (and the cache), only the remainder is "
        "solved, and the manifest is rewritten; the sweep definition must "
        "be identical",
    )
    p_sweep.add_argument(
        "--fabric",
        metavar="DIR",
        default=None,
        help="distribute the sweep across worker processes coordinating "
        "through DIR (experiment database + shared result store); the "
        "sweep is restartable -- rerunning the same command resumes it. "
        "See docs/DISTRIBUTED.md",
    )
    p_sweep.add_argument(
        "--workers",
        type=int,
        default=2,
        help="local fabric worker processes to spawn (with --fabric; "
        "0 = rely on externally started workers)",
    )
    p_sweep.add_argument(
        "--lease-points",
        type=int,
        default=32,
        help="trials per fabric lease (the dispatch batching grain)",
    )
    p_sweep.add_argument(
        "--lease-ttl",
        type=float,
        default=15.0,
        help="seconds a fabric lease survives without a worker heartbeat",
    )
    p_sweep.add_argument(
        "--max-attempts",
        type=int,
        default=5,
        help="per-trial dispatch budget (with --fabric): a trial failing "
        "this many times goes terminal -- quarantined when >= 2 distinct "
        "workers tried it, else failed",
    )

    p_worker = sub.add_parser(
        "worker",
        help="serve leases from a sweep fabric",
        description="Pull-based fabric worker: claims leases of pending "
        "trials from the experiment database in --fabric, solves them "
        "through the ordinary backend stack, and appends results to the "
        "fabric's shared store.  Run any number of these -- on this host "
        "or any host sharing the directory.  See docs/DISTRIBUTED.md.",
    )
    p_worker.add_argument(
        "--fabric", metavar="DIR", required=True, help="fabric directory"
    )
    p_worker.add_argument(
        "--experiment",
        default=None,
        help="experiment id to serve (default: newest running experiment, "
        "waiting up to --wait seconds for one to appear)",
    )
    p_worker.add_argument(
        "--worker-id", default=None, help="fleet-unique id (default host-pid)"
    )
    p_worker.add_argument("--lease-points", type=int, default=32)
    p_worker.add_argument("--lease-ttl", type=float, default=15.0)
    p_worker.add_argument(
        "--poll", type=float, default=0.2, help="idle seconds between claims"
    )
    p_worker.add_argument(
        "--backend",
        choices=("auto", "batch", "process", "serial"),
        default="auto",
    )
    p_worker.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="default scenario for this worker process (leased payloads "
        "carrying their own scenario always win); unknown names are "
        "rejected up front",
    )
    p_worker.add_argument(
        "--kernel",
        default=None,
        metavar="{auto,numpy,numba}",
        help="solver kernel for this worker's solves",
    )
    p_worker.add_argument("--retries", type=int, default=1)
    p_worker.add_argument("--timeout", type=float, default=None)
    p_worker.add_argument(
        "--max-leases",
        type=int,
        default=None,
        help="exit after this many leases (bounded shift)",
    )
    p_worker.add_argument(
        "--wait",
        type=float,
        default=30.0,
        help="seconds to wait for a running experiment to appear",
    )
    p_worker.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write this worker's span trace to FILE (JSONL); the "
        "scheduler passes FABRIC/obs/trace-wN.jsonl when the sweep "
        "itself runs with --trace",
    )

    p_exp = sub.add_parser(
        "exp",
        help="query a fabric's experiment database",
        description="Inspect experiments, dispatch accounting, and "
        "per-trial status in a fabric directory's experiment database.",
    )
    esub = p_exp.add_subparsers(dest="exp_command", required=True)
    e_list = esub.add_parser("list", help="all experiments, newest first")
    e_list.add_argument("--fabric", metavar="DIR", required=True)
    e_show = esub.add_parser(
        "show", help="one experiment: status, dispatch stats, workers"
    )
    e_show.add_argument("--fabric", metavar="DIR", required=True)
    e_show.add_argument(
        "experiment_id",
        nargs="?",
        default=None,
        help="default: the newest experiment",
    )
    e_trials = esub.add_parser("trials", help="per-trial status lines")
    e_trials.add_argument("--fabric", metavar="DIR", required=True)
    e_trials.add_argument("experiment_id", nargs="?", default=None)
    e_trials.add_argument(
        "--status",
        choices=("pending", "leased", "done", "failed", "quarantined"),
        default=None,
        help="only trials in this state",
    )
    e_quar = esub.add_parser(
        "quarantine",
        help="inspect or retry quarantined (poison) trials",
        description="Trials that exhausted their dispatch budget across "
        ">= 2 distinct workers are quarantined with their last error; the "
        "rest of the experiment drains without them.  'list' shows them, "
        "'retry' resets them to pending with a fresh attempt budget.",
    )
    qsub = e_quar.add_subparsers(dest="quarantine_command", required=True)
    q_list = qsub.add_parser("list", help="quarantined trials + last errors")
    q_list.add_argument("--fabric", metavar="DIR", required=True)
    q_list.add_argument("experiment_id", nargs="?", default=None)
    q_retry = qsub.add_parser(
        "retry", help="return quarantined trials to pending"
    )
    q_retry.add_argument("--fabric", metavar="DIR", required=True)
    q_retry.add_argument("experiment_id", nargs="?", default=None)
    q_retry.add_argument(
        "--key",
        action="append",
        default=None,
        metavar="KEY",
        help="retry only this trial key (repeatable; default: all)",
    )

    p_report = sub.add_parser(
        "report",
        help="time-attribution report from a run manifest or trace",
        description="Render per-stage (and, for simulator traces, "
        "per-station) time-attribution tables from either a sweep manifest "
        "JSON (--manifest) or a JSONL trace (--trace).",
    )
    p_report.add_argument("path", help="manifest .json or trace .jsonl file")

    p_dash = sub.add_parser(
        "dashboard",
        help="render a static HTML dashboard from a run artifact",
        description="Self-contained HTML (inline SVG, no dependencies) "
        "from a fabric directory (per-worker sweep timeline, fleet "
        "tables), a sweep manifest JSON, a JSONL span trace, or a "
        "/seriesz time-series dump.  Open the output in any browser.",
    )
    p_dash.add_argument(
        "path", help="fabric dir, manifest .json, trace .jsonl, or series dump"
    )
    p_dash.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="output HTML path (default: dashboard.html beside the input)",
    )
    p_dash.add_argument(
        "--experiment",
        default=None,
        help="experiment id for fabric-dir inputs (default: newest)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the coalescing solve service over HTTP",
        description="Long-lived JSON solve service (POST /solve, GET "
        "/healthz, GET /metricsz) with adaptive micro-batching, two-tier "
        "caching, and explicit backpressure.  See docs/SERVING.md.",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8787, help="bind port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=64, help="widest coalesced solve"
    )
    p_serve.add_argument(
        "--linger-us",
        type=float,
        default=5000.0,
        help="max microseconds a request may wait for batch-mates",
    )
    p_serve.add_argument(
        "--min-linger-us",
        type=float,
        default=200.0,
        help="floor of the adaptive linger window, microseconds",
    )
    p_serve.add_argument(
        "--no-adaptive",
        action="store_true",
        help="always linger the full window instead of adapting to traffic",
    )
    p_serve.add_argument(
        "--max-queue",
        type=int,
        default=1024,
        help="in-flight request bound before 429 backpressure",
    )
    p_serve.add_argument(
        "--memory-cache",
        type=int,
        default=4096,
        help="in-memory LRU entries (0 disables)",
    )
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result store shared with sweeps "
        "(default: REPRO_CACHE_DIR if set)",
    )
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default per-request deadline, seconds",
    )
    p_serve.add_argument(
        "--kernel",
        default=None,
        metavar="{auto,numpy,numba}",
        help="solver kernel for batched flushes "
        "(default honours repro.configure/REPRO_SOLVE_KERNEL)",
    )
    p_serve.add_argument(
        "--series-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="metrics time-series sampling interval for GET /seriesz "
        "(0 disables the recorder)",
    )
    p_serve.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        metavar="RPS",
        help="per-client admission rate, requests/second "
        "(0 disables rate limiting)",
    )
    p_serve.add_argument(
        "--rate-burst",
        type=float,
        default=0.0,
        metavar="N",
        help="per-client token-bucket burst (default: max(1, --rate-limit))",
    )
    p_serve.add_argument(
        "--target-wait",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="CoDel shedding target: estimated queue waits above this shed "
        "requests that cannot make their deadline (0 disables shedding)",
    )
    p_serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive batched-solve failures before the circuit "
        "breaker opens and flushes degrade to per-point solves "
        "(0 disables the breaker)",
    )
    p_serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds an open breaker waits before half-open probes",
    )
    p_serve.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="default scenario applied to /solve bodies that do not name "
        "one (a body's \"scenario\" key always wins); default torus",
    )

    p_all = sub.add_parser(
        "reproduce-all",
        help="run every registered experiment and archive the outputs",
    )
    p_all.add_argument(
        "--out", default="reproduction", help="output directory (created)"
    )
    p_all.add_argument(
        "--skip-slow",
        action="store_true",
        help="skip the simulation-backed experiments",
    )
    return parser


def _coerce_token(token: str) -> object:
    """Axis value: int, float, bool, or bare string -- whichever parses."""
    low = token.lower()
    if low in ("true", "false"):
        return low == "true"
    for cast in (int, float):
        try:
            return cast(token)
        except ValueError:
            continue
    return token


def _parse_axes(specs: list[str]) -> dict[str, list[object]]:
    """``NAME=V1,V2,...`` or ``NAME=LO:HI:STEPS`` -> ordered axes mapping."""
    import numpy as np

    axes: dict[str, list[object]] = {}
    for spec in specs:
        name, eq, body = spec.partition("=")
        name, body = name.strip(), body.strip()
        if not eq or not name or not body:
            raise SystemExit(
                f"bad --axis {spec!r}: expected NAME=V1,V2,... or NAME=LO:HI:STEPS"
            )
        if ":" in body:
            parts = body.split(":")
            if len(parts) != 3:
                raise SystemExit(f"bad --axis range {spec!r}: expected LO:HI:STEPS")
            lo, hi, steps = float(parts[0]), float(parts[1]), int(parts[2])
            values: list[object] = [float(v) for v in np.linspace(lo, hi, steps)]
        else:
            values = [_coerce_token(t.strip()) for t in body.split(",") if t.strip()]
        if not values:
            raise SystemExit(f"bad --axis {spec!r}: no values")
        axes[name] = values
    return axes


def _run_sweep(args: argparse.Namespace) -> int:
    import os
    from itertools import product

    from .analysis.sweep import _apply_measure
    from .queueing.kernels import validate_kernel_name
    from .runner import JobSpec, SweepRunner, canonical_json
    from .runner.executor import BACKENDS
    from .scenarios import resolve_scenario

    # validate the execution knobs up front -- both the runner and the
    # fabric paths must reject bad names with one clean line that
    # enumerates the valid choices (exit 2, the CLI error contract)
    if args.backend not in BACKENDS:
        raise ParamError(
            f"unknown backend {args.backend!r}; pick from {'/'.join(BACKENDS)}"
        )
    if args.kernel is not None:
        try:
            validate_kernel_name(args.kernel)
        except ValueError as exc:
            raise ParamError(str(exc)) from None
    # unknown --scenario raises ScenarioUnavailableError (also exit 2)
    scen = resolve_scenario(args.scenario)

    axes = _parse_axes(args.axis)
    fields = scen.field_names()
    for name in axes:
        if name not in fields:
            raise ParamError(
                f"unknown sweep axis {name!r} for scenario {scen.name!r}; "
                f"fields: {'/'.join(fields)}"
            )
    # the point flags parameterize the torus; other scenarios sweep from
    # their registered defaults (their fields are not CLI flags)
    base = _params_from(args) if scen.name == "torus" else scen.default_params()
    try:
        scen.canonical_method(base, args.method)
    except ValueError as exc:
        # a method the active scenario does not solve is user error
        raise ParamError(str(exc)) from None
    cache_dir = (
        None
        if args.no_cache
        else (args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None)
    )
    manifest_path = args.manifest
    journal_path = args.journal
    resume = args.resume is not None
    if resume:
        manifest_path = manifest_path or args.resume
        journal_path = journal_path or f"{args.resume}.journal"
    runner = None
    if args.fabric is not None:
        # the fabric owns durability (experiment DB) and the store
        # (FABRIC/store), so the single-host knobs don't compose with it
        if journal_path or resume:
            raise ParamError(
                "--fabric sweeps journal into the experiment database; "
                "rerun the same command to resume instead of --journal/--resume"
            )
        if args.cache_dir:
            raise ParamError(
                "--fabric sweeps share the store under FABRIC/store; "
                "drop --cache-dir"
            )
        if args.workers < 0:
            raise ParamError(f"--workers must be >= 0, got {args.workers}")
        from .fabric import FabricScheduler

        scheduler = FabricScheduler(
            args.fabric,
            lease_ttl=args.lease_ttl,
            lease_points=args.lease_points,
            backend=args.backend,
            kernel=args.kernel,
            retries=args.retries,
            timeout=args.timeout,
            trace_workers=args.trace is not None,
            max_attempts=args.max_attempts,
        )

        def run_fn(specs):
            with scheduler:
                return scheduler.run(specs, workers=args.workers)

    else:
        try:
            runner = SweepRunner(
                jobs=args.jobs,
                cache_dir=cache_dir,
                timeout=args.timeout,
                retries=args.retries,
                backend=args.backend,
                journal=journal_path,
                resume=resume,
                kernel=args.kernel,
            )
        except ValueError as exc:
            # constructor validation of --jobs/--retries/--backend/--kernel
            # is user error (including an explicitly requested kernel that
            # is not importable here)
            raise ParamError(str(exc)) from None
        run_fn = runner.run
    names = list(axes)
    combos = list(product(*(axes[n] for n in names)))
    specs = [
        JobSpec(
            params=scen.with_overrides(base, **dict(zip(names, combo))),
            method=args.method,
            scenario=scen.name,
        )
        for combo in combos
    ]

    if args.trace:
        from . import obs
        from .obs import trace as obs_trace

        prev = obs_trace.configure(trace=args.trace)
        try:
            report = run_fn(specs)
            tracer = obs.get_tracer()
            if report.manifest.metrics is not None:
                tracer.write_event(
                    {"kind": "metrics", "metrics": report.manifest.metrics}
                )
            tracer.close()
        finally:
            obs_trace.configure(**prev)
    else:
        report = run_fn(specs)

    out_fh = open(args.out, "w") if args.out else None
    try:
        for combo, result in zip(combos, report.results):
            point = " ".join(f"{n}={v}" for n, v in zip(names, combo))
            if not result.ok:
                print(f"{point}  FAILED: {result.error}")
                continue
            if args.measure:
                key, value = _apply_measure(args.measure, result.params, result.perf)
                print(f"{point}  {key}={value:.6g}")
            else:
                measures = " ".join(
                    f"{k}={v:.6g}" for k, v in result.perf.summary().items()
                )
                print(f"{point}  {measures}")
            if out_fh is not None:
                record = {"axes": dict(zip(names, combo)), **result.record()}
                out_fh.write(canonical_json(record) + "\n")
    finally:
        if out_fh is not None:
            out_fh.close()

    manifest = report.manifest
    print(f"[sweep] {manifest.summary()}")
    for batch in manifest.solver_batches:
        print(
            f"[batch] {batch['method']}: {batch['batch_size']} points in "
            f"{batch['iterations']} iterations "
            f"(max residual {batch['max_residual']:.2e}, "
            f"{batch['wall_time_s'] * 1e3:.1f} ms)"
        )
    if manifest.journal_path:
        print(
            f"[journal] path={manifest.journal_path} "
            f"replayed={manifest.journal_hits} resumed={manifest.resumed}"
        )
    for entry in manifest.degradations:
        print(
            f"[degrade] {entry['from_mode']} -> {entry['to_mode']}: "
            f"{entry['reason']} ({entry['points']} points)"
        )
    store_stats = manifest.store or {}
    if store_stats.get("quarantined") or store_stats.get("index_rebuilds"):
        print(
            f"[integrity] quarantined={store_stats.get('quarantined', 0)} "
            f"index_rebuilds={store_stats.get('index_rebuilds', 0)}"
        )
    if manifest.fabric:
        fb = manifest.fabric
        print(
            f"[fabric] experiment={fb['experiment_id']} "
            f"workers={fb['workers']} leases={fb['leases_granted']} "
            f"expired={fb['leases_expired']} "
            f"redispatched={fb['redispatched_trials']}"
        )
    if runner is not None and cache_dir:
        print(f"[cache] dir={cache_dir} entries={len(runner.store)}")
    if args.out:
        print(f"[records written to {args.out}]")
    if manifest_path:
        manifest.to_json(manifest_path)
        print(f"[manifest written to {manifest_path}]")
    if args.trace:
        print(f"[trace written to {args.trace}]")
    return 0 if report.ok else 1


def _run_worker(args: argparse.Namespace) -> int:
    from .fabric import FabricWorker
    from .scenarios import set_default_scenario

    if args.scenario is not None:
        # rejects unknown names up front (exit 2); leased payloads that
        # carry their own scenario are unaffected by this default
        set_default_scenario(args.scenario)
    worker = FabricWorker(
        args.fabric,
        experiment_id=args.experiment,
        worker_id=args.worker_id,
        lease_points=args.lease_points,
        lease_ttl=args.lease_ttl,
        poll_s=args.poll,
        backend=args.backend,
        kernel=args.kernel,
        retries=args.retries,
        timeout=args.timeout,
        max_leases=args.max_leases,
        wait_s=args.wait,
        trace=args.trace,
    )
    stats = worker.run()
    print(
        f"[worker] id={worker.worker_id} leases={stats.leases} "
        f"points={stats.points} solved={stats.solved} failed={stats.failed}",
        flush=True,
    )
    return 0


def _fmt_age(now: float, then: float | None) -> str:
    return "-" if then is None else f"{max(0.0, now - then):.0f}s ago"


def _run_exp(args: argparse.Namespace) -> int:
    import json
    import time as _time

    from .fabric import ExperimentDB

    with ExperimentDB(args.fabric) as db:
        if args.exp_command == "list":
            rows = db.experiments()
            if not rows:
                print("no experiments")
                return 0
            now = _time.time()
            for row in rows:
                counts = db.counts(row["experiment_id"])
                done = (
                    counts["done"] + counts["failed"] + counts["quarantined"]
                )
                print(
                    f"{row['experiment_id']}  {row['status']:8s} "
                    f"{done}/{row['total_trials']} trials  "
                    f"created {_fmt_age(now, row['created_s'])}"
                )
            return 0

        experiment_id = args.experiment_id
        if experiment_id is None:
            rows = db.experiments()
            if not rows:
                raise FabricError(f"no experiments in {args.fabric}")
            experiment_id = rows[0]["experiment_id"]

        if args.exp_command == "show":
            exp = db.experiment(experiment_id)
            stats = db.stats(experiment_id)
            now = _time.time()
            print(f"experiment      {experiment_id}")
            print(f"status          {exp['status']}")
            print(f"signature       {exp['signature']}")
            print(f"solver_version  {exp['solver_version']}")
            print(f"created         {_fmt_age(now, exp['created_s'])}")
            if exp["finished_s"] is not None:
                print(f"finished        {_fmt_age(now, exp['finished_s'])}")
            trials = stats["trials"]
            print(
                f"trials          {exp['total_trials']} total: "
                + " ".join(f"{k}={trials[k]}" for k in trials)
            )
            print(
                f"leases          granted={stats['leases_granted']} "
                f"expired={stats['leases_expired']} "
                f"active={stats['leases_active']}"
            )
            print(
                f"dispatch        attempts={stats['dispatch_attempts']} "
                f"max_attempts={stats['max_attempts']} "
                f"redispatched={stats['redispatched_trials']}"
            )
            workers = db.workers(experiment_id)
            print(f"workers         {len(workers)}")
            for w in workers:
                print(
                    f"  {w['worker_id']}  {w['status']:7s} "
                    f"heartbeat {_fmt_age(now, w['heartbeat_s'])}"
                )
            return 0

        if args.exp_command == "quarantine":
            if args.quarantine_command == "list":
                rows = db.quarantined(experiment_id)
                for t in rows:
                    workers = ", ".join(
                        json.loads(t["attempt_workers"] or "[]")
                    )
                    print(
                        f"{t['seq']:6d} {t['key'][:12]}  "
                        f"attempts={t['attempts']} workers=[{workers}]"
                    )
                    print(f"       last error: {t['error']}")
                print(f"[{len(rows)} quarantined trials]")
                return 0
            if args.quarantine_command == "retry":
                retried = db.retry_quarantined(experiment_id, keys=args.key)
                print(
                    f"[{retried} trials returned to pending; "
                    f"experiment {experiment_id} reopened]"
                    if retried
                    else "[no quarantined trials matched]"
                )
                return 0

        if args.exp_command == "trials":
            rows = db.trials(experiment_id, status=args.status)
            for t in rows:
                extra = ""
                if t["status"] == "done":
                    cached = " cached" if t["from_cache"] else ""
                    extra = f"  {float(t['elapsed_s'] or 0.0):.3f}s{cached}"
                elif t["status"] in ("failed", "quarantined"):
                    extra = f"  {t['error']}"
                worker = t["worker_id"] or "-"
                print(
                    f"{t['seq']:6d} {t['key'][:12]}  {t['status']:8s} "
                    f"attempts={t['attempts']} worker={worker}{extra}"
                )
            print(f"[{len(rows)} trials]")
            return 0
    raise AssertionError(
        f"unhandled exp command {args.exp_command!r}"
    )  # pragma: no cover


def _run_serve(args: argparse.Namespace) -> int:
    import os
    import signal

    from .serve import ServiceConfig, SolveService, build_server

    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None
    try:
        config = ServiceConfig(
            max_batch=args.max_batch,
            min_linger_s=args.min_linger_us / 1e6,
            max_linger_s=args.linger_us / 1e6,
            adaptive=not args.no_adaptive,
            max_queue=args.max_queue,
            memory_cache=args.memory_cache,
            store_dir=cache_dir,
            default_deadline_s=args.deadline,
            kernel=args.kernel,
            series_interval_s=args.series_interval,
            rate_limit=args.rate_limit,
            rate_burst=args.rate_burst,
            target_wait_s=args.target_wait,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_s=args.breaker_cooldown,
            scenario=args.scenario,
        )
    except ValueError as exc:
        raise ParamError(str(exc)) from None
    service = SolveService(config)
    server = build_server(args.host, args.port, service)
    host, port = server.server_address[:2]
    print(f"[serve] listening on http://{host}:{port}", flush=True)
    if cache_dir:
        print(f"[serve] store dir={cache_dir}", flush=True)
    if args.scenario:
        print(f"[serve] default scenario={args.scenario}", flush=True)

    # serve_forever() can only be stopped from *another* thread (calling
    # shutdown() from a handler on the serving thread deadlocks), so map
    # SIGTERM onto the same KeyboardInterrupt path Ctrl-C already takes.
    def _sigterm(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
        service.close(drain=True)
        stats = service.stats()
        print(
            f"[serve] drained; answered {stats['responses']} of "
            f"{stats['requests']} requests "
            f"({stats['batches']} batches, max width "
            f"{stats['batch_width']['max']})",
            flush=True,
        )
    return 0


def _jsonable(obj: object) -> object:
    """Best-effort conversion of experiment data to JSON-serializable form."""
    import numpy as np

    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    # rich objects (MMSPerformance, SimResult, ...): use their summary if any
    summary = getattr(obj, "summary", None)
    if callable(summary):
        return _jsonable(summary())
    return repr(obj)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except (ParamError, JournalError, FabricError, ScenarioUnavailableError) as exc:
        # bad parameters / a journal that doesn't match the sweep: one clean
        # line on stderr (exit 2, argparse's usage-error convention), never
        # a traceback.  Only these user-error types are dressed up -- an
        # unexpected ValueError from deeper in the solver is a bug and
        # keeps its traceback.
        print(f"repro-mms: error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "solve":
        perf = MMSModel(_params_from(args)).solve(method=args.method)
        for key, value in perf.summary().items():
            print(f"{key:12s} {value:.6g}")
        return 0

    if args.command == "tolerance":
        report = tolerance_report(_params_from(args), method=args.method)
        for name, res in report.items():
            print(
                f"tol_{name:8s} {res.index:8.4f}  ({res.zone.value}; "
                f"U_p={res.actual.processor_utilization:.4f}, "
                f"ideal={res.ideal.processor_utilization:.4f})"
            )
        return 0

    if args.command == "bottleneck":
        ba = analyze(_params_from(args))
        print(f"d_avg                     {ba.d_avg:.4f}")
        print(f"lambda_net saturation     {ba.lambda_net_saturation:.4f}")
        print(f"critical p_remote         {ba.critical_p_remote:.4f}")
        print(f"IN-saturating p_remote    {ba.network_saturation_p_remote:.4f}")
        print(f"memory-bound p_remote     {ba.memory_saturation_p_remote:.4f}")
        print(f"saturation U_p ceiling    {ba.saturation_utilization:.4f}")
        print(f"unloaded round trip       {ba.unloaded_round_trip:.2f}")
        print(f"processor stays busy      {ba.processor_stays_busy}")
        return 0

    if args.command == "experiment":
        result = EXPERIMENTS[args.name]()
        print(result.render())
        if args.json:
            import json

            with open(args.json, "w") as fh:
                json.dump(_jsonable(result.data), fh, indent=2)
            print(f"[data written to {args.json}]")
        return 0

    if args.command == "validate":
        _, text = analysis.fig11_validation(duration=args.duration, seed=args.seed)
        print(text)
        return 0

    if args.command == "sensitivity":
        print(
            analysis.sensitivities(
                _params_from(args), measure=args.measure
            ).render()
        )
        return 0

    if args.command == "zones":
        from .core import zone_boundary

        b = zone_boundary(
            _params_from(args),
            axis=args.axis,
            subsystem=args.subsystem,
            threshold=args.threshold,
            lo=args.lo,
            hi=args.hi,
        )
        sat = " (saturated bracket)" if b.saturated else ""
        print(
            f"tol_{b.subsystem} crosses {b.threshold} at "
            f"{b.axis} = {b.value:.4f}{sat} (tol there: {b.tolerance:.4f})"
        )
        return 0

    if args.command == "replicate":
        print(
            analysis.replicate(
                _params_from(args),
                replications=args.replications,
                duration=args.duration,
            ).render()
        )
        return 0

    if args.command == "sweep":
        return _run_sweep(args)

    if args.command == "worker":
        return _run_worker(args)

    if args.command == "exp":
        return _run_exp(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "report":
        from .obs import TraceValidationError, render_report

        try:
            print(render_report(args.path))
        except (TraceValidationError, OSError, ValueError) as exc:
            print(f"report failed: {exc}", file=sys.stderr)
            return 1
        return 0

    if args.command == "dashboard":
        from .obs.dashboard import write_dashboard

        try:
            out = write_dashboard(
                args.path, out=args.out, experiment=args.experiment
            )
        except (OSError, ValueError) as exc:
            print(f"dashboard failed: {exc}", file=sys.stderr)
            return 1
        print(f"[dashboard written to {out}]")
        return 0

    if args.command == "reproduce-all":
        import time
        from pathlib import Path

        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        slow = {"ext-priority", "ext-buffers", "ext-pipeline"}
        summary = []
        for name in sorted(EXPERIMENTS):
            if args.skip_slow and name in slow:
                print(f"[skip] {name}")
                continue
            t0 = time.perf_counter()
            result = EXPERIMENTS[name]()
            elapsed = time.perf_counter() - t0
            text = result.render()
            (out_dir / f"{name}.txt").write_text(text + "\n")
            summary.append(f"{name:14s} {elapsed:7.2f}s  {result.title}")
            print(f"[done] {name} ({elapsed:.1f}s)")
        # Figure 11 needs the simulator and its own renderer
        if not args.skip_slow:
            t0 = time.perf_counter()
            _, text = analysis.fig11_validation()
            (out_dir / "fig11.txt").write_text(text + "\n")
            summary.append(
                f"{'fig11':14s} {time.perf_counter() - t0:7.2f}s  "
                "model vs simulation"
            )
            print("[done] fig11")
        (out_dir / "SUMMARY.txt").write_text("\n".join(summary) + "\n")
        print(f"\nall outputs in {out_dir}/")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
