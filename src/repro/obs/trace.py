"""Tracing spans with a contextvar span stack and a no-op fast path.

A span is one timed region of work -- name, attributes, start time,
duration, and a parent pointer -- and the current-span stack lives in a
``contextvars.ContextVar``, so nesting composes across threads and (with
explicit adoption, below) across processes.

Tracing is **off by default**.  :func:`trace_span` then returns a shared
no-op context manager whose cost is one global read plus one function call;
the overhead benchmark (``benchmarks/bench_perf_obs_overhead.py``) pins it
below 2% on the 176-point Figure-4 lattice.  Enable tracing with the
``REPRO_TRACE`` environment variable (``1`` buffers in memory, any other
value is a JSONL sink path) or programmatically::

    prev = obs.configure(trace="out.jsonl")
    ...traced work...
    obs.configure(**prev)

Cross-process merging: a pool worker cannot share the parent's contextvar,
so the sweep runner passes ``tracer.context()`` -- ``{"trace_id",
"parent_id"}`` -- inside the job payload, the worker runs under a local
buffering :class:`Tracer` adopted from that context, returns
``tracer.drain()`` with its result, and the parent calls
:meth:`Tracer.ingest` to write the worker's spans into its own sink with
parentage intact.
"""

from __future__ import annotations

import functools
import itertools
import os
import time
import uuid
from contextvars import ContextVar
from typing import Callable, Iterable, Mapping

from .sink import EventSink

__all__ = [
    "Span",
    "Tracer",
    "configure",
    "enabled",
    "get_tracer",
    "trace_span",
    "traced",
]

#: monotonically increasing span-id suffix (unique within one process)
_ids = itertools.count(1)


def _new_span_id() -> str:
    """Process-unique span id: pid prefix + counter, both hex."""
    return f"{os.getpid():x}-{next(_ids):x}"


class Span:
    """One timed region.  Mutable while open; serialized on close."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "t_start",
        "duration_s",
        "attrs",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: str | None,
        attrs: dict[str, object],
    ):
        self.name = name
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.t_start = time.perf_counter()
        self.duration_s = 0.0
        self.attrs = attrs

    def set(self, **attrs: object) -> None:
        """Attach attributes to an open span."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t_start": self.t_start,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
            "pid": os.getpid(),
        }


class _NoopSpan:
    """Stand-in returned by :func:`trace_span` when tracing is off."""

    __slots__ = ()
    span_id = None
    parent_id = None

    def set(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


#: the one no-op instance every disabled trace_span call returns
NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager pushing/popping one span on the tracer's stack."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._token = self._tracer._stack.set(
            self._tracer._stack.get() + (self._span,)
        )
        return self._span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        span = self._span
        span.duration_s = time.perf_counter() - span.t_start
        if exc_type is not None:
            span.attrs.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
        self._tracer._stack.reset(self._token)
        self._tracer._emit(span)
        return False


class Tracer:
    """Produces nested spans and routes finished ones to a sink or buffer."""

    def __init__(
        self,
        sink: EventSink | None = None,
        trace_id: str | None = None,
    ):
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.sink = sink
        #: finished spans held in memory when there is no sink (worker mode,
        #: tests, ``REPRO_TRACE=1``)
        self.buffer: list[dict[str, object]] = []
        self._stack: ContextVar[tuple[Span, ...]] = ContextVar(
            f"repro_obs_spans_{self.trace_id}", default=()
        )
        #: adopted parent for spans opened with an empty local stack
        self._root_parent: str | None = None

    # ----------------------------------------------------------------- spans
    def span(self, name: str, **attrs: object) -> _SpanContext:
        """Open a nested span: ``with tracer.span("stage", k=v) as sp:``."""
        stack = self._stack.get()
        parent = stack[-1].span_id if stack else self._root_parent
        return _SpanContext(self, Span(name, self.trace_id, parent, attrs))

    def current(self) -> Span | None:
        """The innermost open span in this context, if any."""
        stack = self._stack.get()
        return stack[-1] if stack else None

    def _emit(self, span: Span) -> None:
        if self.sink is not None:
            self.sink.write(span.to_dict())
        else:
            self.buffer.append(span.to_dict())

    # --------------------------------------------------- cross-process merge
    def context(self) -> dict[str, object]:
        """Payload-embeddable link for a worker: trace id + current span id."""
        cur = self.current()
        return {
            "trace_id": self.trace_id,
            "parent_id": cur.span_id if cur is not None else self._root_parent,
        }

    @classmethod
    def adopt(cls, ctx: Mapping[str, object]) -> "Tracer":
        """A buffering tracer whose spans parent into *ctx*'s trace."""
        tracer = cls(trace_id=str(ctx["trace_id"]))
        parent = ctx.get("parent_id")
        tracer._root_parent = str(parent) if parent is not None else None
        return tracer

    def drain(self) -> list[dict[str, object]]:
        """Take the buffered span dicts (worker -> payload direction)."""
        spans, self.buffer = self.buffer, []
        return spans

    def ingest(self, spans: Iterable[Mapping[str, object]]) -> None:
        """Write spans produced elsewhere (a worker) into this trace."""
        for span in spans:
            event = dict(span)
            event["trace_id"] = self.trace_id
            if self.sink is not None:
                self.sink.write(event)
            else:
                self.buffer.append(event)

    # ------------------------------------------------------------- lifecycle
    def write_event(self, event: dict[str, object]) -> None:
        """Emit a non-span record (e.g. a metrics snapshot) to the sink."""
        if self.sink is not None:
            self.sink.write({"trace_id": self.trace_id, **event})
        else:
            self.buffer.append({"trace_id": self.trace_id, **event})

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()


# ---------------------------------------------------------------- module API
#: the active tracer; ``None`` is the no-op fast path
_tracer: Tracer | None = None


def _tracer_from_env() -> Tracer | None:
    value = os.environ.get("REPRO_TRACE", "").strip()
    if not value or value.lower() in ("0", "false", "off"):
        return None
    if value.lower() in ("1", "true", "on"):
        return Tracer()
    return Tracer(sink=EventSink(value, meta=_meta()))


def _meta() -> dict[str, object]:
    try:  # lazy: obs must stay importable before the rest of the package
        from ..runner.spec import SOLVER_VERSION
    except ImportError:  # pragma: no cover - import-order edge
        SOLVER_VERSION = "unknown"
    return {"schema": "repro-trace/1", "solver_version": SOLVER_VERSION}


def configure(
    trace: bool | str | os.PathLike | None = None,
    tracer: Tracer | None = None,
) -> dict[str, object]:
    """Install (or remove) the process-global tracer; returns the previous
    setting for restore-style use.

    ``trace`` may be a path (JSONL sink), ``True`` (in-memory buffer),
    ``False``/``None`` (disable).  ``tracer`` installs a prebuilt
    :class:`Tracer` directly (worker adoption, tests).
    """
    global _tracer
    previous: dict[str, object] = {"tracer": _tracer}
    if tracer is not None:
        _tracer = tracer
    elif trace is None or trace is False:
        _tracer = None
    elif trace is True:
        _tracer = Tracer()
    else:
        _tracer = Tracer(sink=EventSink(trace, meta=_meta()))
    return previous


def enabled() -> bool:
    """Whether spans are being recorded."""
    return _tracer is not None


def get_tracer() -> Tracer | None:
    """The active tracer (``None`` when tracing is off)."""
    return _tracer


def trace_span(name: str, **attrs: object):
    """``with trace_span("sweep.solve", points=n) as sp:`` -- a nested span,
    or the shared no-op when tracing is disabled."""
    if _tracer is None:
        return NOOP_SPAN
    return _tracer.span(name, **attrs)


def traced(name: str | None = None) -> Callable:
    """Decorator form: trace every call of the function as one span."""

    def deco(fn: Callable) -> Callable:
        span_name = name or f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object):
            if _tracer is None:
                return fn(*args, **kwargs)
            with _tracer.span(span_name):
                return fn(*args, **kwargs)

        return wrapper

    return deco


# honour REPRO_TRACE at import so `repro-mms` and workers pick it up
_tracer = _tracer_from_env()
