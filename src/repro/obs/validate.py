"""Schema validation for ``repro-trace/1`` JSONL trace files.

Used by the checked-in ``scripts/validate_trace.py`` (CI's trace smoke
step), by :mod:`repro.obs.report` before rendering, and by the test suite.
Validation is structural -- kinds, required fields, types, parent linkage --
and returns a small summary so callers can assert on span counts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

__all__ = ["TraceValidationError", "TraceSummary", "validate_events", "validate_trace"]

#: record kinds a trace file may contain
KINDS = ("meta", "span", "metrics")

_SPAN_FIELDS = {
    "trace_id": str,
    "span_id": str,
    "name": str,
    "t_start": (int, float),
    "duration_s": (int, float),
    "attrs": dict,
    "pid": int,
}


class TraceValidationError(ValueError):
    """A trace file violated the repro-trace/1 schema."""


@dataclass
class TraceSummary:
    """What a valid trace contains."""

    events: int = 0
    spans: int = 0
    metrics_records: int = 0
    trace_ids: set = field(default_factory=set)
    #: span name -> count
    span_names: dict = field(default_factory=dict)
    #: total duration per span name (seconds)
    span_durations: dict = field(default_factory=dict)
    roots: int = 0
    #: distinct pids that emitted spans (>1 for merged fabric traces)
    pids: set = field(default_factory=set)
    #: ``(span_id, missing_parent_id)`` pairs, every one collected --
    #: populated (not raised) when ``require_closed_parents=False``
    orphans: list = field(default_factory=list)


def _fail(line_no: int, msg: str) -> None:
    raise TraceValidationError(f"line {line_no}: {msg}")


def validate_events(
    events: list[Mapping[str, object]], require_closed_parents: bool = True
) -> TraceSummary:
    """Validate parsed trace records; raises :class:`TraceValidationError`.

    Parent linkage is checked across the *whole* event list, so a merged
    multi-process trace (see :func:`repro.fabric.rollup.merge_traces`)
    validates cross-process parentage: a child adopted into another
    process must still find its parent span somewhere in the file.
    Every orphan is collected before failing -- the error lists them all,
    not just the first -- and with ``require_closed_parents=False`` the
    orphans land in :attr:`TraceSummary.orphans` instead of raising.
    """
    summary = TraceSummary()
    span_ids: set[str] = set()
    parents: dict[str, str | None] = {}
    for i, ev in enumerate(events, start=1):
        if not isinstance(ev, dict):
            _fail(i, f"expected an object, got {type(ev).__name__}")
        kind = ev.get("kind")
        if kind not in KINDS:
            _fail(i, f"unknown kind {kind!r} (expected one of {KINDS})")
        summary.events += 1
        if kind == "meta":
            if i != 1:
                _fail(i, "meta record must be the first line")
            if ev.get("schema") != "repro-trace/1":
                _fail(i, f"unsupported schema {ev.get('schema')!r}")
            continue
        if kind == "metrics":
            if not isinstance(ev.get("metrics"), dict):
                _fail(i, "metrics record without a 'metrics' object")
            summary.metrics_records += 1
            continue
        # span
        for name, typ in _SPAN_FIELDS.items():
            if name not in ev:
                _fail(i, f"span missing field {name!r}")
            if not isinstance(ev[name], typ):  # type: ignore[arg-type]
                _fail(i, f"span field {name!r} has type {type(ev[name]).__name__}")
        if ev["duration_s"] < 0:
            _fail(i, f"negative span duration {ev['duration_s']}")
        parent = ev.get("parent_id")
        if parent is not None and not isinstance(parent, str):
            _fail(i, "span parent_id must be a string or null")
        sid = ev["span_id"]
        if sid in span_ids:
            _fail(i, f"duplicate span_id {sid!r}")
        span_ids.add(sid)
        parents[sid] = parent
        summary.spans += 1
        summary.pids.add(ev["pid"])
        summary.trace_ids.add(ev["trace_id"])
        summary.span_names[ev["name"]] = summary.span_names.get(ev["name"], 0) + 1
        summary.span_durations[ev["name"]] = (
            summary.span_durations.get(ev["name"], 0.0) + float(ev["duration_s"])
        )
    # parent linkage: every non-null parent must itself be a recorded span
    # somewhere in the list (cross-process for merged traces); collect
    # every violation so the report names them all
    for sid, parent in parents.items():
        if parent is None:
            summary.roots += 1
        elif parent not in span_ids:
            summary.orphans.append((sid, parent))
    if summary.orphans and require_closed_parents:
        listing = "; ".join(
            f"span {sid} -> missing parent {parent}"
            for sid, parent in summary.orphans[:20]
        )
        extra = len(summary.orphans) - 20
        if extra > 0:
            listing += f"; ... and {extra} more"
        raise TraceValidationError(
            f"{len(summary.orphans)} orphaned span(s): {listing}"
        )
    if summary.spans == 0:
        raise TraceValidationError("trace contains no spans")
    return summary


def validate_trace(
    path: str | Path, require_closed_parents: bool = True
) -> TraceSummary:
    """Parse and validate a JSONL trace file."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for i, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError as exc:
                raise TraceValidationError(f"line {i}: invalid JSON ({exc})") from exc
    if not events:
        raise TraceValidationError(f"{path}: empty trace")
    return validate_events(events, require_closed_parents=require_closed_parents)
