"""Prometheus text exposition for the metrics registry (dependency-free).

Renders a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` in the
Prometheus text format (version 0.0.4): ``# HELP`` / ``# TYPE`` comment
pairs followed by sample lines, with dotted instrument names mapped to
the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` charset Prometheus requires
(``serve.request_latency_s`` becomes
``repro_serve_request_latency_s``).  Histograms expose the conventional
``_bucket{le="..."}`` cumulative counts (our registry stores per-bucket
counts, so this module accumulates them), plus ``_sum`` and ``_count``.

The serve layer wires this into ``GET /metricsz?format=prometheus``
(:mod:`repro.serve.http`), which makes the whole service scrapeable by
any Prometheus-compatible collector with zero new dependencies.
"""

from __future__ import annotations

import re
from typing import Mapping

__all__ = ["render_prometheus", "prometheus_name", "CONTENT_TYPE"]

#: content type Prometheus scrapers expect from a text-format endpoint
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")


def prometheus_name(name: str, namespace: str = "repro") -> str:
    """Map a dotted instrument name onto the Prometheus metric charset."""
    flat = _INVALID.sub("_", name)
    if namespace:
        flat = f"{namespace}_{flat}"
    if _INVALID_FIRST.match(flat):
        flat = f"_{flat}"
    return flat


def _fmt(v: float) -> str:
    """Prometheus sample values: integers render bare, floats repr-style."""
    f = float(v)
    return str(int(f)) if f.is_integer() else repr(f)


def _expose(
    lines: list[str], name: str, kind: str, help_text: str
) -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")


def render_prometheus(
    snapshot: Mapping[str, Mapping[str, object]], namespace: str = "repro"
) -> str:
    """Render a registry snapshot as Prometheus exposition text.

    ``snapshot`` is the dict shape of ``registry().snapshot()``; the
    original dotted name is echoed in each ``# HELP`` line so a scrape
    can be mapped back to the naming table in docs/OBSERVABILITY.md.
    """
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        flat = prometheus_name(name, namespace)
        _expose(lines, flat, "counter", f"repro counter {name}")
        lines.append(f"{flat} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        flat = prometheus_name(name, namespace)
        _expose(lines, flat, "gauge", f"repro gauge {name}")
        lines.append(f"{flat} {_fmt(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        flat = prometheus_name(name, namespace)
        _expose(lines, flat, "histogram", f"repro histogram {name}")
        cum = 0
        for bound, n in zip(hist["buckets"], hist["counts"]):
            cum += n
            lines.append(f'{flat}_bucket{{le="{_fmt(bound)}"}} {cum}')
        cum += hist["counts"][-1]
        lines.append(f'{flat}_bucket{{le="+Inf"}} {cum}')
        lines.append(f"{flat}_sum {_fmt(hist['sum'])}")
        lines.append(f"{flat}_count {_fmt(hist['count'])}")
    return "\n".join(lines) + "\n" if lines else ""
