"""Time-attribution reports from traces and run manifests.

``repro-mms report <path>`` lands here.  Two input shapes are understood:

* a **JSONL trace** written by ``repro-mms sweep --trace`` (or any
  :class:`~repro.obs.sink.EventSink`): rendered as a per-span-name
  attribution table (count, total time, *self* time with children
  subtracted, share of the root span) plus, when simulator spans are
  present, a per-station busy-time table;
* a **JSON run manifest**: rendered from its ``stages`` block (per-stage
  wall clock), store counters, and embedded metrics snapshot.

Self time is what makes the table an attribution rather than a call count:
a stage's children are subtracted from it, so the rows sum to (at most) the
traced wall clock and a hot leaf reads hot even when buried three spans
deep.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

from .validate import TraceValidationError, validate_events

__all__ = ["load_trace", "trace_report", "manifest_report", "render_report"]


def load_trace(path: str | Path) -> list[dict[str, object]]:
    """Parse a JSONL trace file into event dicts (no validation)."""
    events: list[dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def _attribution_rows(
    spans: Sequence[Mapping[str, object]],
) -> tuple[list[list[object]], float]:
    """Aggregate spans by name; returns (table rows, root wall clock)."""
    by_id = {s["span_id"]: s for s in spans}
    child_time: dict[str, float] = {}
    for s in spans:
        parent = s.get("parent_id")
        if parent in by_id:
            child_time[parent] = child_time.get(parent, 0.0) + float(s["duration_s"])

    total: dict[str, float] = {}
    self_t: dict[str, float] = {}
    count: dict[str, int] = {}
    for s in spans:
        name = str(s["name"])
        dur = float(s["duration_s"])
        total[name] = total.get(name, 0.0) + dur
        self_t[name] = self_t.get(name, 0.0) + max(
            0.0, dur - child_time.get(s["span_id"], 0.0)
        )
        count[name] = count.get(name, 0) + 1

    roots = [s for s in spans if s.get("parent_id") not in by_id]
    wall = sum(float(s["duration_s"]) for s in roots)
    rows = [
        [
            name,
            count[name],
            1e3 * total[name],
            1e3 * self_t[name],
            (100.0 * self_t[name] / wall) if wall > 0 else 0.0,
        ]
        for name in sorted(total, key=lambda n: -self_t[n])
    ]
    return rows, wall


def _station_rows(spans: Sequence[Mapping[str, object]]) -> list[list[object]]:
    """Per-station busy-time rows from ``sim.run`` span attributes."""
    rows: list[list[object]] = []
    for s in spans:
        if s["name"] != "sim.run":
            continue
        attrs = s.get("attrs", {})
        stations = attrs.get("stations")
        if not isinstance(stations, dict):
            continue
        for kind, st in stations.items():
            rows.append(
                [
                    kind,
                    st.get("busy_frac", 0.0),
                    st.get("occupancy", 0.0),
                    attrs.get("events", 0),
                ]
            )
    return rows


def trace_report(events: Sequence[Mapping[str, object]]) -> str:
    """Render the attribution tables for one trace's events."""
    from ..analysis.tables import format_table

    validate_events(list(events))
    spans = [e for e in events if e.get("kind") == "span"]
    rows, wall = _attribution_rows(spans)
    blocks = [
        format_table(
            ["span", "count", "total_ms", "self_ms", "self%"],
            rows,
            precision=3,
            title=f"Time attribution ({len(spans)} spans, "
            f"root wall clock {wall * 1e3:.1f} ms)",
        )
    ]
    station_rows = _station_rows(spans)
    if station_rows:
        blocks.append(
            format_table(
                ["station", "busy_frac", "occupancy", "events"],
                station_rows,
                precision=4,
                title="Simulator stations (busy fraction over measured horizon)",
            )
        )
    metrics = [e for e in events if e.get("kind") == "metrics"]
    if metrics:
        blocks.append(_metrics_block(metrics[-1].get("metrics", {})))
    return "\n\n".join(blocks)


def _metrics_block(snapshot: Mapping[str, object]) -> str:
    from ..analysis.tables import format_table

    rows: list[list[object]] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        rows.append([name, "counter", value])
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        rows.append([name, "gauge", value])
    for name, h in sorted(snapshot.get("histograms", {}).items()):
        mean = (h["sum"] / h["count"]) if h.get("count") else 0.0
        rows.append([name, "histogram", f"n={h['count']} mean={mean:.4g}"])
    if not rows:
        return "(no metrics recorded)"
    return format_table(["metric", "kind", "value"], rows, precision=6,
                        title="Metrics")


def _fabric_block(fabric: Mapping[str, object]) -> str:
    """Dispatch accounting + fleet view of a ``mode == "fabric"`` manifest."""
    from ..analysis.tables import format_table

    trials: Mapping[str, int] = fabric.get("trials") or {}
    blocks = [
        format_table(
            ["done", "failed", "leases", "expired", "redispatched", "workers"],
            [
                [
                    trials.get("done", 0),
                    trials.get("failed", 0),
                    fabric.get("leases_granted", 0),
                    fabric.get("leases_expired", 0),
                    fabric.get("redispatched_trials", 0),
                    fabric.get("workers", 0),
                ]
            ],
            precision=3,
            title=f"Fabric dispatch (experiment "
            f"{fabric.get('experiment_id', '?')})",
        )
    ]
    fleet = fabric.get("fleet") or {}
    workers: Mapping[str, Mapping[str, object]] = fleet.get("workers") or {}
    if workers:
        rows = [
            [
                wid,
                w.get("status", "?"),
                w.get("trials_done", 0),
                w.get("trials_failed", 0),
                float(w.get("busy_s", 0.0)),
                float(w.get("throughput_per_s", 0.0)),
                float(w.get("heartbeat_gap_s", 0.0)),
            ]
            for wid, w in sorted(workers.items())
        ]
        blocks.append(
            format_table(
                [
                    "worker",
                    "status",
                    "done",
                    "failed",
                    "busy_s",
                    "trials/s",
                    "hb_gap_s",
                ],
                rows,
                precision=3,
                title="Fleet (heartbeat gap vs the fleet's last event)",
            )
        )
    lat = fleet.get("lease_latency_s") or {}
    if lat.get("count"):
        blocks.append(
            f"Lease latency: n={lat['count']} mean={lat['mean']:.3f}s "
            f"p50={lat['p50']:.3f}s p95={lat['p95']:.3f}s "
            f"max={lat['max']:.3f}s"
        )
    return "\n\n".join(blocks)


def _series_block(series: Mapping[str, object]) -> str:
    """Recorder digest embedded by a sweep that ran with a live recorder."""
    from ..analysis.tables import format_table

    rows: list[list[object]] = []
    for name, rate in sorted(series.get("rates", {}).items()):
        rows.append([name, "rate", f"{float(rate):.4g}/s"])
    for name, value in sorted(series.get("gauges", {}).items()):
        rows.append([name, "gauge", value])
    for name, qs in sorted(series.get("quantiles", {}).items()):
        if qs:
            rows.append(
                [name, "quantiles",
                 " ".join(f"{k}={v:.4g}" for k, v in sorted(qs.items()))]
            )
    if not rows:
        return ""
    return format_table(
        ["metric", "kind", "value"],
        rows,
        precision=6,
        title=f"Recorder series ({series.get('samples', 0)} samples over "
        f"{float(series.get('window_s', 0.0)):.1f} s)",
    )


def manifest_report(manifest: Mapping[str, object]) -> str:
    """Render the attribution view of one sweep manifest."""
    from ..analysis.tables import format_table

    wall = float(manifest.get("wall_clock_s", 0.0))
    stages: Mapping[str, float] = manifest.get("stages") or {}
    rows = [
        [name, 1e3 * float(dur), (100.0 * float(dur) / wall) if wall else 0.0]
        for name, dur in sorted(stages.items(), key=lambda kv: -kv[1])
    ]
    blocks = [
        format_table(
            ["stage", "total_ms", "wall%"],
            rows,
            precision=3,
            title=f"Sweep stages (wall clock {wall * 1e3:.1f} ms, "
            f"mode={manifest.get('mode')}, "
            f"kernel={manifest.get('kernel', 'numpy')}, "
            f"{manifest.get('unique_points')} unique points)",
        )
        if rows
        else "(manifest has no stage timings)"
    ]
    fabric = manifest.get("fabric")
    if fabric:
        blocks.append(_fabric_block(fabric))
    batches = manifest.get("solver_batches") or []
    if batches:
        batch_rows = [
            [
                b.get("method", "?"),
                b.get("batch_size", 0),
                b.get("iterations", 0),
                1e3 * float(b.get("wall_time_s", 0.0)),
                b.get("masked_iterations_saved", ""),
            ]
            for b in batches
        ]
        blocks.append(
            format_table(
                ["method", "points", "iters", "batch_ms", "masked_saved"],
                batch_rows,
                precision=3,
                title="Batched solver calls (true batch wall clock, "
                "counted once)",
            )
        )
    store = manifest.get("store")
    if store:
        blocks.append(
            format_table(
                [
                    "hits",
                    "misses",
                    "hit_rate",
                    "entries",
                    "invalidated",
                    "quarantined",
                    "index_rebuilds",
                ],
                [
                    [
                        store.get("hits", 0),
                        store.get("misses", 0),
                        store.get("hit_rate", 0.0),
                        store.get("entries", 0),
                        str(store.get("invalidated", False)),
                        store.get("quarantined", 0),
                        store.get("index_rebuilds", 0),
                    ]
                ],
                precision=3,
                title="Result store (lifetime of the backing store)",
            )
        )
    if manifest.get("journal_path"):
        blocks.append(
            f"Journal: {manifest['journal_path']} "
            f"(replayed {manifest.get('journal_hits', 0)} points, "
            f"resumed={manifest.get('resumed', False)})"
        )
    degradations = manifest.get("degradations") or []
    if degradations:
        blocks.append(
            format_table(
                ["from", "to", "points", "reason"],
                [
                    [
                        d.get("from_mode", "?"),
                        d.get("to_mode", "?"),
                        d.get("points", 0),
                        str(d.get("reason", ""))[:60],
                    ]
                    for d in degradations
                ],
                precision=3,
                title="Degradations (backend fell down the chain)",
            )
        )
    series = manifest.get("series")
    if series:
        block = _series_block(series)
        if block:
            blocks.append(block)
    metrics = manifest.get("metrics")
    if metrics:
        blocks.append(_metrics_block(metrics))
    return "\n\n".join(blocks)


def render_report(path: str | Path) -> str:
    """Dispatch on file shape: JSON manifest vs JSONL trace."""
    text = Path(path).read_text(encoding="utf-8").strip()
    if not text:
        raise TraceValidationError(f"{path}: empty file")
    try:
        doc = json.loads(text)
    except ValueError:
        doc = None
    if isinstance(doc, dict) and "kind" not in doc:
        # a single JSON object without an event kind: a run manifest
        return manifest_report(doc)
    return trace_report(load_trace(path))
