"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately tiny and dependency-free.  Instruments are
created on first use (``registry().counter("store.hit").inc()``) and read
with :meth:`MetricsRegistry.snapshot`, which returns a plain JSON-safe dict.
Unlike tracing -- which is off unless :func:`repro.obs.trace.configure`
enables it -- metrics are always on: every instrument update is a couple of
dict lookups and an integer add, cheap enough for the hot paths that carry
them (one update per solve/lookup, never per fixed-point iteration).

Per-run views are computed by diffing two snapshots
(:func:`diff_snapshots`), which is how the sweep runner embeds a
run-scoped metrics block in its manifest while the registry itself keeps
process-lifetime totals.
"""

from __future__ import annotations

import bisect
import threading
from typing import Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "diff_snapshots",
    "quantile_from_buckets",
]

#: default histogram bucket upper bounds (seconds-ish scale; +inf implied)
DEFAULT_BUCKETS = (
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    100.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class Gauge:
    """Last-written value, with a convenience high-water update."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def update_max(self, v: float) -> None:
        if v > self.value:
            self.value = float(v)


class Histogram:
    """Fixed-bucket histogram: cumulative-style counts plus sum/count.

    ``counts[i]`` is the number of observations ``<= buckets[i]``; the last
    slot (``counts[-1]``) is the implicit +inf bucket.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        b = tuple(float(x) for x in buckets)
        if list(b) != sorted(b) or len(set(b)) != len(b):
            raise ValueError(f"histogram buckets must be strictly increasing: {b}")
        self.buckets = b
        self.counts = [0] * (len(b) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, v)] += 1
        self.sum += v
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation within the containing bucket; resolution is
        bounded by the bucket width.  See :func:`quantile_from_buckets`.
        """
        return quantile_from_buckets(self.buckets, self.counts, q)

    def to_dict(self) -> dict[str, object]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


def quantile_from_buckets(
    buckets: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Estimate a quantile from fixed-bucket counts.

    ``counts[i]`` holds the observations that fell in
    ``(buckets[i-1], buckets[i]]`` (slot 0 starts at 0.0, the scale's
    natural floor for durations; the last slot is the implicit +inf
    bucket).  The estimator walks the cumulative counts to the containing
    bucket and interpolates linearly inside it, so its error is bounded by
    that bucket's width.  Observations past the last finite bound cannot
    be interpolated and clamp to ``buckets[-1]``.

    Returns 0.0 for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]: {q}")
    total = sum(counts)
    if not total:
        return 0.0
    target = q * total
    cum = 0.0
    for i, n in enumerate(counts):
        if not n:
            continue
        if cum + n >= target:
            if i >= len(buckets):  # +inf bucket: clamp to the last finite bound
                return float(buckets[-1])
            lo = float(buckets[i - 1]) if i else min(0.0, float(buckets[0]))
            hi = float(buckets[i])
            frac = (target - cum) / n
            return lo + frac * (hi - lo)
        cum += n
    return float(buckets[-1]) if buckets else 0.0


class MetricsRegistry:
    """Named instruments, created on first use.

    A name can only ever be one instrument kind; asking for an existing name
    with a different kind raises, which catches naming collisions early.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls: type, *args: object) -> object:
        inst = self._instruments.get(name)
        if inst is None:
            with self._lock:
                inst = self._instruments.get(name)
                if inst is None:
                    inst = cls(*args)
                    self._instruments[name] = inst
        if not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} is a {type(inst).__name__}, not a {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, buckets)

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        with self._lock:
            self._instruments.clear()

    def snapshot(self) -> dict[str, dict[str, object]]:
        """JSON-safe view: ``{"counters": {...}, "gauges": {...},
        "histograms": {name: {buckets, counts, sum, count}}}``."""
        out: dict[str, dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name, inst in sorted(self._instruments.items()):
            if isinstance(inst, Counter):
                out["counters"][name] = inst.value
            elif isinstance(inst, Gauge):
                out["gauges"][name] = inst.value
            else:
                out["histograms"][name] = inst.to_dict()  # type: ignore[union-attr]
        return out

    to_dict = snapshot


def diff_snapshots(
    before: Mapping[str, Mapping[str, object]],
    after: Mapping[str, Mapping[str, object]],
) -> dict[str, dict[str, object]]:
    """What happened between two snapshots of the same registry.

    Counters and histogram counts/sums subtract; gauges keep their final
    value (a gauge is a level, not a flow).  Instruments that did not move
    are dropped, so the result reads as "this run's activity".
    """
    out: dict[str, dict[str, object]] = {"counters": {}, "gauges": {}, "histograms": {}}
    b_counters = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        delta = value - b_counters.get(name, 0.0)
        if delta:
            out["counters"][name] = delta
    out["gauges"] = dict(after.get("gauges", {}))
    b_hists = before.get("histograms", {})
    for name, h in after.get("histograms", {}).items():
        prev = b_hists.get(name)
        if prev is None:
            if h["count"]:
                out["histograms"][name] = dict(h)
            continue
        d_count = h["count"] - prev["count"]
        if not d_count:
            continue
        out["histograms"][name] = {
            "buckets": list(h["buckets"]),
            "counts": [a - b for a, b in zip(h["counts"], prev["counts"])],
            "sum": h["sum"] - prev["sum"],
            "count": d_count,
        }
    return out


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry every instrumented layer shares."""
    return _REGISTRY
