"""Process-safe JSONL event sink.

One trace is one JSONL file: a ``meta`` header record, then one record per
span (and optionally ``metrics`` snapshot records).  Every record is written
with a *single* ``write()`` of a complete line on a file opened in append
mode -- on POSIX, ``O_APPEND`` writes of modest size are atomic, so several
processes can share one sink file without interleaving partial lines.  In
this codebase only the sweep runner's parent process writes (worker spans
come back through the job payload and are written by the parent), but the
sink does not depend on that discipline.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["EventSink"]


def _event_json(event: dict[str, object]) -> str:
    """Compact deterministic encoding (sorted keys, no whitespace)."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


class EventSink:
    """Append-only JSONL writer for trace events."""

    def __init__(self, path: str | os.PathLike, meta: dict[str, object] | None = None):
        self.path = Path(path)
        self._meta = meta
        self._fh = None
        self.events_written = 0

    def _open(self):
        # Lazily on first write -- a pool worker that imports with
        # ``REPRO_TRACE=<path>`` set must not truncate the parent's trace
        # file (workers buffer spans and never write here).  Truncate (a
        # sink owns its file for one trace), then reopen in line-buffered
        # append mode: each record leaves as one write().
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        open(self.path, "w", encoding="utf-8").close()
        self._fh = open(self.path, "a", encoding="utf-8", buffering=1)
        if self._meta is not None:
            self._fh.write(_event_json({"kind": "meta", **self._meta}) + "\n")
            self.events_written += 1
        return self._fh

    def write(self, event: dict[str, object]) -> None:
        """Append one event as a complete JSON line."""
        fh = self._fh if self._fh is not None else self._open()
        fh.write(_event_json(event) + "\n")
        self.events_written += 1

    def flush(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is None:
            # Never written to: still produce a valid (meta-only) trace file
            # so `--trace out.jsonl` yields a file even for an empty run.
            self._open()
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
