"""Process-safe JSONL event sink.

One trace is one JSONL file: a ``meta`` header record, then one record per
span (and optionally ``metrics`` snapshot records).  Every record is written
with a *single* ``write()`` of a complete line on a file opened in append
mode -- on POSIX, ``O_APPEND`` writes of modest size are atomic, so several
processes can share one sink file without interleaving partial lines.  In
this codebase only the sweep runner's parent process writes (worker spans
come back through the job payload and are written by the parent), but the
sink does not depend on that discipline.

Telemetry must never take a run down with it: an ``OSError`` from the
filesystem (disk full, permissions, a yanked volume -- or the
``sink.io_error`` fault site) marks the sink broken, warns once, and drops
all further events (counted in ``events_dropped`` and the
``sink.io_errors`` metric) while the sweep itself carries on.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

from ..resilience.faults import fault_point

__all__ = ["EventSink"]


def _event_json(event: dict[str, object]) -> str:
    """Compact deterministic encoding (sorted keys, no whitespace)."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


class EventSink:
    """Append-only JSONL writer for trace events."""

    def __init__(self, path: str | os.PathLike, meta: dict[str, object] | None = None):
        self.path = Path(path)
        self._meta = meta
        self._fh = None
        self.events_written = 0
        #: events discarded after the sink broke (I/O failure)
        self.events_dropped = 0
        self._broken = False

    def _open(self):
        # Lazily on first write -- a pool worker that imports with
        # ``REPRO_TRACE=<path>`` set must not truncate the parent's trace
        # file (workers buffer spans and never write here).  Truncate (a
        # sink owns its file for one trace), then reopen in line-buffered
        # append mode: each record leaves as one write().
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        open(self.path, "w", encoding="utf-8").close()
        self._fh = open(self.path, "a", encoding="utf-8", buffering=1)
        if self._meta is not None:
            self._fh.write(_event_json({"kind": "meta", **self._meta}) + "\n")
            self.events_written += 1
        return self._fh

    def _mark_broken(self, exc: Exception) -> None:
        self._broken = True
        warnings.warn(
            f"trace sink {self.path} failed ({exc}); "
            "dropping further trace events, the run continues",
            RuntimeWarning,
            stacklevel=3,
        )
        from .metrics import registry  # local: sink must import before metrics users

        registry().counter("sink.io_errors").inc()

    def write(self, event: dict[str, object]) -> None:
        """Append one event as a complete JSON line.

        A failing write (or the ``sink.io_error`` fault site) breaks the
        sink: this and all later events are dropped, never raised into the
        instrumented code.
        """
        if self._broken:
            self.events_dropped += 1
            return
        try:
            if fault_point("sink.io_error") is not None:
                raise OSError("injected sink I/O error")
            fh = self._fh if self._fh is not None else self._open()
            fh.write(_event_json(event) + "\n")
        except OSError as exc:
            self._mark_broken(exc)
            self.events_dropped += 1
            return
        self.events_written += 1

    def flush(self) -> None:
        if self._fh is not None and not self._fh.closed:
            try:
                self._fh.flush()
            except OSError as exc:
                if not self._broken:
                    self._mark_broken(exc)

    def close(self) -> None:
        try:
            if self._fh is None and not self._broken:
                # Never written to: still produce a valid (meta-only) trace
                # file so `--trace out.jsonl` yields a file even for an
                # empty run.
                self._open()
            if self._fh is not None and not self._fh.closed:
                self._fh.flush()
                self._fh.close()
        except OSError as exc:
            if not self._broken:
                self._mark_broken(exc)

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
