"""Time-series metrics: a ring-buffer recorder over the process registry.

:class:`MetricsRecorder` turns the point-in-time snapshots of
:class:`~repro.obs.metrics.MetricsRegistry` into windowed *series* -- the
rates and utilizations-over-time that single snapshots cannot show.  A
background daemon thread samples ``registry().snapshot()`` every
``interval_s`` seconds into a bounded ``deque``, so memory is fixed
(``capacity`` samples) no matter how long the process lives.

The recorder is a pure *reader*: it never touches an instrumentation
site, so the PR-3 overhead contract is preserved by construction --
recorder off means zero new cost anywhere, and recorder on costs one
registry snapshot per tick on its own thread
(``benchmarks/bench_perf_obs_overhead.py`` pins sampling at 10 Hz to
<1% of the Figure-4 lattice wall time).

Derived views:

* :meth:`~MetricsRecorder.series` -- ``[(t, value), ...]`` for a counter
  or gauge over the window.
* :meth:`~MetricsRecorder.rate` -- a counter's per-second rate across the
  window (Little's-Law style throughput).
* :meth:`~MetricsRecorder.quantiles` -- p50/p95/p99 of a histogram's
  *windowed* observations (last-minus-first bucket diff, interpolated by
  :func:`~repro.obs.metrics.quantile_from_buckets`).
* :meth:`~MetricsRecorder.window` -- the raw samples as a JSON-safe dict
  (what ``GET /seriesz`` returns).
* :meth:`~MetricsRecorder.summary` -- a compact rates/gauges/quantiles
  digest, small enough to embed in a run manifest.

A process-global recorder can be managed with :func:`start_recorder` /
:func:`get_recorder` / :func:`stop_recorder`; the sweep runner embeds the
global recorder's summary in its manifest when one is running.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Sequence

from .metrics import MetricsRegistry, diff_snapshots, quantile_from_buckets, registry

__all__ = [
    "MetricsRecorder",
    "start_recorder",
    "get_recorder",
    "stop_recorder",
]

#: default sampling cadence (seconds) and ring capacity (samples);
#: 1 Hz x 600 keeps a ten-minute window in a few hundred KB.
DEFAULT_INTERVAL_S = 1.0
DEFAULT_CAPACITY = 600

_PERCENTILES = (0.5, 0.95, 0.99)


class MetricsRecorder:
    """Sample the metrics registry on a background thread into a ring buffer.

    Use as a context manager or call :meth:`start` / :meth:`stop`
    explicitly.  :meth:`sample` can also be driven by hand (tests, or a
    caller with its own cadence) without ever starting the thread.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        capacity: int = DEFAULT_CAPACITY,
        reg: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive: {interval_s}")
        if capacity < 2:
            raise ValueError(f"capacity must hold at least 2 samples: {capacity}")
        self.interval_s = float(interval_s)
        self.capacity = int(capacity)
        self._registry = reg if reg is not None else registry()
        self._clock = clock
        self._samples: deque[dict[str, object]] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples_taken = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MetricsRecorder":
        """Take an immediate sample and start the sampling thread."""
        if self.running:
            return self
        self._stop.clear()
        self.sample()
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-recorder", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread (if running) and take one final sample."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
        self.sample()

    close = stop

    def __enter__(self) -> "MetricsRecorder":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    # -- sampling ----------------------------------------------------------

    def sample(self, t: float | None = None) -> dict[str, object]:
        """Append one timestamped snapshot to the ring and return it."""
        snap = self._registry.snapshot()
        rec: dict[str, object] = {"t": self._clock() if t is None else float(t)}
        rec.update(snap)
        with self._lock:
            self._samples.append(rec)
            self.samples_taken += 1
        return rec

    def _window_samples(self, seconds: float | None = None) -> list[dict]:
        with self._lock:
            samples = list(self._samples)
        if seconds is not None and samples:
            cutoff = samples[-1]["t"] - float(seconds)
            samples = [s for s in samples if s["t"] >= cutoff]
        return samples

    # -- derived views -----------------------------------------------------

    def window(self, seconds: float | None = None) -> dict[str, object]:
        """JSON-safe view of the (optionally trimmed) sample window."""
        samples = self._window_samples(seconds)
        span = (samples[-1]["t"] - samples[0]["t"]) if len(samples) > 1 else 0.0
        return {
            "interval_s": self.interval_s,
            "capacity": self.capacity,
            "samples": samples,
            "window_s": span,
        }

    def series(
        self, name: str, seconds: float | None = None
    ) -> list[tuple[float, float]]:
        """``[(t, value), ...]`` for a counter or gauge across the window."""
        out: list[tuple[float, float]] = []
        for s in self._window_samples(seconds):
            for kind in ("counters", "gauges"):
                v = s.get(kind, {}).get(name)
                if v is not None:
                    out.append((s["t"], float(v)))
                    break
        return out

    def rate(self, name: str, seconds: float | None = None) -> float:
        """A counter's average per-second rate across the window."""
        pts = self.series(name, seconds)
        if len(pts) < 2:
            return 0.0
        elapsed = pts[-1][0] - pts[0][0]
        return (pts[-1][1] - pts[0][1]) / elapsed if elapsed > 0 else 0.0

    def quantiles(
        self,
        name: str,
        qs: Sequence[float] = _PERCENTILES,
        seconds: float | None = None,
    ) -> dict[str, float]:
        """Quantiles of a histogram's observations *within* the window.

        Diffs the newest sample's buckets against the oldest in scope, so
        the estimate covers only what the window saw -- falling back to
        the lifetime buckets when the window holds a single sample.
        """
        samples = self._window_samples(seconds)
        hist = None
        for s in reversed(samples):
            hist = s.get("histograms", {}).get(name)
            if hist is not None:
                break
        if hist is None:
            return {}
        counts = list(hist["counts"])
        if len(samples) > 1:
            first = samples[0].get("histograms", {}).get(name)
            if first is not None:
                counts = [a - b for a, b in zip(counts, first["counts"])]
                if sum(counts) <= 0:  # nothing new in the window: lifetime view
                    counts = list(hist["counts"])
        return {
            f"p{int(q * 100)}": quantile_from_buckets(hist["buckets"], counts, q)
            for q in qs
        }

    def summary(self, seconds: float | None = None) -> dict[str, object]:
        """Compact digest: per-counter rates, final gauges, histogram
        percentiles -- small enough to embed in a run manifest."""
        samples = self._window_samples(seconds)
        if not samples:
            return {
                "interval_s": self.interval_s,
                "samples": 0,
                "window_s": 0.0,
                "rates": {},
                "gauges": {},
                "quantiles": {},
            }
        first, last = samples[0], samples[-1]
        elapsed = last["t"] - first["t"]
        delta = diff_snapshots(first, last) if len(samples) > 1 else last
        rates = {}
        if elapsed > 0:
            for cname, moved in delta.get("counters", {}).items():
                rates[cname] = moved / elapsed
        return {
            "interval_s": self.interval_s,
            "samples": len(samples),
            "window_s": elapsed,
            "rates": rates,
            "gauges": dict(last.get("gauges", {})),
            "quantiles": {
                hname: self.quantiles(hname, seconds=seconds)
                for hname in last.get("histograms", {})
            },
        }


# -- process-global recorder ------------------------------------------------

_RECORDER: MetricsRecorder | None = None
_RECORDER_LOCK = threading.Lock()


def start_recorder(
    interval_s: float = DEFAULT_INTERVAL_S, capacity: int = DEFAULT_CAPACITY
) -> MetricsRecorder:
    """Start (or return the already-running) process-global recorder."""
    global _RECORDER
    with _RECORDER_LOCK:
        if _RECORDER is not None and _RECORDER.running:
            return _RECORDER
        _RECORDER = MetricsRecorder(interval_s=interval_s, capacity=capacity)
        return _RECORDER.start()


def get_recorder() -> MetricsRecorder | None:
    """The process-global recorder, or ``None`` when none is running."""
    rec = _RECORDER
    return rec if rec is not None and rec.running else None


def stop_recorder() -> MetricsRecorder | None:
    """Stop and detach the process-global recorder (returns it for reads)."""
    global _RECORDER
    with _RECORDER_LOCK:
        rec, _RECORDER = _RECORDER, None
    if rec is not None:
        rec.stop()
    return rec
