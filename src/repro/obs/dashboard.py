"""Static HTML dashboard: ``repro-mms dashboard <manifest|fabric-dir|trace>``.

One self-contained HTML file, zero dependencies and zero JavaScript
frameworks -- tables plus inline SVG (sparklines and a per-worker
dispatch-to-complete Gantt), in the spirit of FuzzBench's ``analysis/`` +
``web/`` report pipeline.  Four input shapes are understood:

* a **fabric directory** (contains ``fabric.db``): fleet view -- the
  sweep timeline Gantt from trial dispatch/complete timestamps, the
  per-worker throughput/heartbeat table, lease latency, and the stage
  self-time table from the workers' merged traces when they shipped any
  (``sweep --fabric DIR --trace ...``);
* a **run manifest** (``.json`` from ``sweep --manifest``): run overview,
  stage table, recorder series digest, and -- for ``mode == "fabric"``
  manifests whose ``fabric_dir`` still exists -- the full fleet view;
* a **JSONL trace**: span attribution table plus a per-process span
  timeline;
* a **``/seriesz`` window dump** (``curl .../seriesz > s.json``):
  sparklines of every counter/gauge and windowed histogram percentiles.

Everything renders from data the system already records; the dashboard is
a pure reader and can be re-run at any time.
"""

from __future__ import annotations

import html as _html
import json
import time
from pathlib import Path
from typing import Mapping, Sequence

from .metrics import quantile_from_buckets
from .report import _attribution_rows, load_trace

__all__ = ["render_dashboard", "write_dashboard"]

_CSS = """
body { font: 14px/1.45 -apple-system, "Segoe UI", Roboto, sans-serif;
       margin: 2em auto; max-width: 72em; padding: 0 1em; color: #1c2330; }
h1 { font-size: 1.5em; border-bottom: 2px solid #36525e; padding-bottom: .3em; }
h2 { font-size: 1.15em; margin-top: 1.6em; color: #36525e; }
table { border-collapse: collapse; margin: .6em 0; }
th, td { border: 1px solid #c8d2da; padding: .25em .6em; text-align: right; }
th { background: #eef3f6; }
td:first-child, th:first-child { text-align: left; }
tr:nth-child(even) td { background: #f7fafc; }
svg { background: #fbfcfe; border: 1px solid #c8d2da; }
.caption { color: #5a6876; font-size: .85em; margin: .2em 0 .8em; }
.lane-label { font: 11px monospace; }
"""

_BAR_COLORS = {"done": "#2f855a", "cached": "#9ac79b", "failed": "#c53030"}


def _esc(v: object) -> str:
    return _html.escape(str(v))


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def _table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    table_id: str | None = None,
    caption: str | None = None,
) -> str:
    tid = f' id="{_esc(table_id)}"' if table_id else ""
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(_fmt(c))}</td>" for c in row) + "</tr>"
        for row in rows
    )
    cap = f'<p class="caption">{_esc(caption)}</p>' if caption else ""
    return f"<table{tid}><tr>{head}</tr>{body}</table>{cap}"


def _kv(pairs: Sequence[tuple[str, object]], table_id: str | None = None) -> str:
    return _table(["field", "value"], [[k, v] for k, v in pairs], table_id=table_id)


def _sparkline(
    values: Sequence[float], width: int = 260, height: int = 40
) -> str:
    """Inline SVG sparkline; flat lines render mid-height."""
    if not values:
        return "<svg width='260' height='40'></svg>"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = max(len(values) - 1, 1)
    pts = " ".join(
        f"{2 + i * (width - 4) / n:.1f},"
        f"{height - 4 - (v - lo) * (height - 8) / span:.1f}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg width="{width}" height="{height}" class="sparkline">'
        f'<polyline points="{pts}" fill="none" stroke="#36525e" '
        f'stroke-width="1.5"/></svg>'
    )


def _gantt(timeline: Mapping[str, object], svg_id: str = "timeline") -> str:
    """Per-worker lanes of dispatch-to-complete bars, one rect per trial."""
    lanes: Mapping[str, list[dict]] = timeline.get("lanes") or {}
    t0, t1 = timeline.get("t0"), timeline.get("t1")
    if not lanes or t0 is None or t1 is None:
        return "<p class='caption'>(no terminal trials to draw)</p>"
    span = (t1 - t0) or 1.0
    label_w, chart_w, row_h = 190, 760, 22
    width = label_w + chart_w + 10
    height = row_h * len(lanes) + 26
    parts = [
        f'<svg id="{_esc(svg_id)}" width="{width}" height="{height}" '
        f'role="img" aria-label="sweep timeline">'
    ]
    max_bars = 4000  # keep pathological sweeps renderable
    drawn = 0
    for row, (label, bars) in enumerate(sorted(lanes.items())):
        y = 4 + row * row_h
        parts.append(
            f'<text class="lane-label" x="4" y="{y + 14}">'
            f"{_esc(str(label)[:28])}</text>"
        )
        for bar in bars:
            if drawn >= max_bars:
                break
            x = label_w + (bar["start"] - t0) / span * chart_w
            w = max(1.0, (bar["end"] - bar["start"]) / span * chart_w)
            color = _BAR_COLORS["cached"] if bar.get("cached") else (
                _BAR_COLORS.get(str(bar.get("status")), "#36525e")
            )
            dur_ms = 1e3 * (bar["end"] - bar["start"])
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
                f'height="{row_h - 6}" fill="{color}">'
                f"<title>{_esc(bar.get('key', ''))} "
                f"{_esc(bar.get('status', ''))} {dur_ms:.1f} ms</title></rect>"
            )
            drawn += 1
    parts.append(
        f'<text class="lane-label" x="{label_w}" y="{height - 6}">0 s</text>'
        f'<text class="lane-label" x="{label_w + chart_w - 40}" '
        f'y="{height - 6}">{span:.2f} s</text>'
    )
    parts.append("</svg>")
    legend = " · ".join(
        f"{name}: {color}" for name, color in _BAR_COLORS.items()
    )
    return "".join(parts) + f'<p class="caption">{_esc(legend)}</p>'


def _page(title: str, sections: Sequence[str]) -> str:
    body = "\n".join(s for s in sections if s)
    return (
        "<!doctype html>\n<html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>\n"
        f"<body><h1>{_esc(title)}</h1>\n{body}\n"
        f"<p class='caption'>generated by repro-mms dashboard</p>"
        "</body></html>\n"
    )


# -- section builders --------------------------------------------------------


def _stages_from_attribution(
    events: Sequence[Mapping[str, object]], caption: str
) -> str:
    spans = [e for e in events if e.get("kind") == "span"]
    rows, wall = _attribution_rows(spans)
    table = _table(
        ["span", "count", "total_ms", "self_ms", "self%"],
        [[n, c, f"{t:.3f}", f"{s:.3f}", f"{p:.2f}"] for n, c, t, s, p in rows],
        table_id="stages",
        caption=caption + f" (root wall clock {wall * 1e3:.1f} ms)",
    )
    return "<h2>Stage self-time</h2>" + table


def _stages_from_manifest(manifest: Mapping[str, object]) -> str:
    wall = float(manifest.get("wall_clock_s", 0.0))
    stages: Mapping[str, float] = manifest.get("stages") or {}
    rows = [
        [name, f"{1e3 * float(dur):.3f}",
         f"{(100.0 * float(dur) / wall) if wall else 0.0:.2f}"]
        for name, dur in sorted(stages.items(), key=lambda kv: -kv[1])
    ]
    if not rows:
        return ""
    return "<h2>Stage self-time</h2>" + _table(
        ["stage", "total_ms", "wall%"],
        rows,
        table_id="stages",
        caption="consecutive wall-clock segments of the run "
        f"({1e3 * wall:.1f} ms total)",
    )


def _fleet_tables(fleet: Mapping[str, object]) -> str:
    workers: Mapping[str, Mapping[str, object]] = fleet.get("workers") or {}
    rows = [
        [
            wid,
            w.get("status", "?"),
            w.get("trials_done", 0),
            w.get("trials_failed", 0),
            f"{float(w.get('busy_s', 0.0)):.3f}",
            f"{float(w.get('throughput_per_s', 0.0)):.2f}",
            f"{float(w.get('heartbeat_gap_s', 0.0)):.2f}",
        ]
        for wid, w in sorted(workers.items())
    ]
    blocks = ["<h2>Workers</h2>"]
    blocks.append(
        _table(
            [
                "worker",
                "status",
                "done",
                "failed",
                "busy_s",
                "trials/s",
                "heartbeat_gap_s",
            ],
            rows,
            table_id="workers",
            caption="heartbeat gap = final heartbeat vs the fleet's last "
            "event; a SIGKILLed worker shows a large gap",
        )
        if rows
        else "<p class='caption'>(no workers registered)</p>"
    )
    lat = fleet.get("lease_latency_s") or {}
    if lat.get("count"):
        blocks.append(
            _kv(
                [
                    ("leases released", lat.get("count", 0)),
                    ("mean_s", f"{float(lat.get('mean', 0.0)):.3f}"),
                    ("p50_s", f"{float(lat.get('p50', 0.0)):.3f}"),
                    ("p95_s", f"{float(lat.get('p95', 0.0)):.3f}"),
                    ("max_s", f"{float(lat.get('max', 0.0)):.3f}"),
                    ("leases expired", fleet.get("leases_expired", 0)),
                ],
                table_id="lease-latency",
            )
        )
    return "".join(blocks)


def _completion_sparklines(timeline: Mapping[str, object]) -> str:
    """Per-worker cumulative completions over the sweep window."""
    lanes: Mapping[str, list[dict]] = timeline.get("lanes") or {}
    t0, t1 = timeline.get("t0"), timeline.get("t1")
    if not lanes or t0 is None or t1 is None or t1 <= t0:
        return ""
    buckets = 60
    rows = []
    for label, bars in sorted(lanes.items()):
        series = [0] * (buckets + 1)
        for bar in bars:
            idx = int((bar["end"] - t0) / (t1 - t0) * buckets)
            series[min(idx, buckets)] += 1
        cum, out = 0, []
        for n in series:
            cum += n
            out.append(float(cum))
        rows.append(
            f"<tr><td>{_esc(str(label)[:28])}</td>"
            f"<td>{_sparkline(out)}</td><td>{cum}</td></tr>"
        )
    return (
        "<h2>Completions over time</h2><table id='completions'>"
        "<tr><th>worker</th><th>cumulative trials</th><th>total</th></tr>"
        + "".join(rows)
        + "</table>"
    )


def _series_sections(window: Mapping[str, object]) -> list[str]:
    """Sections for a recorder window (``/seriesz`` JSON)."""
    samples: Sequence[Mapping[str, object]] = window.get("samples") or []
    sections: list[str] = []
    if not samples:
        return ["<p class='caption'>(empty series window)</p>"]
    first, last = samples[0], samples[-1]
    elapsed = float(last.get("t", 0.0)) - float(first.get("t", 0.0))
    sections.append(
        _kv(
            [
                ("samples", len(samples)),
                ("window_s", f"{elapsed:.1f}"),
                ("interval_s", window.get("interval_s", "?")),
            ]
        )
    )
    rows = []
    for name in sorted(last.get("counters", {})):
        values = [float(s.get("counters", {}).get(name, 0.0)) for s in samples]
        deltas = [b - a for a, b in zip(values, values[1:])] or [0.0]
        rate = (values[-1] - values[0]) / elapsed if elapsed > 0 else 0.0
        rows.append(
            f"<tr><td>{_esc(name)}</td><td>{_sparkline(deltas)}</td>"
            f"<td>{values[-1]:.6g}</td><td>{rate:.4g}/s</td></tr>"
        )
    for name in sorted(last.get("gauges", {})):
        values = [float(s.get("gauges", {}).get(name, 0.0)) for s in samples]
        rows.append(
            f"<tr><td>{_esc(name)}</td><td>{_sparkline(values)}</td>"
            f"<td>{values[-1]:.6g}</td><td>gauge</td></tr>"
        )
    if rows:
        sections.append(
            '<h2>Series</h2><table id="series">'
            "<tr><th>metric</th><th>window</th><th>last</th><th>rate</th></tr>"
            + "".join(rows)
            + "</table>"
        )
    hist_rows = []
    for name, h in sorted(last.get("histograms", {}).items()):
        counts = list(h["counts"])
        prev = first.get("histograms", {}).get(name)
        if prev is not None and len(samples) > 1:
            diffed = [a - b for a, b in zip(counts, prev["counts"])]
            if sum(diffed) > 0:
                counts = diffed
        qs = {
            q: quantile_from_buckets(h["buckets"], counts, q)
            for q in (0.5, 0.95, 0.99)
        }
        hist_rows.append(
            [name, sum(counts), f"{qs[0.5]:.4g}", f"{qs[0.95]:.4g}",
             f"{qs[0.99]:.4g}"]
        )
    if hist_rows:
        sections.append(
            "<h2>Latency percentiles (window)</h2>"
            + _table(
                ["histogram", "n", "p50", "p95", "p99"],
                hist_rows,
                table_id="quantiles",
            )
        )
    return sections


def _manifest_summary_series(series: Mapping[str, object]) -> str:
    rows = [
        [name, f"{float(rate):.4g}/s"]
        for name, rate in sorted(series.get("rates", {}).items())
    ]
    rows += [
        [name, _fmt(v)] for name, v in sorted(series.get("gauges", {}).items())
    ]
    for name, qs in sorted(series.get("quantiles", {}).items()):
        if qs:
            rows.append(
                [name, " ".join(f"{k}={v:.4g}" for k, v in sorted(qs.items()))]
            )
    if not rows:
        return ""
    return "<h2>Recorder series digest</h2>" + _table(
        ["metric", "value"],
        rows,
        table_id="series",
        caption=f"{series.get('samples', 0)} samples over "
        f"{float(series.get('window_s', 0.0)):.1f} s "
        f"at {series.get('interval_s', '?')} s intervals",
    )


def _fabric_sections(
    fabric_dir: Path, experiment: str | None = None
) -> list[str]:
    # imported lazily: repro.fabric pulls in the runner stack, and repro.obs
    # must stay importable without it (no import cycle at package init)
    from ..fabric.db import ExperimentDB
    from ..fabric.rollup import fleet_rollup, merge_traces, sweep_timeline

    sections: list[str] = []
    with ExperimentDB(fabric_dir) as db:
        if experiment is None:
            experiments = db.experiments()
            if not experiments:
                return ["<p class='caption'>(fabric has no experiments)</p>"]
            experiment = str(experiments[0]["experiment_id"])
        exp = db.experiment(experiment)
        counts = db.counts(experiment)
        sections.append(
            _kv(
                [
                    ("experiment", experiment),
                    ("status", exp.get("status", "?")),
                    ("total_trials", exp.get("total_trials", 0)),
                    ("done", counts.get("done", 0)),
                    ("failed", counts.get("failed", 0)),
                    ("solver_version", exp.get("solver_version", "?")),
                ],
                table_id="overview",
            )
        )
        timeline = sweep_timeline(db, experiment)
        sections.append("<h2>Sweep timeline</h2>" + _gantt(timeline))
        sections.append(_completion_sparklines(timeline))
        fleet = fleet_rollup(db, experiment, fabric_dir=fabric_dir)
        sections.append(_fleet_tables(fleet))
    events = merge_traces(fabric_dir)
    if events:
        sections.append(
            _stages_from_attribution(
                events,
                f"merged from {len(fleet.get('trace_files', []))} worker "
                "trace files",
            )
        )
    else:
        # no shipped traces: attribute from the trials table instead so the
        # dashboard always carries a stage table
        with ExperimentDB(fabric_dir) as db:
            trials = db.trials(experiment)
        solved = [t for t in trials if t["status"] == "done"]
        failed = [t for t in trials if t["status"] == "failed"]
        rows = [
            [
                f"trial.{name}",
                len(group),
                f"{1e3 * sum(float(t['elapsed_s'] or 0.0) for t in group):.3f}",
            ]
            for name, group in (("done", solved), ("failed", failed))
            if group
        ]
        sections.append(
            "<h2>Stage self-time</h2>"
            + _table(
                ["stage", "count", "total_ms"],
                rows,
                table_id="stages",
                caption="per-trial solve time from the experiment database; "
                "run the sweep with --trace for span-level attribution",
            )
        )
    return sections


def _trace_sections(path: Path) -> list[str]:
    events = load_trace(path)
    sections = [_stages_from_attribution(events, f"trace {path.name}")]
    spans = [e for e in events if e.get("kind") == "span"]
    by_pid: dict[str, list[dict]] = {}
    for s in spans:
        by_pid.setdefault(str(s.get("pid", "?")), []).append(s)
    lanes: dict[str, list[dict]] = {}
    for pid, group in by_pid.items():
        # per-process perf-counter clocks: normalize each lane to its own 0
        base = min(float(s["t_start"]) for s in group)
        lanes[f"pid {pid}"] = [
            {
                "start": float(s["t_start"]) - base,
                "end": float(s["t_start"]) - base + float(s["duration_s"]),
                "status": "done",
                "key": s["name"],
                "cached": False,
            }
            for s in group
        ]
    ends = [b["end"] for bars in lanes.values() for b in bars]
    timeline = {
        "t0": 0.0,
        "t1": max(ends) if ends else None,
        "lanes": lanes,
    }
    sections.insert(
        0,
        "<h2>Span timeline</h2>"
        + _gantt(timeline)
        + "<p class='caption'>lanes are per-process; each is normalized to "
        "its own first span (perf-counter clocks do not align across "
        "processes)</p>",
    )
    metrics = [e for e in events if e.get("kind") == "metrics"]
    if metrics:
        snap = metrics[-1].get("metrics", {})
        rows = [[k, v] for k, v in sorted(snap.get("counters", {}).items())]
        if rows:
            sections.append(
                "<h2>Final metrics</h2>"
                + _table(["counter", "value"], rows, table_id="metrics")
            )
    return sections


def _manifest_sections(manifest: Mapping[str, object]) -> list[str]:
    overview = [
        ("mode", manifest.get("mode", "?")),
        ("backend", manifest.get("backend", "?")),
        ("kernel", manifest.get("kernel", "?")),
        ("solver_version", manifest.get("solver_version", "?")),
        ("jobs", manifest.get("jobs", "?")),
        ("total_points", manifest.get("total_points", 0)),
        ("unique_points", manifest.get("unique_points", 0)),
        ("cache_hit_rate", _fmt(manifest.get("cache_hit_rate", 0.0))),
        ("solved", manifest.get("solved", 0)),
        ("failures", manifest.get("failures", 0)),
        ("wall_clock_s", _fmt(manifest.get("wall_clock_s", 0.0))),
    ]
    created = manifest.get("created_at")
    if created:
        overview.append(
            ("created_at", time.strftime(
                "%Y-%m-%d %H:%M:%S", time.localtime(float(created))))
        )
    sections = [_kv(overview, table_id="overview")]
    sections.append(_stages_from_manifest(manifest))
    series = manifest.get("series")
    if series:
        sections.append(_manifest_summary_series(series))
    fabric = manifest.get("fabric")
    if fabric:
        fleet = fabric.get("fleet")
        if fleet:
            sections.append(_fleet_tables(fleet))
        fabric_dir = fabric.get("fabric_dir")
        if fabric_dir and (Path(fabric_dir) / "fabric.db").exists():
            from ..fabric.db import ExperimentDB
            from ..fabric.rollup import sweep_timeline

            with ExperimentDB(fabric_dir) as db:
                timeline = sweep_timeline(
                    db, str(fabric.get("experiment_id"))
                )
            sections.append("<h2>Sweep timeline</h2>" + _gantt(timeline))
            sections.append(_completion_sparklines(timeline))
    return sections


# -- entry points ------------------------------------------------------------


def render_dashboard(
    path: str | Path, experiment: str | None = None
) -> str:
    """Render the dashboard HTML for a manifest, fabric dir, trace, or
    ``/seriesz`` window dump."""
    p = Path(path)
    if p.is_dir():
        if not (p / "fabric.db").exists():
            raise ValueError(
                f"{p} is a directory but holds no fabric.db; point the "
                "dashboard at a fabric dir, a run manifest, or a trace"
            )
        return _page(
            f"repro-mms fleet — {p.name}", _fabric_sections(p, experiment)
        )
    text = p.read_text(encoding="utf-8").strip()
    if not text:
        raise ValueError(f"{p}: empty file")
    try:
        doc = json.loads(text)
    except ValueError:
        doc = None
    if isinstance(doc, dict) and "kind" not in doc:
        if "samples" in doc and "interval_s" in doc:
            return _page(
                f"repro-mms series — {p.name}", _series_sections(doc)
            )
        return _page(f"repro-mms run — {p.name}", _manifest_sections(doc))
    return _page(f"repro-mms trace — {p.name}", _trace_sections(p))


def write_dashboard(
    path: str | Path,
    out: str | Path | None = None,
    experiment: str | None = None,
) -> Path:
    """Render and write the dashboard; returns the output path.

    Default output: ``dashboard.html`` inside a fabric directory, or
    ``<stem>-dashboard.html`` next to a file input.
    """
    p = Path(path)
    if out is None:
        out = (
            p / "dashboard.html"
            if p.is_dir()
            else p.with_name(f"{p.stem}-dashboard.html")
        )
    out = Path(out)
    out.write_text(render_dashboard(p, experiment=experiment), encoding="utf-8")
    return out
