"""Unified observability: tracing spans, metrics, and a JSONL event sink.

The three pillars (all dependency-free):

* :mod:`repro.obs.trace` -- nested spans with a contextvar current-span
  stack, a no-op fast path when disabled (the default), and cross-process
  merging of pool-worker spans through the job payload;
* :mod:`repro.obs.metrics` -- an always-on registry of counters, gauges,
  and fixed-bucket histograms with ``snapshot()`` / ``diff_snapshots()``;
* :mod:`repro.obs.sink` -- a process-safe append-only JSONL event sink.

Plus the consumers: :mod:`repro.obs.validate` (trace schema validation,
used by CI), :mod:`repro.obs.report` (the ``repro-mms report``
attribution tables), :mod:`repro.obs.timeseries` (ring-buffer
:class:`MetricsRecorder` for windowed rates/percentiles),
:mod:`repro.obs.promtext` (Prometheus text exposition for the serve
layer), and :mod:`repro.obs.dashboard` (the ``repro-mms dashboard``
static HTML report).

Quick start::

    from repro import obs

    prev = obs.configure(trace="run.jsonl")   # or REPRO_TRACE=run.jsonl
    with obs.trace_span("my.stage", points=176):
        ...
    obs.get_tracer().close()
    obs.configure(**prev)

    obs.registry().counter("my.counter").inc()
    obs.registry().snapshot()

Span/metric naming and the full schema are documented in
``docs/OBSERVABILITY.md``.
"""

from .dashboard import render_dashboard
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    quantile_from_buckets,
    registry,
)
from .promtext import render_prometheus
from .report import manifest_report, render_report, trace_report
from .sink import EventSink
from .timeseries import (
    MetricsRecorder,
    get_recorder,
    start_recorder,
    stop_recorder,
)
from .trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    enabled,
    get_tracer,
    trace_span,
    traced,
)
from .trace import configure as _trace_configure
from .validate import TraceSummary, TraceValidationError, validate_trace


def configure(trace=None, tracer=None):
    """Deprecated: use :func:`repro.configure(trace=..., tracer=...)`.

    Forwards to :func:`repro.obs.trace.configure` after a one-time
    ``DeprecationWarning``; same arguments, same previous-values return.
    """
    from .._deprecation import warn_once

    warn_once("repro.obs.configure", "repro.configure")
    return _trace_configure(trace=trace, tracer=tracer)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "diff_snapshots",
    "quantile_from_buckets",
    "MetricsRecorder",
    "start_recorder",
    "get_recorder",
    "stop_recorder",
    "render_prometheus",
    "render_dashboard",
    "EventSink",
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "configure",
    "enabled",
    "get_tracer",
    "trace_span",
    "traced",
    "TraceSummary",
    "TraceValidationError",
    "validate_trace",
    "manifest_report",
    "render_report",
    "trace_report",
]
