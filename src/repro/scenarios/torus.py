"""The registered default scenario: the paper's 2-D torus MMS model.

This is a thin adapter over the pre-registry stack (:class:`MMSModel`,
:func:`repro.core.model.solve_points`, the discrete-event simulator, and
the network/memory tolerance indices).  Two invariants are pinned by
``tests/scenarios/test_torus_conformance.py``:

* ``solve``/``solve_points`` are bitwise-identical to calling the model
  directly, so every PR-2 golden (Tables 2--4, Figures 4--11) reproduces
  unchanged through the scenario seam;
* ``cache_payload`` omits the ``scenario`` field, so every historical
  content-addressed cache key, journal signature, and fabric experiment
  signature is preserved byte for byte.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Sequence

from ..params import Architecture, MMSParams, ParamError, Workload, paper_defaults
from .base import Scenario

__all__ = ["TorusScenario"]


class TorusScenario(Scenario):
    name = "torus"
    title = "2-D torus multithreaded multiprocessor (the paper's MMS)"
    params_type = MMSParams
    batchable_methods = ("symmetric", "amva")
    tolerance_subsystems = ("network", "memory")

    def default_params(self) -> MMSParams:
        return paper_defaults()

    def params_from_dict(self, data: Mapping[str, Any]) -> MMSParams:
        return MMSParams.from_dict(data)

    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in dataclasses.fields(Architecture)) + tuple(
            f.name for f in dataclasses.fields(Workload)
        )

    def with_overrides(self, params: MMSParams, **changes: Any) -> MMSParams:
        try:
            return params.with_(**changes)
        except TypeError:
            unknown = sorted(set(changes) - set(self.field_names()))
            raise ParamError(
                f"unknown parameter(s) for scenario {self.name!r}: "
                f"{unknown}; fields: {'/'.join(self.field_names())}"
            ) from None

    def cache_payload(self, params: MMSParams, method: str) -> dict[str, Any]:
        # No "scenario" field: the default family keeps the pre-registry
        # key bytes, so existing ResultStore/journal/fabric state stays valid.
        return {"method": method, "params": params.to_dict()}

    def canonical_method(self, params: MMSParams, method: str = "auto") -> str:
        if method != "auto":
            return method
        from ..core.model import MMSModel

        return "symmetric" if MMSModel(params).is_symmetric else "amva"

    def solve(
        self, params: MMSParams, method: str = "auto", tol: float = 1e-12
    ) -> Any:
        from ..core.model import MMSModel

        return MMSModel(params).solve(method=method, tol=tol)

    def solve_points(
        self,
        points: Sequence[MMSParams],
        method: str = "auto",
        tol: float = 1e-12,
        kernel: str | None = None,
    ) -> tuple[list[Any], Any]:
        from ..core.model import solve_points as _solve_points

        return _solve_points(points, method=method, tol=tol, kernel=kernel)

    def group_key(self, params: MMSParams) -> Any:
        return params.arch.num_processors

    def perf_from_dict(self, data: Mapping[str, Any]) -> Any:
        from ..core.metrics import MMSPerformance

        return MMSPerformance.from_dict(data)

    def simulate(
        self,
        params: MMSParams,
        duration: float | None = None,
        seed: int = 0,
        warmup: float | None = None,
        **kwargs: Any,
    ) -> Any:
        from ..simulation.mms_sim import simulate as _simulate

        return _simulate(
            params,
            duration=100_000.0 if duration is None else duration,
            seed=seed,
            warmup=warmup,
            **kwargs,
        )

    def tolerance(
        self,
        params: MMSParams,
        subsystem: str | None = None,
        ideal: str | None = None,
        method: str = "auto",
    ) -> Any:
        from ..core.tolerance import memory_tolerance, network_tolerance

        subsystem = subsystem or "network"
        if subsystem == "network":
            return network_tolerance(
                params, ideal=ideal or "zero_delay", method=method
            )
        if subsystem == "memory":
            return memory_tolerance(params, method=method)
        raise ValueError(
            f"subsystem: must be 'network' or 'memory', got {subsystem!r}"
        )
