"""The ``Scenario`` protocol: one pluggable workload/topology family.

A scenario bundles everything the rest of the stack needs to treat a
workload/topology family as data rather than code:

* a parameter schema (a frozen dataclass with ``to_dict``/``from_dict``),
* validation and override routing (``with_overrides``),
* the analytical solve path (``solve``/``solve_points``),
* the content-addressed cache-key contribution (``cache_payload``) so
  ResultStore keys, journal signatures, and fabric experiment signatures
  stay correct and non-colliding across families,
* optional simulator wiring and tolerance-index definitions.

The registry in :mod:`repro.scenarios` maps names to instances; the
default ``"torus"`` scenario wraps the paper's MMS model and is pinned
bitwise-compatible with the pre-registry solver (its ``cache_payload``
omits the ``scenario`` field so every historical cache key is preserved).
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..params import ParamError

__all__ = [
    "Scenario",
    "ScenarioCapabilityError",
    "ScenarioPerformance",
]


class ScenarioCapabilityError(ValueError):
    """A scenario was asked for a capability it does not implement."""


def _plain(value: object) -> object:
    """Collapse numpy scalars so payloads stay canonical-JSON friendly."""
    item = getattr(value, "item", None)
    if callable(item) and not isinstance(value, (str, bytes)):
        try:
            return item()
        except (TypeError, ValueError):
            return value
    return value


@dataclass(frozen=True)
class ScenarioPerformance:
    """Generic solved-performance record for non-torus scenarios.

    ``measures`` maps measure names to floats; :meth:`summary` returns it
    verbatim, and unknown attribute lookups fall through to it so the
    sweep/measure machinery (``perf.some_measure``) works unchanged.
    ``to_dict``/``from_dict`` round-trip bit-for-bit (floats serialise via
    ``repr`` and parse back exactly).
    """

    scenario: str
    method: str
    measures: Mapping[str, float]
    iterations: int = 0
    converged: bool = True
    residual: float = 0.0

    def summary(self) -> dict[str, float]:
        return dict(self.measures)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "method": self.method,
            "measures": {k: _plain(v) for k, v in self.measures.items()},
            "iterations": int(self.iterations),
            "converged": bool(self.converged),
            "residual": float(self.residual),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioPerformance":
        return cls(
            scenario=str(data["scenario"]),
            method=str(data["method"]),
            measures=dict(data["measures"]),
            iterations=int(data.get("iterations", 0)),
            converged=bool(data.get("converged", True)),
            residual=float(data.get("residual", 0.0)),
        )

    def __getattr__(self, name: str) -> float:
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            measures = object.__getattribute__(self, "measures")
        except AttributeError:
            raise AttributeError(name) from None
        try:
            return measures[name]
        except KeyError:
            raise AttributeError(
                f"{type(self).__name__} has no measure {name!r}; "
                f"measures: {sorted(measures)}"
            ) from None


class Scenario(abc.ABC):
    """One registered workload/topology family.

    Subclasses set the class attributes and implement the abstract
    methods; everything else has sensible defaults (serial batch solve,
    no simulator, generic dataclass override routing).
    """

    #: Registry name (``repro-mms --scenario NAME``, ``REPRO_SCENARIO``).
    name: str = ""
    #: One-line human description for docs and listings.
    title: str = ""
    #: The frozen dataclass type carried by :class:`~repro.runner.spec.JobSpec`.
    params_type: type = object
    #: Methods the parallel runner may group into vectorised batches.
    batchable_methods: tuple[str, ...] = ()
    #: Subsystems accepted by :meth:`tolerance`.
    tolerance_subsystems: tuple[str, ...] = ()

    # -- parameter schema -------------------------------------------------

    @abc.abstractmethod
    def default_params(self) -> Any:
        """The family's default parameter point."""

    @abc.abstractmethod
    def params_from_dict(self, data: Mapping[str, Any]) -> Any:
        """Rebuild a params instance from its ``to_dict`` payload."""

    def field_names(self) -> tuple[str, ...]:
        """Override-able parameter names, for error messages and ``--axis``."""
        return tuple(f.name for f in dataclasses.fields(self.params_type))

    def with_overrides(self, params: Any, **changes: Any) -> Any:
        """Return a copy of ``params`` with ``changes`` applied.

        Unknown names raise :class:`~repro.params.ParamError` enumerating
        this scenario's parameter names (the ``--axis`` error contract).
        """
        if not changes:
            return params
        known = set(self.field_names())
        unknown = sorted(set(changes) - known)
        if unknown:
            raise ParamError(
                f"unknown parameter(s) for scenario {self.name!r}: "
                f"{unknown}; fields: {'/'.join(self.field_names())}"
            )
        return dataclasses.replace(params, **changes)

    # -- cache-key contribution -------------------------------------------

    def cache_payload(self, params: Any, method: str) -> dict[str, Any]:
        """The dict hashed into the content-addressed job key.

        Non-default scenarios include their name, guaranteeing keys are
        injective across (scenario, params).  The torus default overrides
        this to omit the field so pre-registry keys are preserved bitwise.
        """
        return {
            "method": method,
            "params": params.to_dict(),
            "scenario": self.name,
        }

    # -- solving -----------------------------------------------------------

    @abc.abstractmethod
    def canonical_method(self, params: Any, method: str = "auto") -> str:
        """Resolve ``"auto"`` to the concrete solve method for ``params``."""

    @abc.abstractmethod
    def solve(self, params: Any, method: str = "auto", tol: float = 1e-12) -> Any:
        """Solve one parameter point analytically."""

    def solve_points(
        self,
        points: Sequence[Any],
        method: str = "auto",
        tol: float = 1e-12,
        kernel: str | None = None,
    ) -> tuple[list[Any], Any]:
        """Solve many points; returns ``(perfs, batch_telemetry | None)``.

        The default is a serial loop; scenarios with a vectorised batch
        path (and ``batchable_methods``) override this.
        """
        del kernel
        return [self.solve(p, method=method, tol=tol) for p in points], None

    def group_key(self, params: Any) -> Any:
        """Batch-compatibility key; ``None`` means never batched."""
        del params
        return None

    @abc.abstractmethod
    def perf_from_dict(self, data: Mapping[str, Any]) -> Any:
        """Rebuild a performance object from a cached record."""

    # -- optional capabilities ---------------------------------------------

    def simulate(
        self,
        params: Any,
        duration: float | None = None,
        seed: int = 0,
        warmup: float = 0.0,
        **kwargs: Any,
    ) -> Any:
        """Discrete-event simulation of one point (optional capability)."""
        del params, duration, seed, warmup, kwargs
        raise ScenarioCapabilityError(
            f"scenario {self.name!r} has no simulator"
        )

    def tolerance(
        self,
        params: Any,
        subsystem: str | None = None,
        ideal: str | None = None,
        method: str = "auto",
    ) -> Any:
        """Latency-tolerance index for ``subsystem`` (optional capability)."""
        del params, subsystem, ideal, method
        raise ScenarioCapabilityError(
            f"scenario {self.name!r} defines no tolerance subsystems"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Scenario {self.name!r}: {self.title}>"
