"""Work-stealing schedulers under communication latency.

The second registered scenario family: ``p`` identical workers cooperate
on ``W`` units of sequential work through randomized work stealing, where
every steal request and every reply costs a one-way communication latency
``lambda``.  The analytical baseline is the bound of Gast, Khatiri &
Trystram (arXiv:1805.00857), *"A tighter analysis of work stealing"*:

    E[makespan]  <=  W/p  +  c * lambda * log2(W / lambda),   c = 16/3

``solve`` evaluates that bound (method ``"bound"``); ``simulate`` runs a
small discrete-event model of steal-half work stealing whose makespan is
pinned between the ideal ``W/p`` and the bound by
``tests/scenarios/test_worksteal.py``.  The latency-tolerance index for
this family (subsystem ``"steal"``) compares against the zero-latency
ideal, mirroring the paper's actual/ideal utilization ratio.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

from ..params import ParamError
from .base import Scenario, ScenarioPerformance

__all__ = [
    "GAST_BOUND_COEFF",
    "WorkStealParams",
    "WorkStealScenario",
    "WorkStealSimResult",
    "steal_bound",
]

#: The constant ``c`` of the Gast/Khatiri/Trystram bound (Theorem 4: 16/3).
GAST_BOUND_COEFF = 16.0 / 3.0

_PLACEMENTS = ("single", "spread")


@dataclass(frozen=True)
class WorkStealParams:
    """Parameters of one work-stealing configuration.

    ``total_work`` is the sequential execution time ``W``; ``unit_work``
    is the task granularity the simulator splits it into; ``latency`` is
    the one-way steal-message latency ``lambda`` (request and reply each
    pay it); ``placement`` is the initial distribution of work
    (``"single"``: all on worker 0, the adversarial case of the bound;
    ``"spread"``: round-robin).
    """

    num_workers: int = 4
    total_work: float = 10_000.0
    latency: float = 10.0
    unit_work: float = 1.0
    placement: str = "single"

    def __post_init__(self) -> None:
        if not isinstance(self.num_workers, int) or self.num_workers < 1:
            raise ParamError(
                f"num_workers: must be a positive integer, got {self.num_workers!r}"
            )
        if not self.total_work > 0:
            raise ParamError(f"total_work: must be > 0, got {self.total_work!r}")
        if self.latency < 0:
            raise ParamError(f"latency: must be >= 0, got {self.latency!r}")
        if not self.unit_work > 0:
            raise ParamError(f"unit_work: must be > 0, got {self.unit_work!r}")
        if self.placement not in _PLACEMENTS:
            raise ParamError(
                f"placement: must be one of {_PLACEMENTS}, got {self.placement!r}"
            )

    def with_(self, **changes: Any) -> "WorkStealParams":
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "num_workers": self.num_workers,
            "total_work": float(self.total_work),
            "latency": float(self.latency),
            "unit_work": float(self.unit_work),
            "placement": self.placement,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkStealParams":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise TypeError(f"unknown work-steal parameter(s): {unknown}")
        coerced: dict[str, Any] = dict(data)
        if "num_workers" in coerced:
            coerced["num_workers"] = int(coerced["num_workers"])
        for name in ("total_work", "latency", "unit_work"):
            if name in coerced:
                coerced[name] = float(coerced[name])
        return cls(**coerced)


def steal_bound(params: WorkStealParams) -> float:
    """The Gast et al. expected-makespan bound for ``params``."""
    p = params.num_workers
    work = float(params.total_work)
    lam = float(params.latency)
    ideal = work / p
    if p == 1 or lam == 0.0:
        return ideal if p > 1 else work
    return ideal + GAST_BOUND_COEFF * lam * math.log2(max(work / lam, 2.0))


@dataclass(frozen=True)
class WorkStealSimResult:
    """Outcome of one work-stealing discrete-event run."""

    makespan: float
    ideal_makespan: float
    tasks: int
    steals: int
    failed_steals: int
    seed: int

    @property
    def efficiency(self) -> float:
        return self.ideal_makespan / self.makespan if self.makespan > 0 else 1.0

    def summary(self) -> dict[str, float]:
        return {
            "makespan": self.makespan,
            "ideal_makespan": self.ideal_makespan,
            "efficiency": self.efficiency,
            "tasks": float(self.tasks),
            "steals": float(self.steals),
            "failed_steals": float(self.failed_steals),
        }


class WorkStealScenario(Scenario):
    name = "worksteal"
    title = "randomized work stealing under communication latency (Gast et al.)"
    params_type = WorkStealParams
    batchable_methods = ()
    tolerance_subsystems = ("steal",)

    def default_params(self) -> WorkStealParams:
        return WorkStealParams()

    def params_from_dict(self, data: Mapping[str, Any]) -> WorkStealParams:
        return WorkStealParams.from_dict(data)

    def canonical_method(self, params: WorkStealParams, method: str = "auto") -> str:
        if method in ("auto", "bound"):
            return "bound"
        raise ParamError(
            f"unknown method {method!r} for scenario 'worksteal'; "
            "pick from auto/bound"
        )

    def solve(
        self,
        params: WorkStealParams,
        method: str = "auto",
        tol: float = 1e-12,
    ) -> ScenarioPerformance:
        del tol  # the bound is closed form
        canonical = self.canonical_method(params, method)
        work = float(params.total_work)
        ideal = work / params.num_workers
        makespan = steal_bound(params)
        overhead = makespan - ideal
        efficiency = ideal / makespan if makespan > 0 else 1.0
        return ScenarioPerformance(
            scenario=self.name,
            method=canonical,
            measures={
                "makespan": makespan,
                "ideal_makespan": ideal,
                "overhead": overhead,
                "efficiency": efficiency,
                "speedup": work / makespan if makespan > 0 else 0.0,
                "tol_steal": efficiency,
            },
        )

    def perf_from_dict(self, data: Mapping[str, Any]) -> ScenarioPerformance:
        return ScenarioPerformance.from_dict(data)

    def tolerance(
        self,
        params: WorkStealParams,
        subsystem: str | None = None,
        ideal: str | None = None,
        method: str = "auto",
    ) -> Any:
        from ..core.tolerance import ToleranceResult

        subsystem = subsystem or "steal"
        if subsystem != "steal":
            raise ValueError(f"subsystem: must be 'steal', got {subsystem!r}")
        actual = self.solve(params, method=method)
        ideal_perf = self.solve(params.with_(latency=0.0), method=method)
        # Throughput ratio: X = W / makespan, so the index collapses to a
        # makespan ratio (== efficiency against the zero-latency ideal).
        index = (
            ideal_perf.makespan / actual.makespan if actual.makespan > 0 else 1.0
        )
        return ToleranceResult(
            subsystem="steal",
            ideal_method=ideal or "zero_latency",
            index=index,
            actual=actual,
            ideal=ideal_perf,
        )

    def simulate(
        self,
        params: WorkStealParams,
        duration: float | None = None,
        seed: int = 0,
        warmup: float = 0.0,
        **kwargs: Any,
    ) -> WorkStealSimResult:
        if kwargs:
            raise TypeError(
                f"unknown simulate keyword(s) for scenario 'worksteal': "
                f"{sorted(kwargs)}"
            )
        del warmup  # the run is finite; no steady-state statistics
        return _simulate_worksteal(params, seed=seed, horizon=duration)


def _simulate_worksteal(
    params: WorkStealParams, seed: int = 0, horizon: float | None = None
) -> WorkStealSimResult:
    """Steal-half randomized work stealing as a small event simulation.

    Each worker executes its local queue one unit task at a time; an idle
    worker sends a steal request to a uniformly random victim (one-way
    cost ``latency``), which replies with half its queue (``(q + 1) // 2``,
    again costing ``latency``).  A thief that finds the whole system empty
    (no queued and no in-flight work) parks permanently; queues only grow
    from in-flight loot, so this terminates even at ``latency == 0``.
    """
    rng = random.Random(seed)
    p = params.num_workers
    unit = float(params.unit_work)
    lam = float(params.latency)
    backoff = lam if lam > 0 else unit
    tasks = max(1, int(round(params.total_work / unit)))

    queue = [0] * p
    if params.placement == "single":
        queue[0] = tasks
    else:
        for i in range(tasks):
            queue[i % p] += 1

    done = 0
    in_flight = 0
    steals = 0
    failed = 0
    makespan = 0.0
    seq = 0
    events: list[tuple[float, int, str, int, int]] = []

    def push(t: float, kind: str, worker: int, extra: int = 0) -> None:
        nonlocal seq
        heapq.heappush(events, (t, seq, kind, worker, extra))
        seq += 1

    def next_action(t: float, worker: int) -> None:
        """Run a local task if any, otherwise go stealing (or park)."""
        nonlocal in_flight
        if queue[worker] > 0:
            queue[worker] -= 1
            push(t + unit, "finish", worker)
        elif p > 1 and (sum(queue) > 0 or in_flight > 0):
            victims = [v for v in range(p) if v != worker]
            push(t + lam, "steal_arrive", rng.choice(victims), worker)
        # else: park -- every remaining task is queued nowhere and nothing
        # is in flight, so all work is already running to completion.

    for w in range(p):
        next_action(0.0, w)

    while events:
        t, _, kind, worker, extra = heapq.heappop(events)
        if horizon is not None and t > horizon:
            makespan = max(makespan, t)
            break
        if kind == "finish":
            done += 1
            makespan = max(makespan, t)
            if done == tasks:
                break
            next_action(t, worker)
        elif kind == "steal_arrive":
            thief = extra
            loot = (queue[worker] + 1) // 2 if queue[worker] > 0 else 0
            if loot > 0:
                steals += 1
                queue[worker] -= loot
                in_flight += loot
                push(t + lam, "steal_reply", thief, loot)
            else:
                failed += 1
                if sum(queue) > 0 or in_flight > 0:
                    victims = [v for v in range(p) if v != worker and v != thief]
                    victim = rng.choice(victims) if victims else worker
                    push(t + backoff, "steal_arrive", victim, thief)
                # else: park the thief (see next_action)
        else:  # steal_reply: loot lands on the thief
            in_flight -= extra
            queue[worker] += extra
            next_action(t, worker)

    return WorkStealSimResult(
        makespan=makespan,
        ideal_makespan=tasks * unit / p,
        tasks=tasks,
        steals=steals,
        failed_steals=failed,
        seed=seed,
    )
