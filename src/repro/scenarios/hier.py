"""Heterogeneous/hierarchical networks with mixed link speeds.

The third registered scenario family: a mesh-of-clusters machine in the
spirit of Kanrar & Siraj (arXiv:1110.3597) -- ``c`` clusters of ``g``
processors each, where intra-cluster links are fast (``intra_delay``)
and the inter-cluster gateway links are slow (``inter_delay``).  Each
processor runs ``num_threads`` threads with runlength ``R``; a memory
access is local with probability ``1 - p_remote``, and a remote access
stays inside the cluster with probability ``p_intra``.

The model follows the torus MMS recipe -- one customer class per
processor (``num_threads`` threads each) over the station layout

    [P processors][P memories][P intra links][c gateways],   P = c * g

-- but is solved with the full multi-class Bard-Schweitzer AMVA
(:func:`repro.queueing.bard_schweitzer`): the ``c`` gateway stations are
shared by ``g`` classes each, so the symmetric fast path's per-label
queue pooling (which assumes one station per class per label) does not
apply.  Remote accesses traverse the source and destination
intra-cluster links (two crossings each for request + reply), and
inter-cluster accesses additionally cross both the source and
destination gateways.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

import numpy as np

from ..params import ParamError
from .base import Scenario, ScenarioPerformance

__all__ = ["HierParams", "HierScenario"]


@dataclass(frozen=True)
class HierParams:
    """Parameters of one mesh-of-clusters configuration."""

    clusters: int = 4
    cluster_size: int = 4
    num_threads: int = 8
    runlength: float = 10.0
    p_remote: float = 0.2
    p_intra: float = 0.8
    memory_latency: float = 10.0
    intra_delay: float = 2.0
    inter_delay: float = 20.0
    memory_ports: int = 1

    def __post_init__(self) -> None:
        for name in ("clusters", "cluster_size", "num_threads", "memory_ports"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ParamError(
                    f"{name}: must be a positive integer, got {value!r}"
                )
        if not self.runlength > 0:
            raise ParamError(f"runlength: must be > 0, got {self.runlength!r}")
        for name in ("p_remote", "p_intra"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ParamError(f"{name}: must be in [0, 1], got {value!r}")
        for name in ("memory_latency", "intra_delay", "inter_delay"):
            value = getattr(self, name)
            if value < 0:
                raise ParamError(f"{name}: must be >= 0, got {value!r}")

    @property
    def num_processors(self) -> int:
        return self.clusters * self.cluster_size

    def with_(self, **changes: Any) -> "HierParams":
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "clusters": self.clusters,
            "cluster_size": self.cluster_size,
            "num_threads": self.num_threads,
            "runlength": float(self.runlength),
            "p_remote": float(self.p_remote),
            "p_intra": float(self.p_intra),
            "memory_latency": float(self.memory_latency),
            "intra_delay": float(self.intra_delay),
            "inter_delay": float(self.inter_delay),
            "memory_ports": self.memory_ports,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HierParams":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise TypeError(f"unknown hier parameter(s): {unknown}")
        coerced: dict[str, Any] = dict(data)
        for name in ("clusters", "cluster_size", "num_threads", "memory_ports"):
            if name in coerced:
                coerced[name] = int(coerced[name])
        for name in (
            "runlength",
            "p_remote",
            "p_intra",
            "memory_latency",
            "intra_delay",
            "inter_delay",
        ):
            if name in coerced:
                coerced[name] = float(coerced[name])
        return cls(**coerced)


def _routing(params: HierParams) -> tuple[float, float, float]:
    """Effective ``(p_remote, intra, inter)`` access probabilities.

    Degenerate shapes route gracefully: a 1-processor machine has no
    remote accesses; a 1-cluster machine has no inter-cluster traffic; a
    machine of 1-processor clusters has no intra-cluster remote targets.
    """
    c, g = params.clusters, params.cluster_size
    p_rem = params.p_remote if c * g > 1 else 0.0
    if g == 1:
        p_intra_eff = 0.0
    elif c == 1:
        p_intra_eff = 1.0
    else:
        p_intra_eff = params.p_intra
    return p_rem, p_rem * p_intra_eff, p_rem * (1.0 - p_intra_eff)


def build_network(params: HierParams) -> Any:
    """The mesh-of-clusters machine as a multi-class :class:`ClosedNetwork`.

    Class ``j`` is the ``num_threads`` threads of processor ``j``
    (cluster ``j // g``).  ``mem[i]``/``link[i]`` are co-located with
    processor ``i``; ``gate[k]`` is cluster ``k``'s gateway.
    """
    from ..queueing import ClosedNetwork

    c, g = params.clusters, params.cluster_size
    n_proc = c * g
    p_rem, intra, inter = _routing(params)

    n_stations = 3 * n_proc + c
    mem0, link0, gate0 = n_proc, 2 * n_proc, 3 * n_proc
    visits = np.zeros((n_proc, n_stations))
    for j in range(n_proc):
        cj = j // g
        # Processor: one runlength per think-access cycle.
        visits[j, j] = 1.0
        # Local access to the co-located memory.
        visits[j, mem0 + j] = 1.0 - p_rem
        # Every remote access crosses the source intra-cluster link twice
        # (request out + reply back).
        visits[j, link0 + j] = 2.0 * p_rem
        if intra > 0:
            share = intra / (g - 1)
            for i in range(cj * g, (cj + 1) * g):
                if i != j:
                    visits[j, mem0 + i] += share
                    visits[j, link0 + i] += 2.0 * share
        if inter > 0:
            share = inter / ((c - 1) * g)
            for i in range(n_proc):
                if i // g != cj:
                    visits[j, mem0 + i] += share
                    visits[j, link0 + i] += 2.0 * share
            # Inter-cluster accesses cross the source cluster's gateway
            # and the destination cluster's gateway, request + reply.
            visits[j, gate0 + cj] += 2.0 * inter
            gate_share = 2.0 * inter / (c - 1)
            for k in range(c):
                if k != cj:
                    visits[j, gate0 + k] += gate_share
    service = np.concatenate(
        [
            np.full(n_proc, params.runlength),
            np.full(n_proc, params.memory_latency),
            np.full(n_proc, params.intra_delay),
            np.full(c, params.inter_delay),
        ]
    )
    servers = [1] * n_proc + [params.memory_ports] * n_proc + [1] * (n_proc + c)
    return ClosedNetwork(
        visits=visits,
        service=service,
        populations=np.full(n_proc, params.num_threads, dtype=np.int64),
        servers=tuple(servers),
    )


class HierScenario(Scenario):
    name = "hier"
    title = "mesh-of-clusters with mixed intra/inter-cluster link speeds"
    params_type = HierParams
    batchable_methods = ()
    tolerance_subsystems = ("network", "interlink", "memory")

    def default_params(self) -> HierParams:
        return HierParams()

    def params_from_dict(self, data: Mapping[str, Any]) -> HierParams:
        return HierParams.from_dict(data)

    def canonical_method(self, params: HierParams, method: str = "auto") -> str:
        if method in ("auto", "amva"):
            return "amva"
        raise ParamError(
            f"unknown method {method!r} for scenario 'hier'; "
            "pick from auto/amva"
        )

    def solve(
        self,
        params: HierParams,
        method: str = "auto",
        tol: float = 1e-12,
    ) -> ScenarioPerformance:
        from ..queueing import bard_schweitzer

        canonical = self.canonical_method(params, method)
        network = build_network(params)
        sol = bard_schweitzer(network, tol=tol)
        n_proc = params.num_processors
        x = float(sol.throughput[0])
        p_rem, _intra, _inter = _routing(params)
        visits = network.visits[0]
        residence = visits * sol.waiting[0]
        mem = slice(n_proc, 2 * n_proc)
        remote = np.ones(len(visits), dtype=bool)
        remote[0] = False  # own processor
        remote[n_proc] = False  # own memory
        s_obs = float(residence[remote].sum() / p_rem) if p_rem > 0 else 0.0
        mem_visits_total = float(visits[mem].sum())
        l_obs = (
            float(residence[mem].sum() / mem_visits_total)
            if mem_visits_total > 0
            else 0.0
        )
        return ScenarioPerformance(
            scenario=self.name,
            method=canonical,
            measures={
                "U_p": x * params.runlength,
                "throughput": x,
                "lambda_net": x * p_rem,
                "S_obs": s_obs,
                "L_obs": l_obs,
            },
            iterations=sol.iterations,
            converged=sol.converged,
            residual=float(sol.residual),
        )

    def perf_from_dict(self, data: Mapping[str, Any]) -> ScenarioPerformance:
        return ScenarioPerformance.from_dict(data)

    def tolerance(
        self,
        params: HierParams,
        subsystem: str | None = None,
        ideal: str | None = None,
        method: str = "auto",
    ) -> Any:
        from ..core.tolerance import ToleranceResult

        subsystem = subsystem or "network"
        if subsystem == "network":
            ideal_params = params.with_(intra_delay=0.0, inter_delay=0.0)
            ideal_method = "zero_delay"
        elif subsystem == "interlink":
            ideal_params = params.with_(inter_delay=params.intra_delay)
            ideal_method = "homogeneous_links"
        elif subsystem == "memory":
            ideal_params = params.with_(memory_latency=0.0)
            ideal_method = "zero_delay"
        else:
            raise ValueError(
                "subsystem: must be one of "
                f"{self.tolerance_subsystems}, got {subsystem!r}"
            )
        actual = self.solve(params, method=method)
        ideal_perf = self.solve(ideal_params, method=method)
        index = actual.U_p / ideal_perf.U_p if ideal_perf.U_p > 0 else 1.0
        return ToleranceResult(
            subsystem=subsystem,
            ideal_method=ideal or ideal_method,
            index=index,
            actual=actual,
            ideal=ideal_perf,
        )
