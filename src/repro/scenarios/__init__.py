"""Scenario registry and selection: pluggable workload/topology families.

Every solvable configuration in ``repro`` belongs to a *scenario* -- a
registered :class:`~repro.scenarios.base.Scenario` bundling a parameter
schema, the analytical solve path, the content-addressed cache-key
contribution, and optional simulator/tolerance wiring.  Three families
ship registered:

``torus``
    The paper's 2-D torus MMS model (the default; bitwise-compatible
    with the pre-registry solver and every existing golden/cache key).
``worksteal``
    Randomized work stealing under communication latency, validated
    against the Gast/Khatiri/Trystram analytical bound (arXiv:1805.00857).
``hier``
    Mesh-of-clusters with mixed intra/inter-cluster link speeds,
    motivated by Kanrar & Siraj (arXiv:1110.3597).

Selection precedence (lowest to highest): the ``REPRO_SCENARIO``
environment variable, :func:`repro.configure(scenario=...)
<repro.configure>`, an explicit ``scenario=`` argument at the call site.
Passing prebuilt params always wins: their type identifies the family,
so old torus-implicit call sites never change meaning.  See
``docs/SCENARIOS.md``.
"""

from __future__ import annotations

import os
from typing import Any, Mapping

from .base import Scenario, ScenarioCapabilityError, ScenarioPerformance
from .hier import HierParams, HierScenario
from .torus import TorusScenario
from .worksteal import WorkStealParams, WorkStealScenario

__all__ = [
    "DEFAULT_SCENARIO",
    "HierParams",
    "Scenario",
    "ScenarioCapabilityError",
    "ScenarioPerformance",
    "ScenarioUnavailableError",
    "WorkStealParams",
    "default_scenario",
    "get_scenario",
    "payload_scenario",
    "register",
    "resolve_scenario",
    "scenario_for_params",
    "scenario_names",
    "set_default_scenario",
    "validate_scenario_name",
]

#: the scenario assumed everywhere one is not named (the paper's machine)
DEFAULT_SCENARIO = "torus"

#: environment override, lowest precedence
_ENV_VAR = "REPRO_SCENARIO"

#: process-global default set by ``repro.configure(scenario=...)``;
#: ``None`` defers to the environment, then ``DEFAULT_SCENARIO``
_CONFIG: dict[str, object] = {"scenario": None}

_REGISTRY: dict[str, Scenario] = {}


class ScenarioUnavailableError(ValueError):
    """An unregistered scenario name was requested (API, env, or CLI)."""


def register(scenario: Scenario) -> Scenario:
    """Register a scenario instance under its ``name``; returns it."""
    if not scenario.name:
        raise ValueError("scenario must define a non-empty name")
    _REGISTRY[scenario.name] = scenario
    return scenario


def scenario_names() -> tuple[str, ...]:
    """Sorted names of every registered scenario."""
    return tuple(sorted(_REGISTRY))


def validate_scenario_name(scenario: object) -> str:
    """Check a scenario name against the registry; returns it normalized."""
    name = str(scenario)
    if name not in _REGISTRY:
        raise ScenarioUnavailableError(
            f"unknown scenario {scenario!r}; pick from {'/'.join(scenario_names())}"
        )
    return name


def get_scenario(name: str) -> Scenario:
    """The registered scenario for ``name``; raises for unknown names."""
    return _REGISTRY[validate_scenario_name(name)]


def set_default_scenario(scenario: object | None) -> object:
    """Set the process-global scenario default; returns the previous value.

    ``None`` clears the default (environment, then ``"torus"``, applies
    again).  Called by :func:`repro.configure`; not public API itself.
    """
    if scenario is not None:
        validate_scenario_name(scenario)
    previous = _CONFIG["scenario"]
    _CONFIG["scenario"] = None if scenario is None else str(scenario)
    return previous


def default_scenario() -> str:
    """The scenario name in effect with no explicit argument."""
    name = _CONFIG["scenario"]
    if name is None:
        name = os.environ.get(_ENV_VAR) or DEFAULT_SCENARIO
    return validate_scenario_name(name)


def resolve_scenario(scenario: str | Scenario | None = None) -> Scenario:
    """Resolve a selection to a scenario instance (precedence applied).

    ``scenario=None`` falls back to :func:`repro.configure`'s default,
    then ``REPRO_SCENARIO``, then ``"torus"``.  Raises
    :class:`ScenarioUnavailableError` for unknown names.
    """
    if isinstance(scenario, Scenario):
        return scenario
    return get_scenario(default_scenario() if scenario is None else str(scenario))


def scenario_for_params(params: Any) -> Scenario:
    """The registered scenario whose params type matches ``params`` exactly.

    Prebuilt params identify their family, so an explicit object beats
    any configured or environment default.
    """
    for scen in _REGISTRY.values():
        if type(params) is scen.params_type:
            return scen
    raise TypeError(
        f"no registered scenario accepts params of type "
        f"{type(params).__name__}; registered: {'/'.join(scenario_names())}"
    )


def payload_scenario(payload: Mapping[str, Any]) -> Scenario:
    """The scenario a job payload belongs to.

    Payloads without a ``"scenario"`` field are torus by contract (the
    pre-registry wire format), regardless of any configured default.
    """
    return get_scenario(str(payload.get("scenario", DEFAULT_SCENARIO)))


register(TorusScenario())
register(WorkStealScenario())
register(HierScenario())
