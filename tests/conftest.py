"""Shared pytest wiring: the golden-regression update flag.

``pytest --update-goldens`` regenerates every pinned fixture under
``tests/goldens/`` from the current solver stack instead of comparing
against it.  Regeneration is deterministic (canonical JSON, sorted keys),
so rerunning it without a solver change is a no-op diff.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current solver outputs "
        "instead of asserting against them",
    )


@pytest.fixture
def update_goldens(request: pytest.FixtureRequest) -> bool:
    return bool(request.config.getoption("--update-goldens"))
