"""Unit tests for parameter dataclasses."""

import pytest

from repro.params import Architecture, MMSParams, Workload, paper_defaults


class TestArchitecture:
    def test_defaults_match_reconstructed_table1(self):
        a = Architecture()
        assert a.k == 4
        assert a.memory_latency == 10.0
        assert a.switch_delay == 10.0
        assert a.context_switch == 0.0

    def test_num_processors(self):
        assert Architecture(k=4).num_processors == 16
        assert Architecture(k=10).num_processors == 100

    def test_rectangular(self):
        assert Architecture(k=4, ky=2).num_processors == 8

    def test_torus_shape(self):
        t = Architecture(k=3).torus
        assert (t.kx, t.ky) == (3, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Architecture(k=0)
        with pytest.raises(ValueError):
            Architecture(memory_latency=-1)
        with pytest.raises(ValueError):
            Architecture(switch_delay=-0.5)
        with pytest.raises(ValueError):
            Architecture(context_switch=-1)
        with pytest.raises(ValueError):
            Architecture(ky=0)  # only -1 (square) or >= 1 makes a machine
        assert Architecture(ky=-1).ky == -1

    def test_validation_errors_name_the_field(self):
        """CLI error reporting relies on the field name leading the message."""
        for kwargs, fieldname in [
            ({"k": 0}, "k"),
            ({"ky": 0}, "ky"),
            ({"memory_latency": -1}, "memory_latency"),
            ({"switch_delay": -0.5}, "switch_delay"),
            ({"context_switch": -1}, "context_switch"),
            ({"memory_ports": 0}, "memory_ports"),
        ]:
            with pytest.raises(ValueError, match=rf"^{fieldname} "):
                Architecture(**kwargs)

    def test_with_(self):
        a = Architecture().with_(switch_delay=0.0)
        assert a.switch_delay == 0.0
        assert a.memory_latency == 10.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Architecture().k = 8  # type: ignore[misc]

    def test_memory_ports_validated(self):
        with pytest.raises(ValueError):
            Architecture(memory_ports=0)
        assert Architecture(memory_ports=4).memory_ports == 4

    def test_wraparound_selects_topology(self):
        from repro.topology import Mesh2D, Torus2D

        assert isinstance(Architecture(wraparound=True).torus, Torus2D)
        assert isinstance(Architecture(wraparound=False).torus, Mesh2D)

    def test_mesh_same_node_count(self):
        assert Architecture(k=4, wraparound=False).num_processors == 16


class TestWorkload:
    def test_defaults(self):
        w = Workload()
        assert w.num_threads == 8
        assert w.runlength == 10.0
        assert w.p_remote == 0.2
        assert w.pattern == "geometric"

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload(num_threads=0)
        with pytest.raises(ValueError):
            Workload(runlength=0)
        with pytest.raises(ValueError):
            Workload(p_remote=1.5)
        with pytest.raises(ValueError):
            Workload(pattern="zipf")
        with pytest.raises(ValueError):
            Workload(pattern="geometric", p_sw=0.0)

    def test_uniform_ignores_psw_bounds(self):
        # p_sw is irrelevant for uniform, any value accepted
        w = Workload(pattern="uniform", p_sw=0.0)
        assert w.pattern == "uniform"

    def test_with_(self):
        w = Workload().with_(p_remote=0.0)
        assert w.p_remote == 0.0
        assert w.num_threads == 8

    def test_hotspot_fields_validated(self):
        with pytest.raises(ValueError):
            Workload(pattern="hotspot", hot_fraction=1.5)
        with pytest.raises(ValueError):
            Workload(pattern="hotspot", hot_node=-1)
        ok = Workload(pattern="hotspot", hot_node=3, hot_fraction=0.4)
        assert not ok.is_symmetric

    def test_named_patterns_symmetric(self):
        assert Workload(pattern="geometric").is_symmetric
        assert Workload(pattern="uniform").is_symmetric


class TestMMSParams:
    def test_with_routes_to_both(self):
        p = MMSParams().with_(switch_delay=5.0, p_remote=0.4)
        assert p.arch.switch_delay == 5.0
        assert p.workload.p_remote == 0.4

    def test_with_unknown_key(self):
        with pytest.raises(TypeError, match="unknown parameter"):
            MMSParams().with_(bogus=1)

    def test_with_no_changes_is_identity_values(self):
        p = MMSParams()
        q = p.with_()
        assert q == p

    def test_paper_defaults_overrides(self):
        p = paper_defaults(k=6, num_threads=4)
        assert p.arch.k == 6
        assert p.workload.num_threads == 4

    def test_params_hashable(self):
        assert hash(paper_defaults()) == hash(paper_defaults())


class TestDictSerialization:
    """to_dict/from_dict is the canonical form the runner cache hashes."""

    def test_architecture_round_trip(self):
        a = Architecture(k=3, ky=2, memory_ports=2, wraparound=False)
        assert Architecture.from_dict(a.to_dict()) == a

    def test_workload_round_trip(self):
        w = Workload(pattern="hotspot", hot_node=3, hot_fraction=0.4, p_sw=0.9)
        assert Workload.from_dict(w.to_dict()) == w

    def test_mmsparams_round_trip(self):
        p = paper_defaults(k=6, num_threads=4, p_remote=0.35, context_switch=2.0)
        assert MMSParams.from_dict(p.to_dict()) == p

    def test_to_dict_is_json_safe(self):
        import json

        d = paper_defaults().to_dict()
        assert json.loads(json.dumps(d)) == d

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(TypeError, match="unknown"):
            Architecture.from_dict({"k": 4, "bogus": 1})
        with pytest.raises(TypeError, match="unknown"):
            Workload.from_dict({"runlegnth": 10.0})
        with pytest.raises(TypeError, match="unknown"):
            MMSParams.from_dict({"architecture": {}})

    def test_from_dict_validates_values(self):
        with pytest.raises(ValueError):
            Architecture.from_dict({"k": 0})

    def test_from_dict_accepts_partial(self):
        p = MMSParams.from_dict({"workload": {"num_threads": 3}})
        assert p.workload.num_threads == 3
        assert p.arch == Architecture()

    def test_to_dict_normalizes_numpy_scalars(self):
        import json

        import numpy as np

        p = paper_defaults(
            num_threads=np.int64(4), p_remote=np.float64(0.3), k=np.int32(2)
        )
        d = p.to_dict()
        json.dumps(d)  # JSON-safe
        assert type(d["workload"]["num_threads"]) is int
        assert type(d["workload"]["p_remote"]) is float
        # same number, same canonical form as the native-typed point
        assert d == paper_defaults(num_threads=4, p_remote=0.3, k=2).to_dict()
