"""Unit tests for the 2-D torus topology."""

import numpy as np
import pytest

from repro.topology import Torus2D, ring_distance, signed_hop


class TestRingDistance:
    def test_zero_for_same_position(self):
        assert ring_distance(3, 3, 8) == 0

    def test_wraparound_is_shorter(self):
        assert ring_distance(0, 7, 8) == 1

    def test_half_ring(self):
        assert ring_distance(0, 4, 8) == 4

    def test_symmetric(self):
        for a in range(6):
            for b in range(6):
                assert ring_distance(a, b, 6) == ring_distance(b, a, 6)

    def test_invalid_ring_size(self):
        with pytest.raises(ValueError):
            ring_distance(0, 1, 0)


class TestSignedHop:
    def test_zero_for_same(self):
        assert signed_hop(2, 2, 5) == 0

    def test_forward(self):
        assert signed_hop(0, 1, 5) == 1

    def test_backward_via_wraparound(self):
        assert signed_hop(0, 4, 5) == -1

    def test_tie_breaks_positive(self):
        # distance exactly k/2 on an even ring
        assert signed_hop(0, 2, 4) == 1

    def test_stepping_reaches_target(self):
        k = 7
        for a in range(k):
            for b in range(k):
                x, steps = a, 0
                while x != b:
                    x = (x + signed_hop(x, b, k)) % k
                    steps += 1
                    assert steps <= k
                assert steps == ring_distance(a, b, k)


class TestTorusBasics:
    def test_square_shortcut(self):
        t = Torus2D(4)
        assert (t.kx, t.ky) == (4, 4)
        assert t.num_nodes == 16

    def test_rectangular(self):
        t = Torus2D(4, 2)
        assert t.num_nodes == 8

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Torus2D(0)
        with pytest.raises(ValueError):
            Torus2D(3, -2)

    def test_coords_roundtrip(self):
        t = Torus2D(5, 3)
        for n in range(t.num_nodes):
            x, y = t.coords(n)
            assert t.node_at(x, y) == n

    def test_coords_out_of_range(self):
        with pytest.raises(ValueError):
            Torus2D(3).coords(9)
        with pytest.raises(ValueError):
            Torus2D(3).coords(-1)

    def test_node_at_wraps(self):
        t = Torus2D(4)
        assert t.node_at(4, 0) == t.node_at(0, 0)
        assert t.node_at(-1, 0) == t.node_at(3, 0)


class TestDistances:
    def test_distance_matrix_symmetric(self):
        t = Torus2D(4)
        d = t.distance_matrix
        assert np.array_equal(d, d.T)

    def test_distance_matrix_zero_diagonal(self):
        t = Torus2D(5)
        assert np.all(np.diag(t.distance_matrix) == 0)

    def test_distance_matches_matrix(self):
        t = Torus2D(3, 4)
        for s in range(t.num_nodes):
            for d in range(t.num_nodes):
                assert t.distance(s, d) == t.distance_matrix[s, d]

    def test_max_distance_4x4(self):
        assert Torus2D(4).max_distance == 4

    def test_max_distance_odd(self):
        assert Torus2D(5).max_distance == 4

    def test_distance_counts_4x4(self):
        # derived by hand: ring-distance multiplicities {0:1, 1:2, 2:1} per dim
        counts = Torus2D(4).distance_counts
        assert counts.tolist() == [1, 4, 6, 4, 1]

    def test_distance_counts_sum_to_p(self):
        for k in (2, 3, 4, 5):
            t = Torus2D(k)
            assert t.distance_counts.sum() == t.num_nodes

    def test_vertex_transitivity(self):
        """Every node sees the same distance histogram."""
        t = Torus2D(4, 3)
        ref = np.bincount(t.distance_matrix[0], minlength=t.max_distance + 1)
        for n in range(1, t.num_nodes):
            hist = np.bincount(t.distance_matrix[n], minlength=t.max_distance + 1)
            assert np.array_equal(hist, ref)

    def test_nodes_at_distance(self):
        t = Torus2D(4)
        at1 = t.nodes_at_distance(0, 1)
        assert len(at1) == 4
        for n in at1:
            assert t.distance(0, n) == 1

    def test_triangle_inequality(self):
        t = Torus2D(4)
        d = t.distance_matrix
        for a in range(t.num_nodes):
            for b in range(t.num_nodes):
                for c in range(0, t.num_nodes, 5):
                    assert d[a, c] <= d[a, b] + d[b, c]


class TestNeighbors:
    def test_four_neighbors_on_large_torus(self):
        t = Torus2D(4)
        for n in range(t.num_nodes):
            assert len(t.neighbors(n)) == 4

    def test_neighbors_at_distance_one(self):
        t = Torus2D(5)
        for nb in t.neighbors(7):
            assert t.distance(7, nb) == 1

    def test_degenerate_2x2(self):
        # on a 2-ring, +1 and -1 coincide
        t = Torus2D(2)
        assert len(t.neighbors(0)) == 2

    def test_single_node(self):
        assert Torus2D(1).neighbors(0) == ()


class TestTranslations:
    def test_translate_identity(self):
        t = Torus2D(4)
        for n in range(t.num_nodes):
            assert t.translate(n, 0) == n

    def test_translate_preserves_distance(self):
        t = Torus2D(4)
        for b in range(t.num_nodes):
            for a in range(t.num_nodes):
                for c in range(0, t.num_nodes, 3):
                    assert t.distance(a, c) == t.distance(
                        t.translate(a, b), t.translate(c, b)
                    )

    def test_translation_table_rows_are_permutations(self):
        t = Torus2D(3)
        table = t.translation_table()
        for row in table:
            assert sorted(row.tolist()) == list(range(t.num_nodes))

    def test_translation_group_closure(self):
        t = Torus2D(3)
        # translating by b then by c equals translating by b+c (as nodes)
        for b in range(t.num_nodes):
            for c in range(t.num_nodes):
                bx, by = t.coords(b)
                cx, cy = t.coords(c)
                combined = t.node_at(bx + cx, by + cy)
                for n in range(t.num_nodes):
                    assert t.translate(t.translate(n, b), c) == t.translate(
                        n, combined
                    )
