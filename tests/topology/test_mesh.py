"""Unit tests for the 2-D mesh topology."""

import numpy as np
import pytest

from repro.topology import Mesh2D, Torus2D, inbound_transit_counts, route, route_nodes


class TestMeshBasics:
    def test_square_shortcut(self):
        m = Mesh2D(4)
        assert (m.kx, m.ky) == (4, 4)
        assert m.num_nodes == 16

    def test_invalid(self):
        with pytest.raises(ValueError):
            Mesh2D(0)

    def test_coords_roundtrip(self):
        m = Mesh2D(3, 5)
        for n in range(m.num_nodes):
            x, y = m.coords(n)
            assert m.node_at(x, y) == n

    def test_node_at_no_wrap(self):
        with pytest.raises(ValueError):
            Mesh2D(4).node_at(4, 0)
        with pytest.raises(ValueError):
            Mesh2D(4).node_at(-1, 0)


class TestMeshDistances:
    def test_manhattan(self):
        m = Mesh2D(4)
        assert m.distance(m.node_at(0, 0), m.node_at(3, 3)) == 6

    def test_no_wraparound_shortcut(self):
        """0 -> 3 on a 4-row is 3 hops on a mesh, 1 on a torus."""
        m, t = Mesh2D(4), Torus2D(4)
        assert m.distance(0, 3) == 3
        assert t.distance(0, 3) == 1

    def test_diameter(self):
        assert Mesh2D(4).max_distance == 6
        assert Mesh2D(3, 5).max_distance == 6

    def test_matrix_symmetric_zero_diag(self):
        m = Mesh2D(4)
        d = m.distance_matrix
        assert np.array_equal(d, d.T)
        assert np.all(np.diag(d) == 0)

    def test_not_vertex_transitive(self):
        """Corner and center profiles differ -- the defining asymmetry."""
        m = Mesh2D(4)
        corner = m.distance_counts_from(0)
        center = m.distance_counts_from(m.node_at(1, 1))
        assert not np.array_equal(corner, center)

    def test_mesh_distances_dominate_torus(self):
        m, t = Mesh2D(4), Torus2D(4)
        assert np.all(m.distance_matrix >= t.distance_matrix)


class TestMeshNeighbors:
    def test_corner_has_two(self):
        assert len(Mesh2D(4).neighbors(0)) == 2

    def test_edge_has_three(self):
        m = Mesh2D(4)
        assert len(m.neighbors(m.node_at(1, 0))) == 3

    def test_center_has_four(self):
        m = Mesh2D(4)
        assert len(m.neighbors(m.node_at(1, 1))) == 4


class TestMeshRouting:
    def test_route_length(self):
        m = Mesh2D(4)
        for s in range(m.num_nodes):
            for d in range(m.num_nodes):
                assert len(route(m, s, d)) == m.distance(s, d) + 1

    def test_route_stays_on_grid(self):
        m = Mesh2D(4)
        r = route(m, 0, 15)
        for a, b in zip(r, r[1:]):
            assert m.distance(a, b) == 1

    def test_route_x_first(self):
        m = Mesh2D(4)
        r = route(m, m.node_at(0, 0), m.node_at(2, 2))
        ys = [m.coords(n)[1] for n in r]
        assert ys[:3] == [0, 0, 0]  # x settles before y moves

    def test_route_nodes_excludes_source(self):
        m = Mesh2D(3)
        assert 0 not in route_nodes(m, 0, 8)

    def test_transit_counts(self):
        m = Mesh2D(3)
        c = inbound_transit_counts(m)
        assert np.array_equal(c.sum(axis=2), m.distance_matrix)

    def test_transit_cache_keyed_by_type(self):
        """Torus and mesh of the same shape must not share cache entries."""
        ct = inbound_transit_counts(Torus2D(3))
        cm = inbound_transit_counts(Mesh2D(3))
        assert not np.array_equal(ct, cm)


class TestMeshPatterns:
    def test_geometric_rows_normalized(self):
        from repro.workload import GeometricPattern

        q = GeometricPattern(0.5).module_probability_matrix(Mesh2D(4))
        assert np.allclose(q.sum(axis=1), 1.0)
        assert np.allclose(np.diag(q), 0.0)

    def test_geometric_davg_larger_on_mesh(self):
        from repro.workload import GeometricPattern

        pat = GeometricPattern(0.5)
        assert pat.d_avg(Mesh2D(4)) > pat.d_avg(Torus2D(4))

    def test_uniform_davg_on_mesh(self):
        from repro.workload import UniformPattern

        # mean pairwise Manhattan distance on a 4x4 grid over remote pairs
        m = Mesh2D(4)
        d = m.distance_matrix
        expected = d.sum() / (16 * 15)
        assert UniformPattern().d_avg(m) == pytest.approx(expected)


class TestMeshModel:
    def test_auto_uses_amva(self):
        from repro.core import MMSModel
        from repro.params import paper_defaults

        perf = MMSModel(paper_defaults(k=2, wraparound=False)).solve()
        assert perf.method == "amva"
        assert perf.converged

    def test_symmetric_solver_rejected(self):
        from repro.core import MMSModel
        from repro.params import paper_defaults

        with pytest.raises(ValueError, match="vertex transitive"):
            MMSModel(paper_defaults(wraparound=False)).solve(method="symmetric")

    def test_torus_beats_mesh(self):
        """Wrap-around halves worst-case distances: the torus tolerates
        strictly better under the same workload."""
        from repro.core import solve
        from repro.params import paper_defaults

        t = solve(paper_defaults(pattern="uniform"))
        m = solve(paper_defaults(pattern="uniform", wraparound=False))
        assert t.processor_utilization > m.processor_utilization
        assert m.s_obs > t.s_obs

    def test_mesh_simulation_agrees_with_model(self):
        from repro.core import MMSModel
        from repro.params import paper_defaults
        from repro.simulation import simulate

        params = paper_defaults(k=2, num_threads=3, wraparound=False, p_remote=0.4)
        perf = MMSModel(params).solve()
        sim = simulate(params, duration=25_000.0, seed=23)
        assert sim.processor_utilization == pytest.approx(
            perf.processor_utilization, rel=0.06
        )
        assert sim.s_obs == pytest.approx(perf.s_obs, rel=0.12)
