"""Unit tests for dimension-ordered torus routing."""

import numpy as np
import pytest

from repro.topology import (
    Torus2D,
    inbound_transit_counts,
    path_length,
    route,
    route_nodes,
)


class TestRoute:
    def test_self_route(self):
        t = Torus2D(4)
        assert route(t, 5, 5) == (5,)

    def test_endpoints(self):
        t = Torus2D(4)
        r = route(t, 0, 10)
        assert r[0] == 0 and r[-1] == 10

    def test_length_equals_distance(self):
        t = Torus2D(4)
        for s in range(t.num_nodes):
            for d in range(t.num_nodes):
                assert len(route(t, s, d)) == t.distance(s, d) + 1

    def test_consecutive_nodes_are_neighbors(self):
        t = Torus2D(4)
        for s in range(t.num_nodes):
            for d in range(t.num_nodes):
                r = route(t, s, d)
                for a, b in zip(r, r[1:]):
                    assert t.distance(a, b) == 1

    def test_x_before_y(self):
        """Dimension order: the x coordinate settles before y moves."""
        t = Torus2D(4)
        r = route(t, t.node_at(0, 0), t.node_at(2, 2))
        xs = [t.coords(n)[0] for n in r]
        ys = [t.coords(n)[1] for n in r]
        # y stays constant while x changes
        first_y_move = next(i for i, y in enumerate(ys) if y != ys[0])
        assert xs[first_y_move - 1] == 2  # x already at destination column

    def test_wraparound_route(self):
        t = Torus2D(4)
        r = route(t, t.node_at(3, 0), t.node_at(0, 0))
        assert len(r) == 2  # one hop via the wrap link

    def test_deterministic(self):
        t = Torus2D(5)
        assert route(t, 1, 18) == route(t, 1, 18)

    def test_invalid_nodes(self):
        t = Torus2D(3)
        with pytest.raises(ValueError):
            route(t, 0, 99)


class TestRouteNodes:
    def test_excludes_source(self):
        t = Torus2D(4)
        rn = route_nodes(t, 0, 10)
        assert 0 not in rn

    def test_includes_destination(self):
        t = Torus2D(4)
        assert route_nodes(t, 0, 10)[-1] == 10

    def test_empty_for_self(self):
        t = Torus2D(4)
        assert route_nodes(t, 3, 3) == ()

    def test_count_equals_distance(self):
        t = Torus2D(4)
        for s in range(t.num_nodes):
            for d in range(t.num_nodes):
                assert len(route_nodes(t, s, d)) == t.distance(s, d)


class TestPathLength:
    def test_matches_distance(self):
        t = Torus2D(3, 5)
        for s in range(t.num_nodes):
            for d in range(t.num_nodes):
                assert path_length(t, s, d) == t.distance(s, d)


class TestTransitCounts:
    def test_shape(self):
        t = Torus2D(3)
        c = inbound_transit_counts(t)
        assert c.shape == (9, 9, 9)

    def test_row_sums_equal_distance(self):
        t = Torus2D(4)
        c = inbound_transit_counts(t)
        d = t.distance_matrix
        assert np.array_equal(c.sum(axis=2), d)

    def test_zero_one_valued(self):
        c = inbound_transit_counts(Torus2D(4))
        assert c.min() == 0 and c.max() == 1

    def test_source_never_transited(self):
        t = Torus2D(4)
        c = inbound_transit_counts(t)
        for s in range(t.num_nodes):
            assert c[s, :, s].sum() == 0

    def test_destination_always_transited(self):
        t = Torus2D(4)
        c = inbound_transit_counts(t)
        for s in range(t.num_nodes):
            for d in range(t.num_nodes):
                if s != d:
                    assert c[s, d, d] == 1

    def test_cache_returns_same_object(self):
        a = inbound_transit_counts(Torus2D(3))
        b = inbound_transit_counts(Torus2D(3))
        assert a is b

    def test_translation_symmetry(self):
        """Transit counts are invariant under torus translations."""
        t = Torus2D(4)
        c = inbound_transit_counts(t)
        b = 5  # arbitrary translation
        for s in range(t.num_nodes):
            for d in range(t.num_nodes):
                ts, td = t.translate(s, b), t.translate(d, b)
                for n in range(t.num_nodes):
                    assert c[s, d, n] == c[ts, td, t.translate(n, b)]
