"""Unit tests for distance-profile utilities (paper-quoted values)."""

import numpy as np
import pytest

from repro.topology import (
    Torus2D,
    average_distance,
    geometric_davg_asymptote,
    geometric_distance_pmf,
    uniform_distance_pmf,
)


class TestGeometricPmf:
    def test_normalized(self):
        pmf = geometric_distance_pmf(Torus2D(4), 0.5)
        assert pmf.sum() == pytest.approx(1.0)

    def test_no_mass_at_zero(self):
        pmf = geometric_distance_pmf(Torus2D(4), 0.5)
        assert pmf[0] == 0.0

    def test_geometric_ratio(self):
        pmf = geometric_distance_pmf(Torus2D(4), 0.5)
        for h in range(1, len(pmf) - 1):
            assert pmf[h + 1] / pmf[h] == pytest.approx(0.5)

    def test_paper_davg_4x4(self):
        """The paper's headline value: d_avg = 1.733 at p_sw = 0.5 on 4x4."""
        pmf = geometric_distance_pmf(Torus2D(4), 0.5)
        assert average_distance(pmf) == pytest.approx(1.7333333, abs=1e-6)

    def test_low_psw_means_high_locality(self):
        t = Torus2D(6)
        d_low = average_distance(geometric_distance_pmf(t, 0.1))
        d_high = average_distance(geometric_distance_pmf(t, 0.9))
        assert d_low < d_high

    def test_psw_one_is_uniform_over_distances(self):
        pmf = geometric_distance_pmf(Torus2D(4), 1.0)
        nz = pmf[1:]
        assert np.allclose(nz, nz[0])

    def test_invalid_psw(self):
        with pytest.raises(ValueError):
            geometric_distance_pmf(Torus2D(4), 0.0)
        with pytest.raises(ValueError):
            geometric_distance_pmf(Torus2D(4), 1.5)

    def test_single_node_raises(self):
        with pytest.raises(ValueError):
            geometric_distance_pmf(Torus2D(1), 0.5)


class TestUniformPmf:
    def test_normalized(self):
        pmf = uniform_distance_pmf(Torus2D(4))
        assert pmf.sum() == pytest.approx(1.0)

    def test_proportional_to_counts(self):
        t = Torus2D(4)
        pmf = uniform_distance_pmf(t)
        counts = t.distance_counts
        # 15 remote modules on a 4x4
        assert pmf[1] == pytest.approx(counts[1] / 15)
        assert pmf[2] == pytest.approx(counts[2] / 15)

    def test_davg_grows_with_machine(self):
        davg = [
            average_distance(uniform_distance_pmf(Torus2D(k))) for k in (2, 4, 8, 10)
        ]
        assert davg == sorted(davg)
        # the paper quotes ~5 at k=10 for uniform
        assert davg[-1] == pytest.approx(5.05, abs=0.1)


class TestAsymptote:
    def test_value_at_half(self):
        """Paper, Section 7: d_avg -> 2 for p_sw = 0.5."""
        assert geometric_davg_asymptote(0.5) == pytest.approx(2.0)

    def test_convergence_with_k(self):
        target = geometric_davg_asymptote(0.5)
        davg_10 = average_distance(geometric_distance_pmf(Torus2D(10), 0.5))
        davg_4 = average_distance(geometric_distance_pmf(Torus2D(4), 0.5))
        assert abs(davg_10 - target) < abs(davg_4 - target)
        assert davg_10 == pytest.approx(target, abs=0.01)

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            geometric_davg_asymptote(1.0)
        with pytest.raises(ValueError):
            geometric_davg_asymptote(0.0)


class TestAverageDistance:
    def test_point_mass(self):
        pmf = np.array([0.0, 0.0, 1.0])
        assert average_distance(pmf) == 2.0

    def test_mixture(self):
        pmf = np.array([0.0, 0.5, 0.5])
        assert average_distance(pmf) == 1.5
