"""MMS simulator extensions: ports, priority, buffers, pipelining, credits."""

import pytest

from repro.core import MMSModel
from repro.params import paper_defaults
from repro.simulation import MMSSimulation


class TestMultiportedMemory:
    def test_model_and_sim_agree(self):
        params = paper_defaults(memory_ports=2, p_remote=0.3, runlength=5.0)
        perf = MMSModel(params).solve()
        sim = MMSSimulation(params, seed=5).run(25_000.0)
        assert sim.processor_utilization == pytest.approx(
            perf.processor_utilization, rel=0.06
        )

    def test_ports_help_when_memory_bound(self):
        base = paper_defaults(runlength=5.0, p_remote=0.1)
        one = MMSSimulation(base, seed=5).run(12_000.0)
        two = MMSSimulation(base.with_(memory_ports=2), seed=5).run(12_000.0)
        assert two.processor_utilization > one.processor_utilization
        assert two.l_obs < one.l_obs


class TestLocalPriority:
    def test_local_latency_shrinks(self):
        params = paper_defaults(p_remote=0.4)
        fcfs = MMSSimulation(params, seed=6).run(15_000.0)
        prio = MMSSimulation(params, seed=6, local_priority=True).run(15_000.0)
        assert prio.l_obs_local < fcfs.l_obs_local

    def test_remote_latency_pays(self):
        params = paper_defaults(p_remote=0.4)
        fcfs = MMSSimulation(params, seed=6).run(15_000.0)
        prio = MMSSimulation(params, seed=6, local_priority=True).run(15_000.0)
        assert prio.l_obs_remote > fcfs.l_obs_remote * 0.98

    def test_throughput_roughly_preserved(self):
        """Non-preemptive priorities are work conserving."""
        params = paper_defaults(p_remote=0.4)
        fcfs = MMSSimulation(params, seed=6).run(15_000.0)
        prio = MMSSimulation(params, seed=6, local_priority=True).run(15_000.0)
        assert prio.access_rate == pytest.approx(fcfs.access_rate, rel=0.05)


class TestFiniteBuffers:
    def test_light_load_unaffected(self):
        params = paper_defaults(p_remote=0.2, num_threads=1)
        inf = MMSSimulation(params, seed=7).run(10_000.0)
        fin = MMSSimulation(params, seed=7, switch_capacity=8).run(10_000.0)
        assert fin.s_obs == pytest.approx(inf.s_obs, rel=0.05)

    def test_deadlock_detected(self):
        """Raw transfer blocking on a torus (no virtual channels) deadlocks
        under load -- the simulator must say so, not hang or lie."""
        params = paper_defaults(p_remote=0.5, num_threads=10)
        with pytest.raises(RuntimeError, match="deadlock"):
            MMSSimulation(params, seed=7, switch_capacity=3).run(10_000.0)

    def test_incompatible_with_pipelining(self):
        with pytest.raises(ValueError):
            MMSSimulation(
                paper_defaults(), switch_capacity=4, switch_pipeline_depth=2
            )


class TestInjectionCredits:
    def test_sobs_saturates_with_threads(self):
        """Footnote 3: with finite buffering (here: end-to-end credits),
        S_obs saturates in n_t instead of growing linearly."""
        params = paper_defaults(p_remote=0.4)
        s_capped = [
            MMSSimulation(
                params.with_(num_threads=nt), seed=3, max_outstanding_remote=2
            )
            .run(8_000.0)
            .s_obs
            for nt in (4, 8, 16)
        ]
        s_free = [
            MMSSimulation(params.with_(num_threads=nt), seed=3).run(8_000.0).s_obs
            for nt in (4, 8, 16)
        ]
        # capped: flat; uncapped: still climbing
        assert s_capped[2] < 1.2 * s_capped[0]
        assert s_free[2] > 2.0 * s_free[0]

    def test_credits_bound_outstanding(self):
        sim = MMSSimulation(
            paper_defaults(p_remote=0.5, num_threads=8),
            seed=4,
            max_outstanding_remote=3,
        )
        sim.run(5_000.0)
        for node in range(16):
            assert 0 <= sim._credits[node] <= 3

    def test_invalid_credits(self):
        with pytest.raises(ValueError):
            MMSSimulation(paper_defaults(), max_outstanding_remote=0)


class TestPipelinedSwitches:
    def test_light_load_benefits(self):
        """Below saturation, pipelining cuts the observed network latency."""
        params = paper_defaults(p_remote=0.2, num_threads=2)
        plain = MMSSimulation(params, seed=8).run(15_000.0)
        piped = MMSSimulation(params, seed=8, switch_pipeline_depth=4).run(
            15_000.0
        )
        assert piped.s_obs < plain.s_obs

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            MMSSimulation(paper_defaults(), switch_pipeline_depth=0)
