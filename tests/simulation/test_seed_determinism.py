"""Seed determinism of the discrete-event simulator.

The validation pipeline (Figure 11) and the golden fixtures rely on
simulation results being a pure function of ``(params, duration, seed)``:
the same seed must reproduce every statistic bitwise, and different seeds
must actually change the sample path.
"""

import dataclasses

from repro.params import paper_defaults
from repro.simulation import simulate

POINT = paper_defaults(k=2, num_threads=2, p_remote=0.3)
DURATION = 2_000.0


def _stat_fields(result) -> dict[str, object]:
    out = {}
    for f in dataclasses.fields(result):
        if f.name == "params":
            continue
        out[f.name] = getattr(result, f.name)
    return out


class TestSeedDeterminism:
    def test_same_seed_bitwise_identical(self):
        a = simulate(POINT, duration=DURATION, seed=7)
        b = simulate(POINT, duration=DURATION, seed=7)
        assert _stat_fields(a) == _stat_fields(b)

    def test_same_seed_identical_across_distributions(self):
        a = simulate(POINT, duration=DURATION, seed=3, memory_dist="deterministic")
        b = simulate(POINT, duration=DURATION, seed=3, memory_dist="deterministic")
        assert _stat_fields(a) == _stat_fields(b)

    def test_different_seeds_differ(self):
        a = simulate(POINT, duration=DURATION, seed=0)
        b = simulate(POINT, duration=DURATION, seed=1)
        assert _stat_fields(a) != _stat_fields(b)
        # the headline measures themselves should move, not just counters
        assert a.summary() != b.summary()

    def test_params_identical_to_input(self):
        a = simulate(POINT, duration=DURATION, seed=5)
        assert a.params == POINT
