"""Unit and statistical tests for the MMS discrete-event simulator."""

import pytest

from repro.core import MMSModel
from repro.params import paper_defaults
from repro.simulation import MMSSimulation, simulate


@pytest.fixture(scope="module")
def default_result():
    return simulate(paper_defaults(), duration=20_000.0, seed=5)


class TestMechanics:
    def test_cycles_counted(self, default_result):
        assert default_result.cycles > 0

    def test_remote_share_of_messages(self, default_result):
        """~p_remote of accesses are remote."""
        frac = default_result.remote_messages / default_result.cycles
        assert frac == pytest.approx(0.2, abs=0.02)

    def test_duration_recorded(self, default_result):
        assert default_result.duration == pytest.approx(20_000.0)

    def test_utilizations_are_fractions(self, default_result):
        for u in (
            default_result.processor_utilization,
            default_result.memory_utilization,
            default_result.inbound_utilization,
            default_result.outbound_utilization,
        ):
            assert 0.0 <= u <= 1.0

    def test_reproducible(self):
        params = paper_defaults(k=2, num_threads=2)
        a = simulate(params, duration=5000.0, seed=9)
        b = simulate(params, duration=5000.0, seed=9)
        assert a.processor_utilization == b.processor_utilization
        assert a.cycles == b.cycles

    def test_seed_changes_trajectory(self):
        params = paper_defaults(k=2, num_threads=2)
        a = simulate(params, duration=5000.0, seed=1)
        b = simulate(params, duration=5000.0, seed=2)
        assert a.cycles != b.cycles

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            simulate(paper_defaults(), duration=0.0)

    def test_local_only_no_network(self):
        res = simulate(paper_defaults(p_remote=0.0), duration=5000.0)
        assert res.remote_messages == 0
        assert res.lambda_net == 0.0
        assert res.s_obs == 0.0
        assert res.inbound_utilization == 0.0

    def test_summary_keys(self, default_result):
        assert set(default_result.summary()) == {
            "U_p",
            "lambda_net",
            "S_obs",
            "L_obs",
            "access_rate",
        }


class TestAgainstAnalyticalModel:
    """The paper's validation bar: lambda_net within ~2%, S_obs within ~5%.

    We allow slightly wider bands since horizons here are kept short for test
    speed; the benchmark harness runs the full comparison."""

    @pytest.mark.parametrize(
        "overrides",
        [
            {"p_remote": 0.5},
            {"p_remote": 0.2},
            {"p_remote": 0.5, "switch_delay": 20.0},
            {"p_remote": 0.3, "num_threads": 4},
        ],
    )
    def test_headline_measures(self, overrides):
        params = paper_defaults(**overrides)
        perf = MMSModel(params).solve()
        sim = simulate(params, duration=25_000.0, seed=3)
        assert sim.processor_utilization == pytest.approx(
            perf.processor_utilization, rel=0.05
        )
        assert sim.lambda_net == pytest.approx(perf.lambda_net, rel=0.06)
        assert sim.s_obs == pytest.approx(perf.s_obs, rel=0.10)
        assert sim.l_obs == pytest.approx(perf.l_obs, rel=0.10)

    def test_deterministic_memory_service(self):
        """Paper, Section 8: swapping the memory service law to deterministic
        moves S_obs by < ~10%."""
        params = paper_defaults(p_remote=0.5)
        exp = simulate(params, duration=20_000.0, seed=4)
        det = simulate(params, duration=20_000.0, seed=4, memory_dist="deterministic")
        assert det.s_obs == pytest.approx(exp.s_obs, rel=0.10)

    def test_utilization_rises_with_threads(self):
        u = [
            simulate(
                paper_defaults(num_threads=n), duration=10_000.0, seed=6
            ).processor_utilization
            for n in (1, 4, 12)
        ]
        assert u[0] < u[1] < u[2]

    def test_context_switch_overhead_counted(self):
        params = paper_defaults(context_switch=5.0, p_remote=0.0)
        sim = simulate(params, duration=10_000.0, seed=7)
        perf = MMSModel(params).solve()
        assert sim.processor_utilization == pytest.approx(
            perf.processor_utilization, rel=0.05
        )


class TestClassApi:
    def test_run_twice_not_supported_semantics(self):
        """A simulation object is single-shot; a second run continues the
        trajectory rather than restarting (documented behaviour)."""
        sim = MMSSimulation(paper_defaults(k=2, num_threads=2), seed=0)
        first = sim.run(duration=2000.0)
        assert first.cycles > 0

    def test_warmup_override(self):
        res = simulate(paper_defaults(k=2), duration=3000.0, warmup=500.0)
        assert res.duration == pytest.approx(3000.0)
