"""Unit tests for the FCFS station."""

import pytest

from repro.simulation import Engine, FCFSServer


def make(mean=2.0, dist="deterministic", overhead=0.0):
    eng = Engine(seed=0)
    return eng, FCFSServer(eng, mean, dist, "st", overhead=overhead)


class TestFCFSOrder:
    def test_single_job(self):
        eng, st = make()
        done = []
        st.arrive("j1", done.append)
        eng.run_until(10.0)
        assert done == ["j1"]
        assert st.completions == 1

    def test_fcfs_ordering(self):
        eng, st = make()
        done = []
        for j in ("a", "b", "c"):
            st.arrive(j, done.append)
        eng.run_until(100.0)
        assert done == ["a", "b", "c"]

    def test_completion_times_serialized(self):
        eng, st = make(mean=3.0)
        times = []
        for j in range(3):
            st.arrive(j, lambda _: times.append(eng.now))
        eng.run_until(100.0)
        assert times == [3.0, 6.0, 9.0]

    def test_queue_length(self):
        eng, st = make()
        for j in range(4):
            st.arrive(j, lambda _: None)
        assert st.queue_length == 3  # one in service
        assert st.busy

    def test_idle_after_drain(self):
        eng, st = make()
        st.arrive("x", lambda _: None)
        eng.run_until(10.0)
        assert not st.busy
        assert st.queue_length == 0


class TestBusyAccounting:
    def test_busy_time(self):
        eng, st = make(mean=2.0)
        st.arrive("a", lambda _: None)
        st.arrive("b", lambda _: None)
        eng.run_until(100.0)
        assert st.busy_time == pytest.approx(4.0)

    def test_busy_time_until_includes_in_progress(self):
        eng, st = make(mean=10.0)
        st.arrive("a", lambda _: None)
        eng.run_until(4.0)
        assert st.busy_time_until(4.0) == pytest.approx(4.0)

    def test_reset_accounting(self):
        eng, st = make(mean=2.0)
        st.arrive("a", lambda _: None)
        eng.run_until(10.0)
        st.reset_accounting(10.0)
        assert st.busy_time == 0.0
        assert st.completions == 0

    def test_reset_mid_service_counts_remainder_only(self):
        eng, st = make(mean=10.0)
        st.arrive("a", lambda _: None)
        eng.run_until(4.0)
        st.reset_accounting(4.0)
        eng.run_until(20.0)
        assert st.busy_time == pytest.approx(6.0)


class TestOverheadAndOverrides:
    def test_overhead_added(self):
        eng, st = make(mean=2.0, overhead=1.0)
        times = []
        st.arrive("a", lambda _: times.append(eng.now))
        eng.run_until(10.0)
        assert times == [3.0]

    def test_per_arrival_mean_override(self):
        eng, st = make(mean=2.0)
        times = []
        st.arrive("a", lambda _: times.append(eng.now), mean=5.0)
        eng.run_until(10.0)
        assert times == [5.0]

    def test_zero_service_completes_immediately(self):
        eng, st = make(mean=0.0)
        done = []
        st.arrive("a", done.append)
        eng.run_until(0.0)
        assert done == ["a"]


class TestUtilizationStatistics:
    def test_mm1_like_utilization(self):
        """Closed single-station loop: server busy whenever a job exists."""
        eng = Engine(seed=3)
        st = FCFSServer(eng, 1.0, "exponential")

        def requeue(job):
            st.arrive(job, requeue)

        st.arrive("perpetual", requeue)
        eng.run_until(500.0)
        assert st.busy_time_until(500.0) / 500.0 == pytest.approx(1.0, abs=1e-9)
