"""Tests for multi-server, priority, finite-capacity and pipelined stations."""

import pytest

from repro.simulation import Engine
from repro.simulation.stations import (
    FCFSServer,
    PipelinedServer,
    PriorityFCFSServer,
)


class TestMultiServer:
    def test_parallel_service(self):
        eng = Engine()
        st = FCFSServer(eng, 4.0, "deterministic", servers=2)
        times = []
        for j in range(2):
            st.arrive(j, lambda _: times.append(eng.now))
        eng.run_until(10.0)
        assert times == [4.0, 4.0]  # both served concurrently

    def test_third_job_queues(self):
        eng = Engine()
        st = FCFSServer(eng, 4.0, "deterministic", servers=2)
        times = []
        for j in range(3):
            st.arrive(j, lambda _: times.append(eng.now))
        eng.run_until(20.0)
        assert times == [4.0, 4.0, 8.0]

    def test_busy_time_in_server_units(self):
        eng = Engine()
        st = FCFSServer(eng, 4.0, "deterministic", servers=2)
        for j in range(2):
            st.arrive(j, lambda _: None)
        eng.run_until(10.0)
        assert st.busy_time == pytest.approx(8.0)  # 2 servers x 4
        assert st.utilization_until(10.0, 10.0) == pytest.approx(0.4)

    def test_invalid_server_count(self):
        with pytest.raises(ValueError):
            FCFSServer(Engine(), 1.0, servers=0)


class TestPriority:
    def test_high_priority_jumps_queue(self):
        eng = Engine()
        st = PriorityFCFSServer(eng, 2.0, "deterministic", levels=2)
        order = []
        st.arrive("first", lambda j: order.append(j), priority=1)
        st.arrive("low", lambda j: order.append(j), priority=1)
        st.arrive("high", lambda j: order.append(j), priority=0)
        eng.run_until(20.0)
        # "first" is already in service (non-preemptive); "high" overtakes "low"
        assert order == ["first", "high", "low"]

    def test_fcfs_within_level(self):
        eng = Engine()
        st = PriorityFCFSServer(eng, 1.0, "deterministic", levels=2)
        order = []
        st.arrive("a", lambda j: order.append(j), priority=0)
        for j in ("b", "c", "d"):
            st.arrive(j, lambda x: order.append(x), priority=0)
        eng.run_until(10.0)
        assert order == ["a", "b", "c", "d"]

    def test_invalid_priority(self):
        eng = Engine()
        st = PriorityFCFSServer(eng, 1.0, levels=2)
        with pytest.raises(ValueError):
            st.arrive("x", lambda _: None, priority=5)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            PriorityFCFSServer(Engine(), 1.0, levels=0)

    def test_queue_accounting(self):
        eng = Engine()
        st = PriorityFCFSServer(eng, 5.0, "deterministic", levels=3)
        for j in range(4):
            st.arrive(j, lambda _: None, priority=j % 3)
        assert st.queue_length == 3
        assert st.jobs_present == 4


class TestCapacityAndBlocking:
    def test_has_space(self):
        eng = Engine()
        st = FCFSServer(eng, 10.0, "deterministic", capacity=2)
        st.arrive("a", lambda _: None)
        assert st.has_space()
        st.arrive("b", lambda _: None)
        assert not st.has_space()

    def test_overflow_raises(self):
        eng = Engine()
        st = FCFSServer(eng, 10.0, "deterministic", capacity=1)
        st.arrive("a", lambda _: None)
        with pytest.raises(RuntimeError, match="full"):
            st.arrive("b", lambda _: None)

    def test_capacity_below_servers_rejected(self):
        with pytest.raises(ValueError):
            FCFSServer(Engine(), 1.0, servers=2, capacity=1)

    def test_space_notification(self):
        eng = Engine()
        st = FCFSServer(eng, 3.0, "deterministic", capacity=1)
        st.arrive("a", lambda _: None)
        woken = []
        st.notify_space(lambda: woken.append(eng.now))
        eng.run_until(10.0)
        assert woken == [3.0]

    def test_blocking_chain(self):
        """Upstream holds a completed job until downstream space frees."""
        eng = Engine()
        down = FCFSServer(eng, 10.0, "deterministic", name="down", capacity=1)
        up = FCFSServer(eng, 1.0, "deterministic", name="up")
        down.arrive("occupier", lambda _: None)  # busy until t=10

        def forward(job):
            if not down.has_space():
                down.notify_space(up.retry_held)
                return False
            down.arrive(job, lambda _: None)
            return None

        up.arrive("blocked-job", forward)
        eng.run_until(5.0)
        assert up.busy  # finished service at t=1 but held
        assert down.jobs_present == 1
        eng.run_until(25.0)
        assert not up.busy
        assert down.completions == 2
        assert up.blocked_time == pytest.approx(9.0)  # held from t=1 to t=10

    def test_held_server_blocks_next_job(self):
        eng = Engine()
        down = FCFSServer(eng, 100.0, "deterministic", name="down", capacity=1)
        up = FCFSServer(eng, 1.0, "deterministic", name="up")
        down.arrive("occupier", lambda _: None)

        def forward(job):
            if not down.has_space():
                down.notify_space(up.retry_held)
                return False
            down.arrive(job, lambda _: None)
            return None

        up.arrive("j1", forward)
        up.arrive("j2", forward)
        eng.run_until(50.0)
        # j1 is held; j2 must not have started service
        assert up.completions == 1
        assert up.queue_length == 1


class TestPipelinedServer:
    def test_throughput_at_initiation_interval(self):
        eng = Engine()
        st = PipelinedServer(eng, 8.0, 2.0, "deterministic")
        times = []
        for j in range(4):
            st.arrive(j, lambda _: times.append(eng.now))
        eng.run_until(50.0)
        # deliveries at latency + k * II
        assert times == [8.0, 10.0, 12.0, 14.0]

    def test_degenerate_equals_fcfs(self):
        """II == latency (deterministic) behaves like a plain FCFS server."""
        eng = Engine()
        st = PipelinedServer(eng, 5.0, 5.0, "deterministic")
        times = []
        for j in range(3):
            st.arrive(j, lambda _: times.append(eng.now))
        eng.run_until(50.0)
        assert times == [5.0, 10.0, 15.0]

    def test_invalid_intervals(self):
        with pytest.raises(ValueError):
            PipelinedServer(Engine(), 2.0, 4.0)
        with pytest.raises(ValueError):
            PipelinedServer(Engine(), -1.0, 0.5)

    def test_slot_utilization(self):
        eng = Engine()
        st = PipelinedServer(eng, 8.0, 2.0, "deterministic")
        for j in range(5):
            st.arrive(j, lambda _: None)
        eng.run_until(100.0)
        # slot busy 5 x 2 = 10 time units
        assert st.busy_time_until(100.0) == pytest.approx(10.0)

    def test_reset_accounting(self):
        eng = Engine()
        st = PipelinedServer(eng, 4.0, 1.0, "deterministic")
        st.arrive("x", lambda _: None)
        eng.run_until(10.0)
        st.reset_accounting(10.0)
        assert st.busy_time == 0.0
        assert st.completions == 0
