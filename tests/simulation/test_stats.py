"""Unit tests for output-analysis statistics."""

import math

import numpy as np
import pytest

from repro.simulation import BatchMeans, RateBatches, Welford, ci_halfwidth


class TestWelford:
    def test_mean(self):
        w = Welford()
        for x in (1.0, 2.0, 3.0):
            w.add(x)
        assert w.mean == pytest.approx(2.0)
        assert w.count == 3

    def test_variance_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5, 2, size=500)
        w = Welford()
        for x in data:
            w.add(float(x))
        assert w.mean == pytest.approx(float(np.mean(data)))
        assert w.variance == pytest.approx(float(np.var(data, ddof=1)))

    def test_variance_degenerate(self):
        w = Welford()
        assert w.variance == 0.0
        w.add(1.0)
        assert w.variance == 0.0
        assert w.std == 0.0

    def test_merge(self):
        data = [1.0, 4.0, 2.0, 8.0, 5.0, 7.0]
        a, b, whole = Welford(), Welford(), Welford()
        for x in data[:3]:
            a.add(x)
        for x in data[3:]:
            b.add(x)
        for x in data:
            whole.add(x)
        a.merge(b)
        assert a.count == whole.count
        assert a.mean == pytest.approx(whole.mean)
        assert a.variance == pytest.approx(whole.variance)

    def test_merge_empty(self):
        a, b = Welford(), Welford()
        a.add(2.0)
        a.merge(b)
        assert a.mean == 2.0
        b.merge(a)
        assert b.mean == 2.0


class TestBatchMeans:
    def test_mean_over_all_observations(self):
        bm = BatchMeans(0.0, 100.0, num_batches=4)
        for t, x in [(10, 1.0), (30, 3.0), (60, 5.0), (90, 7.0)]:
            bm.add(float(t), x)
        assert bm.mean == pytest.approx(4.0)

    def test_out_of_horizon_ignored(self):
        bm = BatchMeans(10.0, 20.0)
        bm.add(5.0, 100.0)
        bm.add(25.0, 100.0)
        assert math.isnan(bm.mean)

    def test_batch_assignment(self):
        bm = BatchMeans(0.0, 10.0, num_batches=2)
        bm.add(1.0, 2.0)
        bm.add(6.0, 4.0)
        assert bm.batch_values() == [2.0, 4.0]

    def test_halfwidth_zero_variance(self):
        bm = BatchMeans(0.0, 10.0, num_batches=5)
        for t in range(10):
            bm.add(t, 3.0)
        assert bm.halfwidth() == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchMeans(10.0, 5.0)
        with pytest.raises(ValueError):
            BatchMeans(0.0, 10.0, num_batches=1)


class TestRateBatches:
    def test_rate(self):
        rb = RateBatches(0.0, 100.0, num_batches=10)
        for t in range(0, 100, 2):  # 50 events in 100 time units
            rb.add(float(t))
        assert rb.rate == pytest.approx(0.5)
        assert rb.total == 50

    def test_uniform_events_tight_ci(self):
        rb = RateBatches(0.0, 100.0, num_batches=10)
        for t in range(100):
            rb.add(float(t))
        assert rb.halfwidth() == pytest.approx(0.0, abs=1e-9)

    def test_out_of_horizon_ignored(self):
        rb = RateBatches(0.0, 10.0)
        rb.add(11.0)
        assert rb.total == 0


class TestCiHalfwidth:
    def test_known_value(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        n = 4
        var = np.var(vals, ddof=1)
        expected = 1.959963984540054 * math.sqrt(var / n)
        assert ci_halfwidth(vals) == pytest.approx(expected)

    def test_insufficient_data(self):
        assert ci_halfwidth([1.0]) == float("inf")
        assert ci_halfwidth([]) == float("inf")
