"""Statistical validation of the DES stations against queueing theory."""

import numpy as np
import pytest

from repro.simulation import Engine, FCFSServer
from repro.simulation.stations import PriorityFCFSServer
from repro.simulation.stats import Welford


def open_mm1(rho: float, service: float, horizon: float, seed: int = 0):
    """Drive a station with Poisson arrivals at utilization ``rho``;
    returns (mean sojourn, measured utilization)."""
    eng = Engine(seed)
    st = FCFSServer(eng, service, "exponential")
    lam = rho / service
    sojourn = Welford()

    def arrival():
        t0 = eng.now
        st.arrive(t0, lambda t_in: sojourn.add(eng.now - t_in))
        eng.schedule(float(eng.rng.exponential(1.0 / lam)), arrival)

    eng.schedule(float(eng.rng.exponential(1.0 / lam)), arrival)
    eng.run_until(horizon)
    return sojourn.mean, st.busy_time_until(horizon) / horizon


class TestMM1:
    def test_sojourn_time(self):
        """M/M/1: E[T] = s / (1 - rho)."""
        mean_t, _ = open_mm1(rho=0.5, service=1.0, horizon=60_000.0)
        assert mean_t == pytest.approx(1.0 / 0.5, rel=0.06)

    def test_utilization(self):
        _, util = open_mm1(rho=0.7, service=2.0, horizon=60_000.0)
        assert util == pytest.approx(0.7, rel=0.04)

    def test_heavy_traffic(self):
        mean_t, util = open_mm1(rho=0.9, service=1.0, horizon=200_000.0)
        assert util == pytest.approx(0.9, rel=0.03)
        assert mean_t == pytest.approx(10.0, rel=0.25)  # high variance regime


class TestMMc:
    def test_mm2_sojourn_closed_form(self):
        """M/M/2 with per-server utilization rho: E[T] = s / (1 - rho^2)."""
        eng = Engine(3)
        st = FCFSServer(eng, 1.0, "exponential", servers=2)
        lam = 0.9  # total arrival rate; per-server rho = lam * s / 2 = 0.45
        sojourn = Welford()

        def arrival():
            t0 = eng.now
            st.arrive(t0, lambda t_in: sojourn.add(eng.now - t_in))
            eng.schedule(float(eng.rng.exponential(1.0 / lam)), arrival)

        eng.schedule(0.0, arrival)
        eng.run_until(100_000.0)
        expected = 1.0 / (1 - 0.45**2)
        assert sojourn.mean == pytest.approx(expected, rel=0.06)

    def test_mm2_utilization(self):
        eng = Engine(4)
        st = FCFSServer(eng, 1.0, "exponential", servers=2)

        def arrival():
            st.arrive(None, lambda _: None)
            eng.schedule(float(eng.rng.exponential(1.0 / 0.9)), arrival)

        eng.schedule(0.0, arrival)
        horizon = 50_000.0
        eng.run_until(horizon)
        assert st.utilization_until(horizon, horizon) == pytest.approx(
            0.45, rel=0.05
        )


class TestNonPreemptivePriorityTheory:
    def test_priority_mean_waits(self):
        """M/M/1 with two non-preemptive priority classes: the class means
        follow the Cobham formulas."""
        eng = Engine(5)
        st = PriorityFCFSServer(eng, 1.0, "exponential", levels=2)
        lam_each = 0.35  # per class; total rho = 0.7
        w_high, w_low = Welford(), Welford()

        def arrival(priority, acc):
            t0 = eng.now
            st.arrive(t0, lambda t_in: acc.add(eng.now - t_in), priority=priority)
            eng.schedule(
                float(eng.rng.exponential(1.0 / lam_each)), arrival, priority, acc
            )

        eng.schedule(0.0, arrival, 0, w_high)
        eng.schedule(0.1, arrival, 1, w_low)
        eng.run_until(150_000.0)

        # Cobham: W0 = R/(1-rho1), W1 = R/((1-rho1)(1-rho)), R = rho*s
        rho1, rho = 0.35, 0.7
        r = rho * 1.0  # mean residual work (exponential: rho * s)
        wq_high = r / (1 - rho1)
        wq_low = r / ((1 - rho1) * (1 - rho))
        assert w_high.mean == pytest.approx(wq_high + 1.0, rel=0.08)
        assert w_low.mean == pytest.approx(wq_low + 1.0, rel=0.08)

    def test_priority_ordering(self):
        """High class always waits less than low class under load."""
        eng = Engine(6)
        st = PriorityFCFSServer(eng, 1.0, "exponential", levels=2)
        acc = [Welford(), Welford()]

        def arrival(priority):
            t0 = eng.now
            st.arrive(
                t0, lambda t_in: acc[priority].add(eng.now - t_in), priority=priority
            )
            eng.schedule(float(eng.rng.exponential(1.0 / 0.4)), arrival, priority)

        eng.schedule(0.0, arrival, 0)
        eng.schedule(0.1, arrival, 1)
        eng.run_until(40_000.0)
        assert acc[0].mean < acc[1].mean


class TestMD1:
    def test_deterministic_service_halves_queueing(self):
        """M/D/1 waiting is half of M/M/1's (Pollaczek-Khinchine)."""
        def run(dist, seed):
            eng = Engine(seed)
            st = FCFSServer(eng, 1.0, dist)
            sojourn = Welford()

            def arrival():
                t0 = eng.now
                st.arrive(t0, lambda t_in: sojourn.add(eng.now - t_in))
                eng.schedule(float(eng.rng.exponential(1.0 / 0.7)), arrival)

            eng.schedule(0.0, arrival)
            eng.run_until(120_000.0)
            return sojourn.mean - 1.0  # waiting = sojourn - service

        wq_mm1 = run("exponential", 7)
        wq_md1 = run("deterministic", 8)
        assert wq_md1 == pytest.approx(0.5 * wq_mm1, rel=0.12)
