"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simulation import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        eng = Engine()
        log = []
        eng.schedule(5.0, log.append, "b")
        eng.schedule(1.0, log.append, "a")
        eng.schedule(9.0, log.append, "c")
        eng.run_until(10.0)
        assert log == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        eng = Engine()
        log = []
        eng.schedule(1.0, log.append, 1)
        eng.schedule(1.0, log.append, 2)
        eng.run_until(2.0)
        assert log == [1, 2]

    def test_now_advances(self):
        eng = Engine()
        seen = []
        eng.schedule(3.0, lambda: seen.append(eng.now))
        eng.run_until(10.0)
        assert seen == [3.0]
        assert eng.now == 10.0

    def test_horizon_respected(self):
        eng = Engine()
        log = []
        eng.schedule(5.0, log.append, "late")
        eng.run_until(4.0)
        assert log == []
        assert eng.pending == 1
        eng.run_until(6.0)
        assert log == ["late"]

    def test_events_at_horizon_run(self):
        eng = Engine()
        log = []
        eng.schedule(5.0, log.append, "x")
        eng.run_until(5.0)
        assert log == ["x"]

    def test_cascading_events(self):
        eng = Engine()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                eng.schedule(1.0, chain, n + 1)

        eng.schedule(0.0, chain, 0)
        eng.run_until(10.0)
        assert log == [0, 1, 2, 3]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1.0, lambda: None)

    def test_peek(self):
        eng = Engine()
        assert eng.peek() == float("inf")
        eng.schedule(2.5, lambda: None)
        assert eng.peek() == 2.5


class TestServiceDraws:
    def test_deterministic(self):
        eng = Engine(seed=1)
        assert eng.draw_service(4.0, "deterministic") == 4.0

    def test_exponential_mean(self):
        eng = Engine(seed=42)
        draws = [eng.draw_service(10.0, "exponential") for _ in range(20000)]
        assert sum(draws) / len(draws) == pytest.approx(10.0, rel=0.05)

    def test_zero_mean(self):
        eng = Engine()
        assert eng.draw_service(0.0, "exponential") == 0.0

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            Engine().draw_service(-1.0, "exponential")

    def test_unknown_dist(self):
        with pytest.raises(ValueError):
            Engine().draw_service(1.0, "weibull")

    def test_reproducible_with_seed(self):
        a = [Engine(seed=7).draw_service(1.0, "exponential") for _ in range(1)]
        b = [Engine(seed=7).draw_service(1.0, "exponential") for _ in range(1)]
        assert a == b
