"""The torus scenario is the pre-registry solver, bitwise.

The registry refactor is only safe if the registered default produces the
exact bytes the old code paths produced: same performance dicts, same
cache payloads, same SHA-256 job keys, same wire payloads.  These tests
pin that conformance point by point.
"""

import hashlib

import pytest

import repro
from repro.core.model import MMSModel
from repro.params import paper_defaults
from repro.runner.spec import JobSpec, canonical_json
from repro.scenarios import HierParams, WorkStealParams, get_scenario

TORUS = get_scenario("torus")

#: a grid spanning the symmetric fast path, AMVA, and asymmetric shapes
GRID = [
    (paper_defaults(), "auto"),
    (paper_defaults(num_threads=1), "auto"),
    (paper_defaults(num_threads=8, p_remote=0.3), "symmetric"),
    (paper_defaults(num_threads=4, p_remote=0.0), "auto"),
    (paper_defaults(num_threads=8, memory_ports=2), "amva"),
    (paper_defaults(num_threads=16, pattern="uniform"), "auto"),
]


class TestSolveBitwise:
    @pytest.mark.parametrize(("params", "method"), GRID)
    def test_scenario_solve_equals_model_solve(self, params, method):
        via_scenario = TORUS.solve(params, method=method)
        via_model = MMSModel(params).solve(method=method)
        assert via_scenario.to_dict() == via_model.to_dict()

    def test_canonical_method_matches_model_selection(self):
        for params, _ in GRID:
            expected = "symmetric" if MMSModel(params).is_symmetric else "amva"
            assert TORUS.canonical_method(params, "auto") == expected

    def test_solve_points_batch_equals_per_point_solve(self):
        points = [paper_defaults(num_threads=n) for n in (1, 2, 4, 8)]
        perfs, _telemetry = TORUS.solve_points(points, method="symmetric")
        for point, perf in zip(points, perfs):
            assert perf.to_dict() == MMSModel(point).solve("symmetric").to_dict()


class TestCacheKeyBitwise:
    @pytest.mark.parametrize(("params", "method"), GRID)
    def test_cache_payload_is_the_pre_registry_formula(self, params, method):
        spec = JobSpec(params=params, method=method)
        canonical = spec.canonical_method()
        payload = TORUS.cache_payload(params, canonical)
        # the exact pre-registry payload: method + params, nothing else
        assert payload == {"method": canonical, "params": params.to_dict()}
        expected_key = hashlib.sha256(
            canonical_json(payload).encode("utf-8")
        ).hexdigest()
        assert spec.key() == expected_key

    def test_key_identical_with_and_without_scenario_argument(self):
        params = paper_defaults(num_threads=8)
        assert (
            JobSpec(params=params).key()
            == JobSpec(params=params, scenario="torus").key()
        )

    def test_torus_wire_payload_has_no_scenario_field(self):
        payload = JobSpec(params=paper_defaults()).payload()
        assert "scenario" not in payload
        assert set(payload) == {"key", "method", "params"}

    @pytest.mark.parametrize(
        "params", [WorkStealParams(), HierParams(clusters=2, cluster_size=2)]
    )
    def test_non_torus_wire_payload_carries_scenario(self, params):
        payload = JobSpec(params=params).payload()
        assert payload["scenario"] in ("worksteal", "hier")

    @pytest.mark.parametrize(
        "params",
        [
            paper_defaults(num_threads=4),
            WorkStealParams(latency=3.0),
            HierParams(clusters=2, cluster_size=2),
        ],
    )
    def test_from_payload_round_trips_key_and_scenario(self, params):
        spec = JobSpec(params=params)
        rebuilt = JobSpec.from_payload(spec.payload())
        assert rebuilt.key() == spec.key()
        assert rebuilt.scenario == spec.scenario
        assert rebuilt.params == spec.params


class TestFacadeConformance:
    def test_facade_solve_routes_through_registered_torus(self):
        params = paper_defaults(num_threads=8, p_remote=0.2)
        assert (
            repro.solve(params, scenario="torus").to_dict()
            == MMSModel(params).solve().to_dict()
        )

    def test_sweep_records_identical_with_explicit_scenario(self):
        axes = {"num_threads": [1, 2, 4], "p_remote": [0.1, 0.3]}
        implicit = repro.sweep(axes, measure="U_p")
        explicit = repro.sweep(axes, measure="U_p", scenario="torus")
        assert implicit == explicit

    def test_sweep_perf_records_match_direct_solve(self):
        records = repro.sweep({"num_threads": [1, 2, 4]})
        for rec in records:
            expected = MMSModel(
                paper_defaults(num_threads=rec["num_threads"])
            ).solve()
            assert rec["perf"].to_dict() == expected.to_dict()
