"""Scenario routing through the coalescing solve service and its HTTP front.

Torus symmetric requests keep batching; every other scenario resolves as
a singleton through its registered solver.  The HTTP body's ``scenario``
key selects the family per request, the server's configured default
applies when the body is silent, and the wire format for old torus
clients is unchanged (no ``scenario`` field in their replies).
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.model import solve as core_solve
from repro.params import ParamError, paper_defaults
from repro.scenarios import (
    ScenarioUnavailableError,
    WorkStealParams,
    get_scenario,
)
from repro.scenarios.hier import HierParams
from repro.serve import ServiceConfig, SolveService, build_server


@pytest.fixture()
def service():
    svc = SolveService(
        ServiceConfig(min_linger_s=0.01, max_linger_s=0.05, adaptive=False)
    )
    yield svc
    svc.close(drain=True)


@pytest.fixture()
def server(service):
    srv = build_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    yield f"http://{host}:{port}"
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


def post(base, body):
    req = urllib.request.Request(
        base + "/solve",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestService:
    def test_worksteal_params_resolve_as_scalar(self, service):
        params = WorkStealParams(num_workers=4, latency=8.0)
        result = service.solve(params)
        expected = get_scenario("worksteal").solve(params)
        assert result.perf.to_dict() == expected.to_dict()
        assert result.batch_width == 1

    def test_scenario_cache_hit_round_trips_perf(self, service):
        params = HierParams(clusters=2, cluster_size=2, num_threads=2)
        cold = service.solve(params)
        warm = service.solve(params)
        assert warm.source in ("memory", "store")
        assert warm.perf.to_dict() == cold.perf.to_dict()

    def test_torus_requests_unchanged(self, service):
        params = paper_defaults(num_threads=4)
        result = service.solve(params, method="symmetric")
        assert result.perf.to_dict() == core_solve(params, "symmetric").to_dict()

    def test_params_scenario_mismatch_rejected(self, service):
        with pytest.raises(ParamError, match="do not belong"):
            service.solve(paper_defaults(), scenario="worksteal")

    def test_config_rejects_unknown_scenario(self):
        with pytest.raises(ScenarioUnavailableError, match="bogus"):
            ServiceConfig(scenario="bogus")

    def test_config_accepts_registered_scenario(self):
        assert ServiceConfig(scenario="worksteal").scenario == "worksteal"


class TestHTTP:
    def test_body_scenario_key_selects_family(self, server):
        status, body = post(
            server,
            {
                "scenario": "worksteal",
                "point": {"num_workers": 2, "latency": 0.0},
            },
        )
        assert status == 200 and body["ok"]
        assert body["scenario"] == "worksteal"
        expected = get_scenario("worksteal").solve(
            WorkStealParams(num_workers=2, latency=0.0)
        )
        assert body["perf"] == expected.to_dict()

    def test_nested_scenario_params_payload(self, server):
        params = HierParams(clusters=2, cluster_size=2, num_threads=2)
        status, body = post(
            server, {"scenario": "hier", "params": params.to_dict()}
        )
        assert status == 200
        assert body["scenario"] == "hier"
        assert body["perf"] == get_scenario("hier").solve(params).to_dict()

    def test_torus_reply_has_no_scenario_field(self, server):
        status, body = post(server, {"point": {"num_threads": 4}})
        assert status == 200
        assert "scenario" not in body

    def test_unknown_scenario_is_bad_request(self, server):
        status, body = post(server, {"scenario": "bogus", "point": {}})
        assert status == 400
        assert body["ok"] is False
        assert "unknown scenario 'bogus'" in body["detail"]

    def test_foreign_field_in_point_names_scenario(self, server):
        status, body = post(
            server, {"scenario": "worksteal", "point": {"num_threads": 4}}
        )
        assert status == 400
        assert "scenario 'worksteal'" in body["detail"]

    def test_server_default_scenario_applies_to_silent_bodies(self):
        svc = SolveService(
            ServiceConfig(
                min_linger_s=0.01,
                max_linger_s=0.05,
                adaptive=False,
                scenario="worksteal",
            )
        )
        srv = build_server("127.0.0.1", 0, svc)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        host, port = srv.server_address[:2]
        try:
            status, body = post(
                f"http://{host}:{port}", {"point": {"latency": 0.0}}
            )
            assert status == 200
            assert body["scenario"] == "worksteal"
            assert body["perf"]["measures"]["efficiency"] == 1.0
        finally:
            srv.shutdown()
            srv.server_close()
            svc.close(drain=True)
            thread.join(timeout=5)
