"""Scenario-suite isolation: no test leaks a scenario default.

Every test in this package runs with ``REPRO_SCENARIO`` unset and the
process-global ``configure(scenario=...)`` default cleared, then restored
afterwards -- scenario selection is process-global state, and leaking it
would silently re-route every later torus-implicit test.
"""

import pytest

from repro.scenarios import set_default_scenario


@pytest.fixture(autouse=True)
def _isolated_scenario_default(monkeypatch):
    monkeypatch.delenv("REPRO_SCENARIO", raising=False)
    prev = set_default_scenario(None)
    yield
    set_default_scenario(prev)
