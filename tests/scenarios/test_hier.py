"""Mesh-of-clusters with mixed link speeds (Kanrar & Siraj, arXiv:1110.3597).

The hier scenario solves a multi-class closed network -- one class per
processor over [procs][mems][intra links][gateways] -- with the full
Bard-Schweitzer AMVA.  The physics pinned here: visit conservation,
latency-hiding with more threads, degradation with slower gateways, and
degenerate shapes (single cluster, single processor) collapsing cleanly.
"""

import numpy as np
import pytest

import repro
from repro.params import ParamError
from repro.scenarios import ScenarioPerformance, get_scenario
from repro.scenarios.hier import HierParams, _routing, build_network

HIER = get_scenario("hier")

#: small machine: 2 clusters x 2 processors, quick to solve exactly enough
SMALL = HierParams(clusters=2, cluster_size=2, num_threads=4)


class TestParams:
    def test_defaults_validate(self):
        params = HierParams()
        assert params.num_processors == 16

    @pytest.mark.parametrize(
        "bad",
        [
            {"clusters": 0},
            {"cluster_size": -1},
            {"num_threads": 0},
            {"runlength": 0.0},
            {"p_remote": 1.5},
            {"p_intra": -0.1},
            {"memory_latency": -1.0},
            {"inter_delay": -2.0},
            {"memory_ports": 0},
        ],
    )
    def test_invalid_values_raise_param_error(self, bad):
        with pytest.raises(ParamError):
            HierParams(**bad)

    def test_round_trips_through_dict(self):
        params = HierParams(clusters=3, cluster_size=2, inter_delay=40.0)
        assert HierParams.from_dict(params.to_dict()) == params

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TypeError, match="unknown hier parameter"):
            HierParams.from_dict({"clusters": 2, "torus_k": 4})


class TestNetwork:
    def test_station_layout_shape(self):
        net = build_network(SMALL)
        n_proc = SMALL.num_processors
        assert net.visits.shape == (n_proc, 3 * n_proc + SMALL.clusters)

    def test_memory_visits_conserve_one_access_per_cycle(self):
        net = build_network(SMALL)
        n_proc = SMALL.num_processors
        mem = slice(n_proc, 2 * n_proc)
        for j in range(n_proc):
            assert net.visits[j, j] == 1.0  # own processor
            assert net.visits[j, mem].sum() == pytest.approx(1.0)

    def test_gateway_visits_count_both_crossings(self):
        net = build_network(SMALL)
        n_proc = SMALL.num_processors
        _p_rem, _intra, inter = _routing(SMALL)
        gates = net.visits[0, 3 * n_proc :]
        # source gateway + destination gateways, request and reply each
        assert gates.sum() == pytest.approx(4.0 * inter)

    def test_single_cluster_has_no_gateway_traffic(self):
        net = build_network(HierParams(clusters=1, cluster_size=4))
        n_proc = 4
        assert np.all(net.visits[:, 3 * n_proc :] == 0.0)

    def test_single_processor_has_no_remote_traffic(self):
        p_rem, intra, inter = _routing(HierParams(clusters=1, cluster_size=1))
        assert (p_rem, intra, inter) == (0.0, 0.0, 0.0)


class TestSolve:
    def test_measures_and_convergence(self):
        perf = HIER.solve(SMALL)
        assert isinstance(perf, ScenarioPerformance)
        assert perf.scenario == "hier"
        assert perf.method == "amva"
        assert perf.converged
        assert set(perf.summary()) == {
            "U_p",
            "throughput",
            "lambda_net",
            "S_obs",
            "L_obs",
        }
        assert 0.0 < perf.U_p <= 1.0
        assert perf.S_obs > 0.0

    def test_unknown_method_raises_param_error(self):
        with pytest.raises(ParamError, match="pick from auto/amva"):
            HIER.solve(SMALL, method="symmetric")

    def test_more_threads_hide_latency(self):
        u1 = HIER.solve(SMALL.with_(num_threads=1)).U_p
        u4 = HIER.solve(SMALL.with_(num_threads=4)).U_p
        assert u4 > u1

    def test_slower_gateways_degrade_utilization(self):
        utils = [
            HIER.solve(SMALL.with_(inter_delay=d)).U_p
            for d in (2.0, 20.0, 80.0)
        ]
        assert utils[0] > utils[1] > utils[2]

    def test_single_cluster_immune_to_inter_delay(self):
        base = HierParams(clusters=1, cluster_size=4, num_threads=4)
        assert HIER.solve(base).U_p == pytest.approx(
            HIER.solve(base.with_(inter_delay=500.0)).U_p
        )

    def test_single_thread_single_processor_closed_form(self):
        # one thread on one processor: U_p = R / (R + L), no queueing at all
        params = HierParams(
            clusters=1,
            cluster_size=1,
            num_threads=1,
            runlength=10.0,
            memory_latency=30.0,
        )
        assert HIER.solve(params).U_p == pytest.approx(10.0 / 40.0, rel=1e-9)

    def test_more_memory_ports_help_under_contention(self):
        hot = SMALL.with_(num_threads=8, memory_latency=40.0)
        assert (
            HIER.solve(hot.with_(memory_ports=4)).U_p
            > HIER.solve(hot).U_p
        )

    def test_perf_round_trips_through_dict(self):
        perf = HIER.solve(SMALL)
        assert HIER.perf_from_dict(perf.to_dict()).to_dict() == perf.to_dict()


class TestTolerance:
    def test_subsystem_catalogue(self):
        assert HIER.tolerance_subsystems == ("network", "interlink", "memory")

    @pytest.mark.parametrize("subsystem", ["network", "interlink", "memory"])
    def test_indices_in_unit_interval(self, subsystem):
        tol = HIER.tolerance(SMALL, subsystem=subsystem)
        assert tol.subsystem == subsystem
        assert 0.0 < float(tol) <= 1.0 + 1e-9

    def test_interlink_index_is_one_for_homogeneous_links(self):
        params = SMALL.with_(inter_delay=SMALL.intra_delay)
        tol = HIER.tolerance(params, subsystem="interlink")
        assert float(tol) == pytest.approx(1.0)

    def test_interlink_index_falls_with_gateway_slowdown(self):
        mild = HIER.tolerance(SMALL.with_(inter_delay=10.0), subsystem="interlink")
        harsh = HIER.tolerance(SMALL.with_(inter_delay=80.0), subsystem="interlink")
        assert float(harsh) < float(mild)

    def test_unknown_subsystem_raises(self):
        with pytest.raises(ValueError, match="interlink"):
            HIER.tolerance(SMALL, subsystem="steal")

    def test_facade_tolerance_index_default_subsystem(self):
        tol = repro.tolerance_index(
            scenario="hier", clusters=2, cluster_size=2, num_threads=4
        )
        assert tol.subsystem == "network"

    def test_no_simulator_capability(self):
        from repro.scenarios import ScenarioCapabilityError

        with pytest.raises(ScenarioCapabilityError, match="no simulator"):
            repro.simulate(scenario="hier", clusters=2, cluster_size=2)
