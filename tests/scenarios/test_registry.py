"""The scenario registry: names, selection precedence, error contract."""

import pytest

import repro
from repro.params import MMSParams, ParamError, paper_defaults
from repro.scenarios import (
    DEFAULT_SCENARIO,
    HierParams,
    Scenario,
    ScenarioUnavailableError,
    WorkStealParams,
    default_scenario,
    get_scenario,
    payload_scenario,
    resolve_scenario,
    scenario_for_params,
    scenario_names,
    set_default_scenario,
)

EXPECTED_NAMES = ("hier", "torus", "worksteal")


class TestRegistry:
    def test_registered_names_sorted(self):
        assert scenario_names() == EXPECTED_NAMES

    def test_default_is_torus(self):
        assert DEFAULT_SCENARIO == "torus"
        assert default_scenario() == "torus"

    def test_facade_scenarios_matches_registry(self):
        assert repro.scenarios() == scenario_names()

    def test_get_scenario_returns_registered_instance(self):
        for name in scenario_names():
            scen = get_scenario(name)
            assert isinstance(scen, Scenario)
            assert scen.name == name
            assert scen.title

    def test_unknown_name_error_enumerates_registry(self):
        with pytest.raises(ScenarioUnavailableError) as exc_info:
            get_scenario("bogus")
        msg = str(exc_info.value)
        assert msg == "unknown scenario 'bogus'; pick from hier/torus/worksteal"

    def test_unavailable_error_is_a_value_error(self):
        # the CLI/serve 400-and-exit-2 contracts both catch ValueError
        assert issubclass(ScenarioUnavailableError, ValueError)

    def test_every_scenario_solves_its_defaults(self):
        for name in scenario_names():
            scen = get_scenario(name)
            perf = scen.solve(scen.default_params())
            assert perf.summary()


class TestPrecedence:
    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIO", "worksteal")
        assert default_scenario() == "worksteal"
        assert resolve_scenario(None).name == "worksteal"

    def test_configure_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIO", "worksteal")
        prev = repro.configure(scenario="hier")
        try:
            assert default_scenario() == "hier"
        finally:
            repro.configure(**prev)
        assert default_scenario() == "worksteal"

    def test_explicit_argument_beats_both(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIO", "worksteal")
        prev = set_default_scenario("hier")
        try:
            assert resolve_scenario("torus").name == "torus"
        finally:
            set_default_scenario(prev)

    def test_prebuilt_params_beat_configured_default(self):
        prev = repro.configure(scenario="worksteal")
        try:
            perf = repro.solve(paper_defaults(num_threads=2))
            # an MMSParams is torus regardless of the configured default
            assert 0.0 < perf.processor_utilization <= 1.0
        finally:
            repro.configure(**prev)

    def test_unknown_env_value_raises_at_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIO", "bogus")
        with pytest.raises(ScenarioUnavailableError, match="bogus"):
            default_scenario()

    def test_configure_rejects_unknown_and_keeps_default(self):
        with pytest.raises(ScenarioUnavailableError, match="bogus"):
            repro.configure(scenario="bogus")
        assert default_scenario() == "torus"

    def test_configure_round_trips_previous_value(self):
        prev = repro.configure(scenario="hier")
        assert set(prev) == {"scenario"}
        assert default_scenario() == "hier"
        repro.configure(**prev)
        assert default_scenario() == "torus"

    def test_resolve_accepts_scenario_instance(self):
        scen = get_scenario("worksteal")
        assert resolve_scenario(scen) is scen


class TestScenarioForParams:
    @pytest.mark.parametrize(
        ("params", "expected"),
        [
            (MMSParams(), "torus"),
            (WorkStealParams(), "worksteal"),
            (HierParams(), "hier"),
        ],
    )
    def test_params_type_identifies_family(self, params, expected):
        assert scenario_for_params(params).name == expected

    def test_unregistered_type_raises_type_error(self):
        with pytest.raises(TypeError, match="no registered scenario"):
            scenario_for_params({"num_threads": 4})


class TestPayloadScenario:
    def test_absent_field_means_torus_even_with_other_default(self, monkeypatch):
        # pre-registry wire payloads never named a scenario; they stay torus
        # no matter what the process default says
        monkeypatch.setenv("REPRO_SCENARIO", "worksteal")
        prev = set_default_scenario("hier")
        try:
            assert payload_scenario({"method": "amva", "params": {}}).name == "torus"
        finally:
            set_default_scenario(prev)

    def test_explicit_field_wins(self):
        assert payload_scenario({"scenario": "hier"}).name == "hier"

    def test_unknown_payload_scenario_raises(self):
        with pytest.raises(ScenarioUnavailableError):
            payload_scenario({"scenario": "bogus"})


class TestOverrideErrors:
    def test_unknown_override_enumerates_scenario_fields(self):
        scen = get_scenario("worksteal")
        with pytest.raises(ParamError) as exc_info:
            scen.with_overrides(scen.default_params(), num_threads=4)
        msg = str(exc_info.value)
        assert "scenario 'worksteal'" in msg
        assert "num_workers" in msg and "latency" in msg

    def test_api_solve_unknown_scenario(self):
        with pytest.raises(ScenarioUnavailableError, match="pick from"):
            repro.solve(scenario="bogus")
