"""``repro-mms --scenario``: selection, sweeps, and the exit-2 contract.

Unknown scenario names -- from the flag, the environment, or a worker --
must produce exactly one clean ``repro-mms: error:`` line enumerating the
registered scenarios and exit 2, mirroring the kernel/backend contract
pinned in ``tests/test_cli.py``.
"""

import pytest

from repro.cli import main

UNKNOWN_LINE = (
    "repro-mms: error: unknown scenario 'bogus'; "
    "pick from hier/torus/worksteal"
)


class TestSweepScenarioSelection:
    def test_worksteal_sweep(self, capsys):
        rc = main(
            [
                "sweep",
                "--scenario",
                "worksteal",
                "--axis",
                "num_workers=1,2,4",
                "--measure",
                "tol_steal",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "num_workers=1  tol_steal=" in out
        assert "num_workers=4  tol_steal=" in out

    def test_hier_sweep(self, capsys):
        rc = main(
            [
                "sweep",
                "--scenario",
                "hier",
                "--axis",
                "inter_delay=2,40",
                "--measure",
                "U_p",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "inter_delay=2" in out and "U_p=" in out

    def test_default_stays_torus(self, capsys):
        rc = main(["sweep", "--axis", "num_threads=1,2", "--measure", "U_p"])
        assert rc == 0
        assert "num_threads=1  U_p=" in capsys.readouterr().out

    def test_env_var_selects_scenario(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIO", "worksteal")
        rc = main(
            ["sweep", "--axis", "latency=0,10", "--measure", "efficiency"]
        )
        assert rc == 0
        assert "latency=0  efficiency=1" in capsys.readouterr().out


class TestScenarioErrorContract:
    def test_unknown_scenario_flag_exits_2_one_line(self, capsys):
        rc = main(
            ["sweep", "--scenario", "bogus", "--axis", "num_threads=1,2"]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert err.strip() == UNKNOWN_LINE
        assert err.count("\n") <= 1

    def test_unknown_scenario_env_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIO", "bogus")
        rc = main(["sweep", "--axis", "num_threads=1,2"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.strip() == UNKNOWN_LINE

    def test_unknown_axis_enumerates_active_scenario_fields(self, capsys):
        rc = main(
            [
                "sweep",
                "--scenario",
                "worksteal",
                "--axis",
                "num_threads=1,2",
            ]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown sweep axis 'num_threads' for scenario 'worksteal'" in err
        assert (
            "fields: num_workers/total_work/latency/unit_work/placement" in err
        )

    def test_unknown_axis_on_torus_enumerates_torus_fields(self, capsys):
        rc = main(["sweep", "--axis", "latency=1,2"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "for scenario 'torus'" in err
        assert "num_threads" in err and "p_remote" in err

    def test_method_foreign_to_scenario_exits_2(self, capsys):
        rc = main(
            [
                "sweep",
                "--scenario",
                "worksteal",
                "--axis",
                "num_workers=1,2",
                "--method",
                "symmetric",
            ]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert err.strip() == (
            "repro-mms: error: unknown method 'symmetric' for scenario "
            "'worksteal'; pick from auto/bound"
        )

    def test_worker_unknown_scenario_exits_2(self, capsys, tmp_path):
        rc = main(
            ["worker", "--fabric", str(tmp_path), "--scenario", "bogus"]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert err.strip() == UNKNOWN_LINE

    def test_serve_unknown_scenario_exits_2(self, capsys):
        rc = main(
            ["serve", "--port", "0", "--scenario", "bogus"]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert err.strip() == UNKNOWN_LINE


class TestScenarioSweepOutputs:
    def test_out_records_carry_scenario_params(self, capsys, tmp_path):
        out_path = tmp_path / "records.jsonl"
        rc = main(
            [
                "sweep",
                "--scenario",
                "worksteal",
                "--axis",
                "latency=0,10",
                "--out",
                str(out_path),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        import json

        records = [
            json.loads(line) for line in out_path.read_text().splitlines()
        ]
        assert len(records) == 2
        for rec in records:
            assert rec["method"] == "bound"
            assert set(rec["params"]) == {
                "num_workers",
                "total_work",
                "latency",
                "unit_work",
                "placement",
            }
            assert "makespan" in rec["measures"]

    def test_warm_cache_serves_scenario_points(self, capsys, tmp_path):
        args = [
            "sweep",
            "--scenario",
            "hier",
            "--axis",
            "num_threads=1,2",
            "--measure",
            "U_p",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        warm = capsys.readouterr().out
        # identical measures, and the second run reports cache hits
        cold_points = [l for l in cold.splitlines() if l.startswith("num_threads")]
        warm_points = [l for l in warm.splitlines() if l.startswith("num_threads")]
        assert cold_points == warm_points
        assert "2 cached (100%)" in warm
