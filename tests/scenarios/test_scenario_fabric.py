"""Scenario sweeps through cache, journal resume, and the fabric.

The acceptance bar for the registry: a ``sweep(scenario=...)`` round-trips
through the persistent result store, resumes from a journal, and
distributes across fabric workers, producing records identical to the
single-host run -- with content-addressed keys that never collide across
(scenario, params).
"""

import pytest

import repro
from repro.fabric import FabricScheduler
from repro.params import paper_defaults
from repro.runner import JobSpec, SweepRunner, canonical_json
from repro.scenarios import WorkStealParams
from repro.scenarios.hier import HierParams


def _worksteal_specs() -> list[JobSpec]:
    return [
        JobSpec(params=WorkStealParams(num_workers=p, latency=lam))
        for p in (2, 4, 8)
        for lam in (1.0, 10.0)
    ]


def _record_lines(report) -> list[str]:
    return [canonical_json(rec) for rec in report.records()]


class TestKeyInjectivity:
    def test_keys_unique_across_scenarios_and_points(self):
        specs = [
            JobSpec(params=paper_defaults(num_threads=4)),
            JobSpec(params=paper_defaults(num_threads=8)),
            JobSpec(params=WorkStealParams()),
            JobSpec(params=WorkStealParams(latency=0.0)),
            JobSpec(params=HierParams(clusters=2, cluster_size=2)),
            JobSpec(params=HierParams(clusters=4, cluster_size=1)),
        ]
        keys = [spec.key() for spec in specs]
        assert len(set(keys)) == len(keys)


class TestCacheRoundTrip:
    def test_store_round_trips_scenario_results(self, tmp_path):
        specs = _worksteal_specs()
        cold = SweepRunner(jobs=1, cache_dir=tmp_path).run(specs)
        assert cold.manifest.cache_hits == 0
        warm = SweepRunner(jobs=1, cache_dir=tmp_path).run(specs)
        assert warm.manifest.cache_hits == len(specs)
        assert _record_lines(warm) == _record_lines(cold)

    def test_mixed_scenario_run_with_shared_store(self, tmp_path):
        mixed = [
            JobSpec(params=paper_defaults(num_threads=2)),
            JobSpec(params=WorkStealParams(latency=4.0)),
            JobSpec(params=HierParams(clusters=2, cluster_size=2, num_threads=2)),
        ]
        report = SweepRunner(jobs=1, cache_dir=tmp_path).run(mixed)
        assert all(result.ok for result in report.results)
        warm = SweepRunner(jobs=1, cache_dir=tmp_path).run(mixed)
        assert warm.manifest.cache_hits == len(mixed)
        assert _record_lines(warm) == _record_lines(report)


class TestJournalResume:
    def test_resume_replays_scenario_points(self, tmp_path):
        journal = tmp_path / "sweep.journal"
        specs = _worksteal_specs()
        first = SweepRunner(jobs=1, journal=journal).run(specs)
        resumed = SweepRunner(jobs=1, journal=journal, resume=True).run(specs)
        assert resumed.manifest.journal_hits == len(specs)
        assert resumed.manifest.resumed
        assert _record_lines(resumed) == _record_lines(first)


class TestFabric:
    def test_fabric_matches_single_host_bitwise(self, tmp_path):
        specs = _worksteal_specs()
        golden = _record_lines(SweepRunner(jobs=1).run(specs))
        with FabricScheduler(tmp_path, poll_s=0.05) as scheduler:
            report = scheduler.run(specs, workers=1)
        assert _record_lines(report) == golden

    def test_facade_sweep_through_fabric(self, tmp_path):
        records = repro.sweep(
            {"num_workers": [2, 4], "latency": [1.0, 10.0]},
            scenario="worksteal",
            measure="makespan",
            fabric=str(tmp_path),
            workers=1,
        )
        assert len(records) == 4
        from repro.scenarios import get_scenario

        scen = get_scenario("worksteal")
        for rec in records:
            expected = scen.solve(
                WorkStealParams(
                    num_workers=rec["num_workers"], latency=rec["latency"]
                )
            )
            assert rec["makespan"] == pytest.approx(
                expected.makespan, rel=1e-12
            )
