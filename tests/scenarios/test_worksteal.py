"""Work stealing under communication latency, pinned to the Gast bound.

The analytical baseline is Gast/Khatiri/Trystram (arXiv:1805.00857):
``E[makespan] <= W/p + (16/3) * lambda * log2(W/lambda)``.  The solve
path evaluates the bound; the simulator's makespan must land between the
zero-latency ideal ``W/p`` and the bound (with a pinned tolerance for the
finite-run average), which is the scenario's validation contract.
"""

import math

import pytest

import repro
from repro.params import ParamError
from repro.scenarios import ScenarioPerformance, get_scenario
from repro.scenarios.worksteal import (
    GAST_BOUND_COEFF,
    WorkStealParams,
    WorkStealSimResult,
    steal_bound,
)

WORKSTEAL = get_scenario("worksteal")

#: Slack on the sim-vs-bound comparison: the bound is on the *expectation*
#: of an adversarial-placement execution; individual finite runs may sit
#: a few percent above it.  Pinned here so regressions surface.
SIM_BOUND_RTOL = 0.05


class TestParams:
    def test_defaults_validate(self):
        params = WorkStealParams()
        assert params.num_workers == 4
        assert params.placement == "single"

    @pytest.mark.parametrize(
        "bad",
        [
            {"num_workers": 0},
            {"num_workers": 2.5},
            {"total_work": 0.0},
            {"total_work": -1.0},
            {"latency": -0.5},
            {"unit_work": 0.0},
            {"placement": "hoard"},
        ],
    )
    def test_invalid_values_raise_param_error(self, bad):
        with pytest.raises(ParamError):
            WorkStealParams(**bad)

    def test_round_trips_through_dict(self):
        params = WorkStealParams(
            num_workers=7, total_work=512.0, latency=3.5, placement="spread"
        )
        assert WorkStealParams.from_dict(params.to_dict()) == params

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TypeError, match="unknown work-steal parameter"):
            WorkStealParams.from_dict({"num_workers": 2, "bogus": 1})

    def test_with_replaces_fields(self):
        assert WorkStealParams().with_(latency=0.0).latency == 0.0


class TestBound:
    def test_formula(self):
        params = WorkStealParams(num_workers=8, total_work=4096.0, latency=16.0)
        expected = 4096.0 / 8 + GAST_BOUND_COEFF * 16.0 * math.log2(4096.0 / 16.0)
        assert steal_bound(params) == pytest.approx(expected, rel=1e-12)

    def test_single_worker_is_sequential_time(self):
        assert steal_bound(WorkStealParams(num_workers=1, total_work=100.0)) == 100.0

    def test_zero_latency_is_ideal(self):
        params = WorkStealParams(num_workers=4, total_work=100.0, latency=0.0)
        assert steal_bound(params) == 25.0

    def test_monotone_in_latency(self):
        bounds = [
            steal_bound(WorkStealParams(total_work=4096.0, latency=lam))
            for lam in (1.0, 4.0, 16.0, 64.0)
        ]
        assert bounds == sorted(bounds)
        assert bounds[0] < bounds[-1]


class TestSolve:
    def test_measures_and_method(self):
        perf = WORKSTEAL.solve(WorkStealParams())
        assert isinstance(perf, ScenarioPerformance)
        assert perf.scenario == "worksteal"
        assert perf.method == "bound"
        assert set(perf.summary()) == {
            "makespan",
            "ideal_makespan",
            "overhead",
            "efficiency",
            "speedup",
            "tol_steal",
        }
        assert perf.makespan == steal_bound(WorkStealParams())
        assert perf.efficiency == pytest.approx(
            perf.ideal_makespan / perf.makespan
        )
        assert perf.tol_steal == perf.efficiency

    def test_unknown_method_raises_param_error(self):
        with pytest.raises(ParamError, match="pick from auto/bound"):
            WORKSTEAL.solve(WorkStealParams(), method="symmetric")

    def test_perf_round_trips_through_dict(self):
        perf = WORKSTEAL.solve(WorkStealParams(latency=2.0))
        assert WORKSTEAL.perf_from_dict(perf.to_dict()).to_dict() == perf.to_dict()


class TestSimulation:
    def test_deterministic_per_seed(self):
        params = WorkStealParams(total_work=500.0, latency=5.0)
        a = WORKSTEAL.simulate(params, seed=3)
        b = WORKSTEAL.simulate(params, seed=3)
        assert a == b
        c = WORKSTEAL.simulate(params, seed=4)
        assert isinstance(c, WorkStealSimResult)

    def test_single_worker_runs_sequentially(self):
        sim = WORKSTEAL.simulate(WorkStealParams(num_workers=1, total_work=64.0))
        assert sim.makespan == pytest.approx(64.0)
        assert sim.steals == 0

    @pytest.mark.parametrize("num_workers", [2, 4, 8])
    @pytest.mark.parametrize("latency", [1.0, 5.0, 20.0])
    def test_makespan_between_ideal_and_gast_bound(self, num_workers, latency):
        params = WorkStealParams(
            num_workers=num_workers, total_work=2000.0, latency=latency
        )
        bound = steal_bound(params)
        makespans = []
        for seed in range(3):
            sim = WORKSTEAL.simulate(params, seed=seed)
            assert sim.tasks == 2000
            assert sim.makespan >= sim.ideal_makespan - 1e-9
            makespans.append(sim.makespan)
        mean = sum(makespans) / len(makespans)
        assert mean <= bound * (1.0 + SIM_BOUND_RTOL), (
            f"mean simulated makespan {mean:.1f} exceeds Gast bound "
            f"{bound:.1f} (p={num_workers}, lambda={latency})"
        )

    def test_zero_latency_close_to_ideal(self):
        params = WorkStealParams(num_workers=4, total_work=1000.0, latency=0.0)
        sim = WORKSTEAL.simulate(params)
        assert sim.makespan <= sim.ideal_makespan * 1.2 + 10.0

    def test_spread_placement_needs_fewer_steals(self):
        single = WORKSTEAL.simulate(
            WorkStealParams(total_work=1000.0, latency=5.0), seed=0
        )
        spread = WORKSTEAL.simulate(
            WorkStealParams(total_work=1000.0, latency=5.0, placement="spread"),
            seed=0,
        )
        assert spread.steals <= single.steals

    def test_unknown_sim_keyword_raises(self):
        with pytest.raises(TypeError, match="unknown simulate keyword"):
            WORKSTEAL.simulate(WorkStealParams(), memory_dist="exp")

    def test_facade_simulate_routes_by_scenario(self):
        sim = repro.simulate(
            scenario="worksteal", num_workers=2, total_work=200.0, latency=1.0
        )
        assert isinstance(sim, WorkStealSimResult)
        assert sim.makespan >= sim.ideal_makespan - 1e-9


class TestTolerance:
    def test_index_is_efficiency_against_zero_latency(self):
        params = WorkStealParams(num_workers=8, total_work=4096.0, latency=16.0)
        tol = WORKSTEAL.tolerance(params)
        assert tol.subsystem == "steal"
        assert tol.ideal_method == "zero_latency"
        assert 0.0 < float(tol) < 1.0
        assert float(tol) == pytest.approx(
            tol.ideal.makespan / tol.actual.makespan
        )

    def test_zero_latency_index_is_one(self):
        tol = WORKSTEAL.tolerance(WorkStealParams(latency=0.0))
        assert float(tol) == pytest.approx(1.0)

    def test_unknown_subsystem_raises(self):
        with pytest.raises(ValueError, match="steal"):
            WORKSTEAL.tolerance(WorkStealParams(), subsystem="network")

    def test_facade_tolerance_index(self):
        tol = repro.tolerance_index(scenario="worksteal", latency=8.0)
        assert tol.subsystem == "steal"
        assert 0.0 < float(tol) <= 1.0
