"""CLI observability: `sweep --trace` and the `report` subcommand."""

import json

import pytest

from repro import obs
from repro.cli import main


@pytest.fixture(autouse=True)
def _tracing_off_after():
    yield
    obs.configure(trace=False)


def _sweep_argv(tmp_path, *extra):
    return [
        "sweep",
        "--k", "2",
        "--axis", "num_threads=1,2,4",
        "--manifest", str(tmp_path / "m.json"),
        *extra,
    ]


class TestSweepTrace:
    def test_trace_written_and_valid(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(_sweep_argv(tmp_path, "--trace", str(trace))) == 0
        out = capsys.readouterr().out
        assert f"[trace written to {trace}]" in out
        summary = obs.validate_trace(trace)
        assert summary.roots == 1
        assert summary.span_names["sweep.run"] == 1
        assert summary.metrics_records == 1  # final metrics snapshot
        first = json.loads(trace.read_text().splitlines()[0])
        assert first == {
            "kind": "meta",
            "schema": "repro-trace/1",
            "solver_version": json.loads((tmp_path / "m.json").read_text())[
                "solver_version"
            ],
        }

    def test_tracing_disabled_after_sweep(self, tmp_path):
        assert main(_sweep_argv(tmp_path, "--trace", str(tmp_path / "t.jsonl"))) == 0
        assert not obs.enabled()

    def test_sweep_without_trace_flag_records_identically(self, capsys, tmp_path):
        """Tracing must not disturb the deterministic records (bitwise)."""
        rec_a = tmp_path / "a.jsonl"
        rec_b = tmp_path / "b.jsonl"
        assert main(_sweep_argv(tmp_path, "--out", str(rec_a))) == 0
        assert (
            main(
                _sweep_argv(
                    tmp_path, "--out", str(rec_b), "--trace", str(tmp_path / "t.jsonl")
                )
            )
            == 0
        )
        assert rec_a.read_bytes() == rec_b.read_bytes()


class TestReportCommand:
    def test_report_from_trace(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(_sweep_argv(tmp_path, "--trace", str(trace))) == 0
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Time attribution" in out
        assert "sweep.run" in out and "Metrics" in out

    def test_report_from_manifest(self, capsys, tmp_path):
        assert main(_sweep_argv(tmp_path)) == 0
        capsys.readouterr()
        assert main(["report", str(tmp_path / "m.json")]) == 0
        out = capsys.readouterr().out
        assert "Sweep stages" in out
        assert "solve" in out

    def test_report_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "nope.json")]) == 1
        assert "report failed" in capsys.readouterr().err

    def test_report_invalid_trace_fails_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "span"}\n')
        assert main(["report", str(bad)]) == 1
        assert "report failed" in capsys.readouterr().err
