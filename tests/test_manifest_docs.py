"""Manifest/docs round trip: every key a RunManifest writes is documented.

ISSUE 5's drift fix: ``repro-mms report`` and the manifest schema section
of docs/OBSERVABILITY.md described pre-PR-4 manifests.  This pins the
regenerated schema -- a real sweep's manifest is compared key-for-key
against the docs, and the report renderer is asserted to surface the
PR-4-era fields (store integrity columns, journal line, degradations).
"""

import dataclasses
import re
from pathlib import Path

import pytest

from repro.obs.report import manifest_report
from repro.params import paper_defaults
from repro.runner import JobSpec, SweepRunner
from repro.runner.manifest import RunManifest, latency_stats

DOCS = Path(__file__).resolve().parent.parent / "docs" / "OBSERVABILITY.md"


def documented_keys(text: str) -> set[str]:
    """Backticked identifiers in the 'Run manifest schema' section."""
    section = text.split("## Run manifest schema", 1)[1].split("\n## ", 1)[0]
    return set(re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)`", section))


@pytest.fixture(scope="module")
def manifest(tmp_path_factory):
    """A real manifest from a tiny cached sweep (store + stages populated)."""
    cache = tmp_path_factory.mktemp("manifest-docs-cache")
    runner = SweepRunner(jobs=1, cache_dir=str(cache))
    base = paper_defaults()
    specs = [
        JobSpec(params=base.with_(num_threads=n), method="symmetric")
        for n in (1, 2, 4)
    ]
    return runner.run(specs).manifest


class TestDocsRoundTrip:
    def test_docs_have_schema_section(self):
        assert "## Run manifest schema" in DOCS.read_text(encoding="utf-8")

    def test_every_dataclass_field_is_documented(self):
        documented = documented_keys(DOCS.read_text(encoding="utf-8"))
        for f in dataclasses.fields(RunManifest):
            assert f.name in documented, (
                f"RunManifest.{f.name} missing from the docs/OBSERVABILITY.md "
                "manifest schema table"
            )

    def test_every_written_key_is_documented(self, manifest):
        documented = documented_keys(DOCS.read_text(encoding="utf-8"))
        for key in manifest.to_dict():
            assert key in documented, f"manifest writes undocumented key {key!r}"

    def test_point_latency_subkeys_documented(self, manifest):
        documented = documented_keys(DOCS.read_text(encoding="utf-8"))
        for key in manifest.point_latency:
            assert key in documented, (
                f"point_latency subkey {key!r} undocumented"
            )
        # the stats helper's full shape, not just this run's
        for key in latency_stats([]):
            assert key in documented, f"latency_stats key {key!r} undocumented"

    def test_store_subkeys_documented(self, manifest):
        assert manifest.store is not None
        documented = documented_keys(DOCS.read_text(encoding="utf-8"))
        for key in manifest.store:
            assert key in documented, f"store subkey {key!r} undocumented"


class TestReportRendersCurrentFields:
    def test_store_table_includes_integrity_columns(self, manifest):
        text = manifest_report(manifest.to_dict())
        assert "quarantined" in text
        assert "index_rebuilds" in text

    def test_journal_and_degradations_rendered_when_present(self, manifest):
        doc = manifest.to_dict()
        doc["journal_path"] = "run.json.journal"
        doc["journal_hits"] = 2
        doc["resumed"] = True
        doc["degradations"] = [
            {
                "from_mode": "batch",
                "to_mode": "serial",
                "reason": "InjectedFault: kaboom",
                "points": 3,
            }
        ]
        text = manifest_report(doc)
        assert "run.json.journal" in text
        assert "replayed 2 points" in text
        assert "resumed=True" in text
        assert "Degradations" in text
        assert "InjectedFault" in text

    def test_quiet_manifest_renders_without_journal_noise(self, manifest):
        text = manifest_report(manifest.to_dict())
        assert "Journal:" not in text
        assert "Degradations" not in text


class TestObservabilityDocsSections:
    """PR-8 drift pins: recorder/prometheus/dashboard docs must exist and
    the new manifest keys must stay documented."""

    def test_new_sections_present(self):
        text = DOCS.read_text(encoding="utf-8")
        assert "## Time-series recorder" in text
        assert "## Prometheus exposition and `/seriesz`" in text
        assert "## Dashboard" in text

    def test_series_digest_subkeys_documented(self):
        from repro.obs.timeseries import MetricsRecorder
        from repro.obs.metrics import MetricsRegistry

        rec = MetricsRecorder(reg=MetricsRegistry(), clock=lambda: 0.0)
        rec.sample()
        documented = documented_keys(DOCS.read_text(encoding="utf-8"))
        for key in rec.summary():
            assert key in documented, f"series digest key {key!r} undocumented"

    def test_manifest_series_key_round_trip(self, tmp_path):
        from repro.obs.timeseries import start_recorder, stop_recorder

        start_recorder(interval_s=0.05)
        try:
            runner = SweepRunner(jobs=1)
            m = runner.run(
                [JobSpec(params=paper_defaults(num_threads=2))]
            ).manifest
        finally:
            stop_recorder()
        assert m.series is not None and m.created_at > 0.0
        documented = documented_keys(DOCS.read_text(encoding="utf-8"))
        for key in m.series:
            assert key in documented

    def test_ship_errors_counter_in_naming_table(self):
        text = DOCS.read_text(encoding="utf-8")
        section = text.split("## Naming scheme", 1)[1].split("\n## ", 1)[0]
        assert "fabric.obs.ship_errors" in section

    def test_fleet_subkeys_documented(self):
        documented = documented_keys(DOCS.read_text(encoding="utf-8"))
        for key in (
            "fleet",
            "trials_done",
            "trials_failed",
            "busy_s",
            "throughput_per_s",
            "heartbeat_gap_s",
            "lease_latency_s",
        ):
            assert key in documented, f"fleet subkey {key!r} undocumented"
