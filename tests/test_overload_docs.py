"""Overload/self-healing docs pinned to the code they describe.

ISSUE 9's drift fences: the error contract table in docs/SERVING.md is
generated from the same tuple ``serve/http.py`` maps exceptions with,
the health states come from ``repro.resilience.admission.HEALTH_STATES``,
the client's retryable statuses from ``repro.client.RETRYABLE_STATUSES``,
and every overload counter the code emits must appear in the
observability naming table.  Rename a status, a state, or a counter and
the matching doc line fails here by name.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.client import RETRYABLE_STATUSES
from repro.resilience.admission import HEALTH_STATES
from repro.serve.http import _SERVICE_ERROR_STATUS

DOCS = Path(__file__).resolve().parent.parent / "docs"


def section(path: str, heading: str) -> str:
    text = (DOCS / path).read_text(encoding="utf-8")
    assert heading in text, f"{path} lost its {heading!r} section"
    return text.split(heading, 1)[1].split("\n## ", 1)[0]


def prose(path: str, heading: str) -> str:
    """A section with hard line wraps collapsed, for phrase asserts."""
    return " ".join(section(path, heading).split())


def documented_metric_names(naming_section: str) -> set[str]:
    """Every metric name in the table, with ``a.b/c/d`` groups expanded."""
    names: set[str] = set()
    for token in re.findall(r"`([A-Za-z_][\w.<>{}/]*)`", naming_section):
        parts = token.split("/")
        names.add(parts[0])
        prefix = parts[0].rsplit(".", 1)[0] + "."
        for alt in parts[1:]:
            names.add(prefix + alt)
    return names


class TestServingContract:
    def test_every_mapped_service_error_is_in_the_contract_table(self):
        table = section("SERVING.md", "## Error contract")
        for exc_type, status, name in _SERVICE_ERROR_STATUS:
            row = next(
                (line for line in table.splitlines() if f"`{name}`" in line),
                None,
            )
            assert row is not None, (
                f"{exc_type.__name__} -> {status} {name} missing from the "
                "SERVING.md error contract table"
            )
            assert f" {status} " in row, (
                f"documented status for {name} disagrees with http.py "
                f"({status})"
            )
            assert f"`{exc_type.__name__}`" in row

    def test_retry_after_is_documented_in_the_contract(self):
        table = section("SERVING.md", "## Error contract")
        assert "retry_after_s" in table
        assert "Retry-After" in table

    def test_overload_protection_section_names_the_knobs(self):
        text = section("SERVING.md", "## Overload protection")
        for flag in (
            "--rate-limit",
            "--rate-burst",
            "--target-wait",
            "--breaker-threshold",
            "--breaker-cooldown",
        ):
            assert flag in text, f"serve flag {flag} undocumented"
        assert "X-Client-Id" in text
        assert "SolveClient" in text

    def test_health_states_documented(self):
        text = section("SERVING.md", "## Overload protection")
        for state in HEALTH_STATES:
            assert f"`{state}`" in text, f"health state {state!r} undocumented"
        assert "`closed`" in text  # the shutdown pseudo-state

    def test_client_retryable_statuses_documented(self):
        text = section("SERVING.md", "## Overload protection")
        statuses = "/".join(str(s) for s in RETRYABLE_STATUSES)
        assert statuses in text, (
            f"SolveClient retry statuses {statuses} drifted from the docs"
        )


class TestResilienceSections:
    def test_breaker_section_matches_the_shipped_breaker(self):
        text = section("RESILIENCE.md", "## Circuit breaker")
        assert "serve.batch" in text
        for event in ("opened", "closed", "rejected", "probes"):
            assert event in text
        assert "half-open" in text

    def test_quarantine_section_names_the_cli(self):
        text = prose("RESILIENCE.md", "## Poison-trial quarantine")
        assert "quarantine list" in text
        assert "quarantine retry" in text
        assert "max_attempts" in text
        assert "two distinct workers" in text

    def test_distributed_schema_documents_v2(self):
        text = section("DISTRIBUTED.md", "## The experiment database")
        assert "schema version 2" in text
        assert "`attempt_workers`" in text
        assert "`max_attempts`" in text
        assert "quarantined" in text
        assert "fabric.db.migrations" in text

    def test_distributed_failure_semantics_cover_quarantine(self):
        text = section("DISTRIBUTED.md", "## Failure semantics")
        assert "quarantined" in text
        assert "attempt_workers" in text

    def test_distributed_tuning_covers_max_attempts(self):
        text = section("DISTRIBUTED.md", "## Tuning")
        assert "--max-attempts" in text


class TestNamingTableCoversOverloadCounters:
    @pytest.fixture(scope="class")
    def naming(self) -> set[str]:
        return documented_metric_names(
            section("OBSERVABILITY.md", "## Naming scheme")
        )

    @pytest.mark.parametrize(
        "counter",
        [
            "serve.shed",
            "serve.rate_limited",
            "serve.rejected",
            "fabric.trials.quarantined",
            "fabric.trials.quarantine_retried",
            "fabric.trials.requeued",
            "fabric.db.migrations",
            "fabric.worker.partitioned_exits",
        ],
    )
    def test_counter_documented(self, naming, counter):
        assert counter in naming, f"{counter} missing from the naming table"

    def test_breaker_counters_documented(self, naming):
        assert "breaker." in naming
        for event in ("opened", "closed", "rejected", "probes"):
            assert f"breaker.<name>.{event}" in naming
